"""Legacy setup shim.

The offline environment ships setuptools without the ``wheel`` package,
so PEP-517 editable installs (`pip install -e .`) cannot build a wheel.
`python setup.py develop` (or `pip install -e . --no-build-isolation`
once wheel is available) installs the package; all metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
