"""A full streaming-analytics dashboard from mergeable summaries.

Scenario: a web service runs on 24 frontend servers.  Each server
summarizes its own traffic with FOUR tiny mergeable summaries; a
collector merges the per-server summaries and renders a dashboard that
answers, with guarantees, questions a full log pipeline would need
gigabytes for:

- "which pages are hot?"            -> Misra-Gries heavy hitters
- "how many distinct users today?"  -> HyperLogLog
- "what's our p50/p95/p99 latency?" -> mergeable quantile summary
- "what's hot *right now*?"         -> time-decayed Misra-Gries

Every summary rides the same merge protocol, so the collector's code is
one loop.  Run:  python examples/streaming_dashboard.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    DecayedMisraGries,
    HyperLogLog,
    MergeableQuantiles,
    MisraGries,
)
from repro.analysis import print_table
from repro.core import merge_all
from repro.workloads import zipf_stream

SERVERS = 24
REQUESTS_PER_SERVER = 20_000
HALF_LIFE = 600.0  # seconds


class ServerNode:
    """One frontend server and its four summaries."""

    def __init__(self, server_id: int, rng: np.random.Generator) -> None:
        self.server_id = server_id
        self._rng = rng
        self.hot_pages = MisraGries(64)
        self.users = HyperLogLog(p=12, seed=42)
        self.latency = MergeableQuantiles.from_epsilon(0.01, rng=server_id)
        self.trending = DecayedMisraGries(64, half_life=HALF_LIFE)

    def serve_traffic(self, start_time: float) -> None:
        n = REQUESTS_PER_SERVER
        pages = zipf_stream(n, alpha=1.2, universe=5_000, rng=self._rng)
        # late in the window, a breaking-news page takes over
        breaking = self._rng.random(n) < np.linspace(0, 0.6, n)
        pages = np.where(breaking, 4_999_999, pages)
        users = self._rng.integers(0, 200_000, size=n)
        latencies = self._rng.lognormal(2.0, 0.6, size=n)
        times = start_time + np.sort(self._rng.random(n)) * 3_600.0
        for page, user, ms, t in zip(pages, users, latencies, times):
            self.hot_pages.update(int(page))
            self.users.update(int(user))
            self.latency.update(float(ms))
            self.trending.observe(int(page), float(t))


def main() -> None:
    master = np.random.default_rng(2024)
    servers = [
        ServerNode(i, np.random.default_rng(master.integers(0, 2**63)))
        for i in range(SERVERS)
    ]
    for server in servers:
        server.serve_traffic(start_time=0.0)

    # the collector: merge each summary family across servers
    hot = merge_all([s.hot_pages for s in servers], strategy="tree")
    users = merge_all([s.users for s in servers], strategy="tree")
    latency = merge_all([s.latency for s in servers], strategy="tree")
    trending = merge_all([s.trending for s in servers], strategy="tree")

    total = SERVERS * REQUESTS_PER_SERVER
    print(f"== dashboard over {total} requests from {SERVERS} servers ==\n")

    print_table(
        ["metric", "value", "summary size", "guarantee"],
        [
            ["requests", hot.n, "-", "exact (additive)"],
            ["distinct users", f"{users.distinct():.0f}", users.size(),
             f"+-{100 * 1.04 / np.sqrt(users.size()):.1f}% (HLL)"],
            ["p50 latency (ms)", f"{latency.quantile(0.50):.1f}",
             latency.size(), "rank +-1% of n"],
            ["p95 latency (ms)", f"{latency.quantile(0.95):.1f}",
             latency.size(), "rank +-1% of n"],
            ["p99 latency (ms)", f"{latency.quantile(0.99):.1f}",
             latency.size(), "rank +-1% of n"],
        ],
        caption="service overview",
    )

    rows = [
        [page, estimate, f"+{hot.deduction}"]
        for page, estimate in sorted(
            hot.heavy_hitters(0.02).items(), key=lambda kv: -kv[1]
        )[:6]
    ]
    print_table(["page", "est. hits (all time)", "undercount at most"], rows,
                caption="hot pages (whole window)")

    rows = [
        [page, f"{weight:.0f}"]
        for page, weight in sorted(
            trending.heavy_hitters(0.05).items(), key=lambda kv: -kv[1]
        )[:6]
    ]
    print_table(["page", "decayed weight"], rows,
                caption=f"trending now (half-life {HALF_LIFE:.0f}s) — the "
                        "breaking-news page dominates despite a late start")


if __name__ == "__main__":
    main()
