"""Continuous monitoring: epoch deltas into a running global summary.

The sensor-network pattern the paper motivates, run as a loop: every
epoch (say, one minute) each of 16 collectors summarizes just its new
observations and ships that small delta; the coordinator merges deltas
into a running summary that is — by mergeability — a valid
guaranteed-error summary of *everything observed since the start*, and
can be queried at any moment.

The table shows what makes this economical: per-epoch bytes and the
coordinator's size stay flat while the covered data grows without
bound.

Run:  python examples/continuous_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro import MisraGries
from repro.analysis import print_table
from repro.distributed import ContinuousAggregation
from repro.workloads import zipf_stream

NODES = 16
EPOCHS = 12
RECORDS_PER_NODE = 5_000
K = 128


def main() -> None:
    aggregation = ContinuousAggregation(lambda: MisraGries(K), nodes=NODES)
    rows = []
    for epoch in range(EPOCHS):
        # traffic drifts: the hot item changes every four epochs
        hot = epoch // 4
        shards = []
        for node in range(NODES):
            noise = zipf_stream(
                RECORDS_PER_NODE, alpha=1.05, universe=100_000,
                rng=epoch * 1000 + node,
            )
            burst = np.full(RECORDS_PER_NODE // 4, 9_000_000 + hot)
            shards.append(np.concatenate([noise, burst]))
        report = aggregation.run_epoch(shards)
        if (epoch + 1) % 3 == 0:
            top = max(
                aggregation.coordinator.heavy_hitters(0.02).items(),
                key=lambda kv: kv[1],
                default=("-", 0),
            )
            rows.append([
                report.epoch,
                report.coordinator_n,
                report.bytes_shipped,
                report.coordinator_size,
                f"{top[0]} (~{top[1]})",
            ])

    print_table(
        ["epoch", "records covered", "bytes this epoch", "coordinator size",
         "top item (cumulative)"],
        rows,
        caption=f"continuous aggregation: {NODES} nodes, k={K} — size and "
                "per-epoch bytes flat while coverage grows",
    )

    coordinator = aggregation.coordinator
    print(f"\nafter {EPOCHS} epochs: n={coordinator.n}, "
          f"error bound {coordinator.error_bound:.0f} "
          f"(deduction actually {coordinator.deduction})")


if __name__ == "__main__":
    main()
