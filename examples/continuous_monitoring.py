"""Continuous monitoring: epoch deltas + a real "last T epochs" window.

The sensor-network pattern the paper motivates, run as a loop: every
epoch (say, one minute) each of 16 collectors summarizes just its new
observations and ships that small delta; the coordinator merges deltas
into a running summary that is — by mergeability — a valid
guaranteed-error summary of *everything observed since the start*, and
can be queried at any moment.

Since-boot totals are the wrong answer for monitoring, though: once
traffic drifts, the cumulative summary keeps reporting yesterday's hot
item.  The second column pair shows the fix — the same MisraGries
lifted to sliding-window semantics (``.windowed(...)``, an exponential
histogram of sub-summaries), answering "heaviest item over the last
T epochs" with (1+eps) window-mass error while the cumulative view
drowns in history.

The table shows what makes this economical: per-epoch bytes and both
summaries' sizes stay flat while the covered data grows without bound.

Run:  python examples/continuous_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro import MisraGries
from repro.analysis import print_table
from repro.distributed import ContinuousAggregation
from repro.workloads import zipf_stream

NODES = 16
EPOCHS = 12
RECORDS_PER_NODE = 5_000
K = 128
WINDOW_EPOCHS = 4.0


def _top(counts: dict) -> str:
    item, weight = max(counts.items(), key=lambda kv: kv[1], default=("-", 0))
    return f"{item} (~{weight})"


def main() -> None:
    aggregation = ContinuousAggregation(lambda: MisraGries(K), nodes=NODES)
    # the same summary type, lifted to "last WINDOW_EPOCHS epochs":
    # event-time EH buckets of MisraGries deltas, one granule per epoch
    monitor = MisraGries(K).windowed(
        eps=0.5, window=WINDOW_EPOCHS, mode="time", granularity=1.0
    )
    rows = []
    for epoch in range(EPOCHS):
        # traffic drifts: the hot item changes every four epochs
        hot = epoch // 4
        shards = []
        for node in range(NODES):
            noise = zipf_stream(
                RECORDS_PER_NODE, alpha=1.05, universe=100_000,
                rng=epoch * 1000 + node,
            )
            burst = np.full(RECORDS_PER_NODE // 4, 9_000_000 + hot)
            shards.append(np.concatenate([noise, burst]))
        report = aggregation.run_epoch(shards)
        for shard in shards:
            for item in shard.tolist():
                monitor.observe(item, float(epoch))
        if (epoch + 1) % 3 == 0:
            window = monitor.window_query()
            rows.append([
                report.epoch,
                report.coordinator_n,
                report.bytes_shipped,
                report.coordinator_size,
                _top(aggregation.coordinator.heavy_hitters(0.02)),
                _top(window.summary.heavy_hitters(0.05)),
            ])

    print_table(
        ["epoch", "records covered", "bytes this epoch", "coordinator size",
         "top (since boot)", f"top (last {WINDOW_EPOCHS:.0f} epochs)"],
        rows,
        caption=f"continuous aggregation: {NODES} nodes, k={K} — size and "
                "per-epoch bytes flat while coverage grows; the windowed "
                "view tracks the drift the cumulative view dilutes",
    )

    coordinator = aggregation.coordinator
    print(f"\nafter {EPOCHS} epochs: n={coordinator.n}, "
          f"error bound {coordinator.error_bound:.0f} "
          f"(deduction actually {coordinator.deduction})")
    bounds = monitor.window_count_bounds()
    print(f"window monitor: {monitor.num_buckets} EH buckets, "
          f"size {monitor.size()}, last-{WINDOW_EPOCHS:.0f}-epoch mass in "
          f"[{bounds.lower:.0f}, {bounds.upper:.0f}]")


if __name__ == "__main__":
    main()
