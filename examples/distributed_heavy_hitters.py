"""Network-monitoring scenario: frequent flows across a collector tree.

Simulates the paper's motivating deployment: 32 edge monitors each see a
shard of CAIDA-like (Zipf) traffic, build a small Misra-Gries summary,
and ship it — through the JSON wire format — up an aggregation tree to a
collector, which reports the heavy flows.  The same run is repeated over
four tree shapes to show the guarantee does not depend on topology.

Run:  python examples/distributed_heavy_hitters.py
"""

from __future__ import annotations

from collections import Counter

from repro import MisraGries
from repro.analysis import frequency_errors, mg_error_bound, print_table
from repro.distributed import (
    SkewedSizePartitioner,
    build_topology,
    run_aggregation,
)
from repro.frequency import evaluate_heavy_hitters
from repro.workloads import load_dataset

N = 300_000
NODES = 32
K = 128          # counters per monitor -> error <= n/(k+1)
PHI = 0.01       # report flows above 1% of total traffic


def main() -> None:
    traffic = load_dataset("caida_like", N, rng=42)
    truth = Counter(traffic.tolist())
    bound = mg_error_bound(K, N)

    rows = []
    final = None
    for topology_name in ("balanced", "chain", "star", "kary"):
        schedule = build_topology(topology_name, NODES, arity=4) \
            if topology_name == "kary" else build_topology(topology_name, NODES)
        result = run_aggregation(
            traffic,
            SkewedSizePartitioner(alpha=0.8, rng=1),  # unequal monitor loads
            lambda: MisraGries(K),
            schedule,
            serialize=True,  # every hop uses the wire format
        )
        report = evaluate_heavy_hitters(result.summary, truth, PHI)
        errors = frequency_errors(result.summary, truth)
        rows.append([
            topology_name,
            result.depth,
            result.bytes_shipped,
            errors.max_error,
            f"{bound:.0f}",
            f"{report.recall:.2f}",
            f"{report.precision:.2f}",
        ])
        final = result.summary

    print_table(
        ["topology", "depth", "bytes shipped", "max error", "bound", "recall",
         "precision"],
        rows,
        caption=f"Heavy flows: n={N}, {NODES} monitors, k={K}, phi={PHI}",
    )

    print("flows above 1% of traffic (collector's report):")
    for flow, estimate in sorted(final.heavy_hitters(PHI).items(),
                                 key=lambda kv: -kv[1])[:10]:
        print(f"  flow {flow:>7}: ~{estimate} packets "
              f"(true {truth[flow]})")


if __name__ == "__main__":
    main()
