"""Quickstart: mergeable heavy hitters and quantiles in ten lines each.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import MergeableQuantiles, MisraGries, merge_all
from repro.workloads import chunk_evenly, value_stream, zipf_stream


def heavy_hitters_demo() -> None:
    """Find frequent items across 16 'machines' with 64 counters each."""
    stream = zipf_stream(200_000, alpha=1.3, universe=50_000, rng=7)

    # each machine summarizes its own shard...
    shards = chunk_evenly(stream, 16)
    summaries = [MisraGries(64).extend(shard) for shard in shards]

    # ...and the summaries merge in any order without losing the guarantee
    merged = merge_all(summaries, strategy="random", rng=7)

    print(f"heavy hitters over n={merged.n} items "
          f"(error <= n/(k+1) = {merged.n / 65:.0f}):")
    for item, estimate in sorted(
        merged.heavy_hitters(phi=0.02).items(), key=lambda kv: -kv[1]
    ):
        print(f"  item {item:>6}  estimate {estimate:>7}  "
              f"(true count within +{merged.deduction})")


def quantiles_demo() -> None:
    """Track latency percentiles across shards, merged along a chain."""
    latencies = value_stream(2**17, "lognormal", rng=3) * 10.0

    shards = chunk_evenly(latencies, 32)
    summaries = [
        MergeableQuantiles.from_epsilon(0.01, rng=100 + i).extend(shard)
        for i, shard in enumerate(shards)
    ]
    merged = merge_all(summaries, strategy="chain")

    print(f"\nlatency percentiles from a {merged.size()}-sample summary "
          f"of n={merged.n} measurements:")
    for q in (0.5, 0.9, 0.99):
        estimate = merged.quantile(q)
        true = float(np.quantile(latencies, q))
        print(f"  p{int(q * 100):<3} estimate {estimate:8.2f} ms   "
              f"(exact {true:8.2f} ms)")


if __name__ == "__main__":
    heavy_hitters_demo()
    quantiles_demo()
