"""Sensor-network scenario: in-network percentile aggregation.

A field of 64 sensors measures temperature; each sensor sees a
*different value range* (microclimates), which is the adversarial
layout for naive sampling.  Sensors keep a fully mergeable quantile
summary (paper Section 3.2) and merge up a 4-ary aggregation tree; the
sink answers percentile queries for the whole field within eps*n ranks,
exactly as if it had seen every reading.

The same experiment run with a Greenwald-Khanna summary (not mergeable)
shows the error growing with tree depth — the contrast that motivates
the paper.

Run:  python examples/sensor_quantiles.py
"""

from __future__ import annotations

import numpy as np

from repro import GKQuantiles, MergeableQuantiles
from repro.analysis import print_table, rank_errors
from repro.distributed import SortedPartitioner, build_topology, run_aggregation
from repro.workloads import load_dataset

N = 2**16
SENSORS = 64
EPS = 0.01


def main() -> None:
    readings = load_dataset("sensor_like", N, rng=5)
    schedule = build_topology("kary", SENSORS, arity=4)
    partitioner = SortedPartitioner()  # each sensor owns a value range
    probes = np.quantile(readings, np.linspace(0.01, 0.99, 99))

    mergeable = run_aggregation(
        readings,
        partitioner,
        lambda: MergeableQuantiles.from_epsilon(EPS, rng=11),
        schedule,
        serialize=True,
    )
    gk = run_aggregation(
        readings, partitioner, lambda: GKQuantiles(EPS), schedule
    )

    rows = []
    for name, result in (("mergeable (Sec 3.2)", mergeable), ("GK baseline", gk)):
        report = rank_errors(result.summary, readings, probes)
        rows.append([
            name,
            result.summary.size(),
            f"{report.max_error:.0f}",
            f"{EPS * N:.0f}",
            f"{report.max_normalized:.4f}",
        ])
    print_table(
        ["summary", "size", "max rank err", "eps*n", "max err / n"],
        rows,
        caption=f"Field percentiles: n={N}, {SENSORS} sensors, eps={EPS}, "
                f"4-ary tree (depth {schedule.depth})",
    )

    print("sink's percentile report:")
    for q in (0.05, 0.5, 0.95):
        estimate = mergeable.summary.quantile(q)
        exact = float(np.quantile(readings, q))
        print(f"  p{int(q*100):<3} = {estimate:6.2f} degC   (exact {exact:6.2f})")


if __name__ == "__main__":
    main()
