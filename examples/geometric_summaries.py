"""Geometric summaries: eps-approximations and eps-kernels (Sections 4-5).

Scenario: a fleet of drones maps obstacle positions in a field.  Each
drone summarizes its observations two ways:

- an *eps-approximation* for rectangle counting ("how many obstacles in
  this sector?") built by merge-reduce with low-discrepancy halving;
- an *eps-kernel* for directional width ("how wide is the obstacle
  cloud along this bearing?") built from extreme points on a fixed
  direction grid.

Both summaries merge exactly/losslessly at the base station no matter
the merge order, and the answers stay within the paper's bounds.

Run:  python examples/geometric_summaries.py
"""

from __future__ import annotations

import numpy as np

from repro import EpsApproximation, EpsKernel
from repro.analysis import print_table
from repro.core import merge_all
from repro.kernels import diameter, directional_width

DRONES = 12
POINTS_PER_DRONE = 2_000


def obstacle_field(rng: np.random.Generator) -> np.ndarray:
    """Clustered obstacles in an elongated field."""
    centers = rng.random((8, 2)) * np.array([10.0, 3.0])
    assignments = rng.integers(0, len(centers), size=DRONES * POINTS_PER_DRONE)
    return centers[assignments] + rng.normal(0, 0.25, (len(assignments), 2))


def main() -> None:
    rng = np.random.default_rng(21)
    field = obstacle_field(rng)
    per_drone = np.array_split(field, DRONES)

    # --- eps-approximation for sector counting -------------------------
    approximations = [
        EpsApproximation("rectangles_2d", s=256, rng=500 + i).extend_points(chunk)
        for i, chunk in enumerate(per_drone)
    ]
    sector_map = merge_all(approximations, strategy="random", rng=1)

    rows = []
    for _ in range(5):
        x2, y2 = rng.random(2) * np.array([10.0, 3.0])
        sector = (-np.inf, x2, -np.inf, y2)
        estimate = sector_map.count(sector)
        true = ((field[:, 0] <= x2) & (field[:, 1] <= y2)).sum()
        rows.append([
            f"x<={x2:.1f}, y<={y2:.1f}",
            f"{estimate:.0f}",
            int(true),
            f"{abs(estimate - true) / len(field):.4f}",
        ])
    print_table(
        ["sector", "estimate", "exact", "err / n"],
        rows,
        caption=f"Sector counts from an eps-approximation of "
                f"{sector_map.size()} points (n={sector_map.n})",
    )

    # --- eps-kernel for directional width ------------------------------
    eps = 0.02
    kernels = [EpsKernel(eps).extend_points(chunk) for chunk in per_drone]
    merged_kernel = merge_all(kernels, strategy="chain")
    diam = diameter(field)

    rows = []
    for bearing in (0, 30, 60, 90, 120, 150):
        angle = np.radians(bearing)
        u = np.array([np.cos(angle), np.sin(angle)])
        approx = merged_kernel.width(u)
        true = directional_width(field, u)
        rows.append([
            f"{bearing} deg",
            f"{approx:.3f}",
            f"{true:.3f}",
            f"{(true - approx) / diam:.5f}",
        ])
    print_table(
        ["bearing", "kernel width", "true width", "err / diam"],
        rows,
        caption=f"Cloud extent from an eps-kernel of {merged_kernel.size()} "
                f"points (guarantee: err <= {eps} * diam)",
    )


if __name__ == "__main__":
    main()
