"""Range-query planning: cover ``[lo, hi)`` with O(log S) merges.

The mergeability guarantee makes pre-merged roll-ups *exact* citizens:
a dyadic roll-up node carries the same error parameter and size bound
as the base segments it merged, so the planner is free to answer a
range query from the largest pre-merged blocks available — the
Storyboard optimization — instead of merging every covered base
segment.

The decomposition is the classic segment-tree cover: a query spanning
``E`` epochs splits into at most ``2 * ceil(log2 E) + 2`` aligned
dyadic blocks (at most two blocks per level — one ragged edge on each
side).  With the roll-up tree fully compacted, each block is served by
one pre-merged segment, so a query over a store of ``S`` base segments
merges ``O(log S)`` summaries instead of ``O(S)``.  Blocks whose
roll-up has not been materialized (compaction pending, or partially
invalidated by fresh ingest) gracefully decompose into their children,
bottoming out at base segments — the plan degrades toward the naive
scan but never returns stale data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..core.exceptions import ParameterError
from .segment import Segment

__all__ = ["QueryPlan", "plan_range", "fan_in_bound"]


@dataclass
class QueryPlan:
    """The pre-merged segments chosen to answer one range query.

    ``segments`` lists the chosen cover in key order; ``fan_in`` is the
    number of merges the query will pay.  ``base_covered`` counts the
    level-0 segments the cover represents — what a naive full scan
    would have merged — so ``base_covered / fan_in`` is the planner's
    leverage.
    """

    lo_epoch: int
    hi_epoch: int
    segments: List[Segment] = field(default_factory=list)
    #: epochs before ``lo_epoch`` absorbed by taking a materialized
    #: roll-up that straddles the window start whole instead of
    #: splitting it (window queries with ``eps`` slack only; bounded by
    #: ``floor(eps * window_epochs)``)
    window_slack_used: int = 0
    #: dyadic blocks that held data and lay inside the range but had no
    #: materialized roll-up (compaction pending, or invalidated by fresh
    #: ingest) — each forced a split toward base segments.  Zero on a
    #: fully compacted store; the degradation signal surfaced by
    #: ``describe()`` and ``repro store stats``.
    degraded_blocks: int = 0

    @property
    def fan_in(self) -> int:
        """Summaries merged per member to answer the query."""
        return len(self.segments)

    @property
    def rollup_nodes(self) -> int:
        """Chosen segments that are pre-merged roll-ups (level >= 1)."""
        return sum(1 for s in self.segments if s.level >= 1)

    @property
    def base_segments(self) -> int:
        """Chosen segments that are raw level-0 segments."""
        return sum(1 for s in self.segments if s.level == 0)

    #: segment_id -> number of present base epochs it covers (filled at
    #: plan time; a roll-up's span is only an upper bound when some
    #: epochs in its block never received data)
    _present: Dict[str, int] = field(default_factory=dict, repr=False)

    @property
    def base_covered(self) -> int:
        """Level-0 segments represented by the cover (naive scan cost)."""
        return sum(
            self._present.get(s.segment_id, s.span) for s in self.segments
        )

    @property
    def records(self) -> int:
        """Total records covered by the plan."""
        return sum(s.count for s in self.segments)

    @property
    def covered_lo_epoch(self) -> int:
        """First epoch the cover actually reaches (``lo_epoch`` unless a
        straddling roll-up was absorbed under window slack)."""
        return self.lo_epoch - self.window_slack_used

    def describe(self) -> str:
        """One-line human-readable plan summary."""
        parts = ", ".join(
            f"L{s.level}[{s.start},{s.end})" for s in self.segments
        )
        degraded = (
            f", degraded={self.degraded_blocks} blocks"
            if self.degraded_blocks
            else ""
        )
        return (
            f"epochs [{self.lo_epoch},{self.hi_epoch}): fan_in={self.fan_in} "
            f"({self.rollup_nodes} roll-ups + {self.base_segments} base, "
            f"covering {self.base_covered} base segments{degraded}) -> [{parts}]"
        )


def fan_in_bound(num_epochs: int) -> int:
    """Worst-case fan-in of a fully compacted cover of ``num_epochs``.

    At most two dyadic blocks per level plus the two ragged edges:
    ``2 * ceil(log2 E) + 2``.  This is the O(log S) the planner proof
    asserts against.
    """
    if num_epochs <= 1:
        return 2
    return 2 * math.ceil(math.log2(num_epochs)) + 2


def plan_range(
    lo_epoch: int,
    hi_epoch: int,
    base: Dict[int, Segment],
    rollups: Dict[Tuple[int, int], Segment],
    max_level: int,
    use_rollups: bool = True,
    slack_lo: int = 0,
) -> QueryPlan:
    """Compile epoch range ``[lo_epoch, hi_epoch)`` into a segment cover.

    ``base`` maps epoch -> level-0 segment; ``rollups`` maps
    ``(level, start)`` -> roll-up segment (``start`` aligned to
    ``2**level``).  A roll-up is chosen when its whole block lies inside
    the query range and it is materialized; otherwise the block splits
    into its two children, bottoming out at base segments.  With
    ``use_rollups=False`` the plan is the naive full scan (every
    covered base segment) — the benchmark baseline.

    ``slack_lo`` is the window-query relaxation: a *materialized*
    roll-up that straddles ``lo_epoch`` may be taken whole — covering up
    to ``slack_lo`` extra epochs before the window start — instead of
    splitting toward its children.  This is exactly the exponential
    histogram's oldest-bucket rule: the answer covers ``[lo - s, hi)``
    for some ``0 <= s <= slack_lo``, so with
    ``slack_lo = floor(eps * window_epochs)`` the covered mass is within
    a ``(1 + eps)`` factor of the exact window.  The plan reports the
    absorbed epochs in ``window_slack_used``.
    """
    if hi_epoch <= lo_epoch:
        raise ParameterError(
            f"empty query range: [{lo_epoch}, {hi_epoch}) covers no epochs"
        )
    plan = QueryPlan(lo_epoch=lo_epoch, hi_epoch=hi_epoch)
    if not base:
        return plan

    def present(start: int, end: int) -> int:
        return sum(1 for e in range(start, end) if e in base)

    def cover(level: int, start: int) -> None:
        """Emit the cover of dyadic block (level, start) ∩ query range."""
        span = 1 << level
        block_lo, block_hi = start, start + span
        if block_hi <= lo_epoch or block_lo >= hi_epoch:
            return
        if level == 0:
            segment = base.get(start)
            if segment is not None:
                plan.segments.append(segment)
                plan._present[segment.segment_id] = 1
            return
        inside = lo_epoch <= block_lo and block_hi <= hi_epoch
        # left-edge slack: the one block straddling the window start may
        # be absorbed whole when its roll-up is materialized and the
        # overhang fits the eps budget
        absorbable = (
            block_lo < lo_epoch < block_hi <= hi_epoch
            and lo_epoch - block_lo <= slack_lo
        )
        if (inside or absorbable) and use_rollups:
            node = rollups.get((level, start))
            if node is not None:
                plan.segments.append(node)
                plan._present[node.segment_id] = present(block_lo, block_hi)
                if not inside:
                    plan.window_slack_used = lo_epoch - block_lo
                return
            if inside and present(block_lo, block_hi):
                plan.degraded_blocks += 1
        half = span >> 1
        cover(level - 1, start)
        cover(level - 1, start + half)

    top_span = 1 << max_level
    first_block = (lo_epoch // top_span) * top_span
    for start in range(first_block, hi_epoch, top_span):
        cover(max_level, start)
    return plan
