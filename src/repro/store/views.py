"""LRU cache of merged query views.

Dashboards hammer the same ranges ("last hour", "today") over and over;
re-merging the plan's segments on every hit wastes the planner's work.
:class:`ViewCache` keeps the most recent merged results keyed by
``(store generation, epoch range, use_rollups)`` — the same
generation-keyed invalidation idea as the cached sorted view on
:class:`~repro.quantiles.estimator.QuantileSummary` (PR 3): ingest and
compaction bump the store generation, so a stale view can never be
served, and no explicit invalidation hooks are needed.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional

from ..core.exceptions import ParameterError

__all__ = ["ViewCache"]


class ViewCache:
    """A tiny ordered-dict LRU for merged query views.

    ``capacity`` bounds the number of retained views; 0 disables
    caching entirely (every lookup misses, nothing is stored).
    """

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 0:
            raise ParameterError(f"capacity must be >= 0, got {capacity!r}")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._hits = 0
        self._misses = 0

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached view for ``key``, refreshed as most recent, or None."""
        entry = self._entries.get(key)
        if entry is None:
            self._misses += 1
            return None
        self._entries.move_to_end(key)
        self._hits += 1
        return entry

    def put(self, key: Hashable, view: Any) -> None:
        """Insert ``view``, evicting the least recently used on overflow."""
        if self.capacity == 0:
            return
        self._entries[key] = view
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def stats(self) -> Dict[str, int]:
        """Cache instrumentation: ``{"hits": ..., "misses": ..., "size": ...}``."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "size": len(self._entries),
        }
