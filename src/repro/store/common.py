"""Shared store scaffolding: schema, ingest validation, WAL, stats.

:class:`StoreBase` is everything the flat
:class:`~repro.store.store.SegmentStore` and the dimension
:class:`~repro.store.cube.CubeStore` have in common once their chains
live in :mod:`repro.store.chain`: member schema management, batch
validation, the write-ahead-log ingest template (append durably, then
apply — so a crash at any later instant is recoverable by replay),
fingerprinting, the unified ``stats()`` schema, and the persistence
entry points (one :func:`~repro.store.persistence.save`/``load`` pair,
kind-generic recovery and verification).

Subclasses provide the kind-specific surface through a small hook set:

======================== ==================================================
``_has_data()``          any segments exist (freezes the schema)
``_apply_ingest(...)``   partition one validated batch into segments
``_epoch_span()``        (lo, hi) epochs covered, or ``None``
``_chain_index()``       ordered ``(chain_id, EpochChain)`` pairs
``_attach_chain(...)``   adopt one loaded chain (persistence)
``_manifest_extra()``    kind-specific manifest fields
``_fingerprint_extra()`` kind-specific fingerprint state
``_stats_extra()``       kind-specific ``stats()`` fields
======================== ==================================================
"""

from __future__ import annotations

import hashlib
import json
import math
import os
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.base import normalize_batch
from ..core.codecs import DEFAULT_CODEC, get_codec
from ..core.exceptions import ParameterError
from .chain import EpochChain
from .segment import MemberSpec
from .views import ViewCache

__all__ = ["StoreBase"]


class StoreBase:
    """Common machinery under both store kinds (see module docstring)."""

    #: manifest/persistence kind tag ("store" | "cube")
    kind = "store"
    #: how error messages name this store kind
    kind_noun = "store"
    #: what this kind calls its level-0 segments ("segments" | "cells")
    unit_noun = "segments"
    #: segment-id prefix ("s" for the flat store, "c" for cube cells)
    _id_prefix = "s"

    def __init__(
        self,
        width: float,
        codec: str = DEFAULT_CODEC,
        view_capacity: int = 8,
    ) -> None:
        if not width > 0:
            raise ParameterError(f"width must be positive, got {width!r}")
        get_codec(codec)  # fail fast on unknown codecs
        self.width = float(width)
        self.codec = codec
        self._schema: Dict[str, MemberSpec] = {}
        self._views = ViewCache(view_capacity)
        self._generation = 0
        self._records = 0
        self._next_segment_id = 0
        self._degraded_blocks_total = 0
        self._window_queries = 0
        self._window_slack_total = 0
        self._wal = None
        self._wal_seq = 0
        self._snapshot = 0

    # ------------------------------------------------------------------
    # Schema
    # ------------------------------------------------------------------

    def _has_data(self) -> bool:
        raise NotImplementedError

    def _check_member_field(self, field: Optional[str]) -> None:
        """Kind-specific member-field validation hook (cube: no dims)."""

    def add_member(
        self,
        name: str,
        type_name: str,
        field: Optional[str] = None,
        **kwargs: Any,
    ):
        """Configure a summary member fed from record ``field``.

        Must happen before the first ingest: segments are immutable, so
        a member added later could never be backfilled.
        """
        if name in self._schema:
            raise ParameterError(
                f"{self.kind_noun} already has a member named {name!r}"
            )
        if self._has_data():
            raise ParameterError(
                "cannot add members after ingest has begun; the schema is "
                f"fixed once {self.unit_noun} exist"
            )
        self._check_member_field(field)
        spec = MemberSpec(type_name=type_name, field=field or name, kwargs=kwargs)
        spec.build()  # validate the constructor arguments eagerly
        self._schema[name] = spec
        return self

    @property
    def schema(self) -> Dict[str, MemberSpec]:
        """Snapshot of the member name -> spec mapping."""
        return dict(self._schema)

    @property
    def generation(self) -> int:
        """Monotonic state version (bumped by ingest and compaction)."""
        return self._generation

    @property
    def records(self) -> int:
        """Total records ingested."""
        return self._records

    # ------------------------------------------------------------------
    # Epoch geometry
    # ------------------------------------------------------------------

    def epoch_of(self, key: float) -> int:
        """The epoch (base-segment index) a key falls into."""
        return int(math.floor(float(key) / self.width))

    def _epoch_span(self) -> Optional[Tuple[int, int]]:
        raise NotImplementedError

    def key_span(self) -> Optional[Tuple[float, float]]:
        """Half-open key range covered by ingested data, or ``None``."""
        span = self._epoch_span()
        if span is None:
            return None
        return (span[0] * self.width, (span[1] + 1) * self.width)

    # ------------------------------------------------------------------
    # Ingest (the WAL template)
    # ------------------------------------------------------------------

    def _new_segment_id(self, level: int, start: int) -> str:
        self._next_segment_id += 1
        return f"{self._id_prefix}{self._next_segment_id:06d}-L{level}-e{start}"

    def _apply_ingest(
        self,
        records: List[Mapping[str, Any]],
        keys: List[float],
        weights,
    ) -> Dict[str, int]:
        raise NotImplementedError

    def ingest(
        self,
        records: Iterable[Mapping[str, Any]],
        keys: Optional[Sequence[float]] = None,
        weights: Optional[Sequence[int]] = None,
    ) -> Dict[str, int]:
        """Partition ``records`` by key into immutable segments.

        ``keys`` is a parallel sequence of numeric partition keys
        (timestamps); when omitted, the running record index is used, so
        epochs become fixed-size arrival batches.  ``weights`` is an
        optional parallel sequence of positive integer multiplicities,
        forwarded to each member's batched ingestion.

        With a write-ahead log attached (:meth:`enable_wal`) the batch
        is appended — and, per the log's fsync policy, made durable —
        *before* the in-memory state changes, so a crash at any later
        instant is recoverable by replay.
        """
        if not self._schema:
            raise ParameterError(
                f"{self.kind_noun} has no members; add_member() first"
            )
        records, weights, _total = normalize_batch(records, weights)
        records = list(records)
        if keys is None:
            keys = [float(self._records + i) for i in range(len(records))]
        else:
            if len(keys) != len(records):
                raise ParameterError(
                    f"keys must align with records: got {len(records)} "
                    f"record(s) and {len(keys)} key(s)"
                )
            keys = [float(key) for key in keys]
        for key in keys:
            if not math.isfinite(key):
                raise ParameterError(f"partition keys must be finite, got {key!r}")
        if self._wal is not None:
            seq = self._wal_seq + 1
            self._wal.append(
                seq,
                records,
                keys,
                None if weights is None else [int(w) for w in weights],
            )
            counters = self._apply_ingest(records, keys, weights)
            self._wal_seq = seq
            return counters
        return self._apply_ingest(records, keys, weights)

    # ------------------------------------------------------------------
    # Durability: the write-ahead log and replay
    # ------------------------------------------------------------------

    def enable_wal(
        self,
        directory: str,
        fsync_every: int = 1,
        fs: Any = None,
    ):
        """Attach a write-ahead ingest log rooted at ``directory``.

        Subsequent :meth:`ingest` calls append their batch to the log
        before applying it; ``fsync_every`` is the durability/throughput
        knob (see :mod:`repro.store.wal`).  :meth:`save` records the
        covered sequence in the manifest and retires fully-covered log
        files after the snapshot commits.  Returns the attached
        :class:`~repro.store.wal.WriteAheadLog`.
        """
        from .wal import WriteAheadLog

        if self._wal is not None:
            raise ParameterError(
                f"{self.kind_noun} already has a write-ahead log attached"
            )
        self._wal = WriteAheadLog(directory, fs=fs, fsync_every=fsync_every)
        return self._wal

    @property
    def wal(self):
        """The attached :class:`~repro.store.wal.WriteAheadLog`, or ``None``."""
        return self._wal

    @property
    def wal_seq(self) -> int:
        """Sequence number of the last logged-and-applied ingest batch."""
        return self._wal_seq

    @property
    def snapshot(self) -> int:
        """Generation of the last committed snapshot (0 before any save)."""
        return self._snapshot

    def _replay_wal(self, record) -> None:
        """Re-apply one logged ingest batch (recovery path; no re-logging)."""
        records, weights, _total = normalize_batch(record.records, record.weights)
        self._apply_ingest(list(records), record.keys, weights)
        self._wal_seq = record.seq

    def fingerprint(self) -> str:
        """Digest of the logical store state, for crash-safety proofs.

        Covers everything a snapshot persists and a query can observe —
        schema, counters, every segment's metadata and member states —
        but not administrative counters (snapshot generation, cache
        stats).  Two stores with equal fingerprints give byte-identical
        answers to every query.
        """
        state = {
            "width": self.width,
            "codec": self.codec,
            "schema": {
                name: spec.to_dict() for name, spec in sorted(self._schema.items())
            },
            "records": self._records,
            "wal_seq": self._wal_seq,
        }
        state.update(self._fingerprint_extra())
        canonical = json.dumps(state, separators=(",", ":"), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def _fingerprint_extra(self) -> Dict[str, Any]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Introspection (one stats schema for both kinds)
    # ------------------------------------------------------------------

    def _stats_extra(self) -> Dict[str, Any]:
        raise NotImplementedError

    def stats(self) -> Dict[str, Any]:
        """Store-level statistics for the CLI and the benchmarks.

        Both store kinds report the same outer schema — ``kind``,
        schema/counter fields, ``view_cache`` (the
        :class:`~repro.store.views.ViewCache` hit/miss/size triple), and
        a ``planner`` block with ``degraded_blocks_total``,
        ``window_queries``, and ``window_slack_epochs_total`` — so
        ``repro store stats`` prints one format; kind-specific fields
        ride alongside via :meth:`_stats_extra`.
        """
        stats = {
            "kind": self.kind,
            "width": self.width,
            "codec": self.codec,
            "members": {
                name: spec.to_dict() for name, spec in sorted(self._schema.items())
            },
            "records": self._records,
            "generation": self._generation,
        }
        stats.update(self._stats_extra())
        stats["key_span"] = self.key_span()
        stats["view_cache"] = self._views.stats
        stats["planner"] = {
            "degraded_blocks_total": self._degraded_blocks_total,
            "window_queries": self._window_queries,
            "window_slack_epochs_total": self._window_slack_total,
        }
        return stats

    # ------------------------------------------------------------------
    # Persistence hooks and entry points
    # ------------------------------------------------------------------

    def _chain_index(self) -> List[Tuple[Tuple[Any, ...], EpochChain]]:
        raise NotImplementedError

    def _attach_chain(
        self, chain_id: Tuple[Any, ...], chain: EpochChain
    ) -> None:
        raise NotImplementedError

    def _manifest_extra(self) -> Dict[str, Any]:
        """Kind-specific manifest fields (cube: dims, masks, stale marks)."""
        return {}

    def _apply_manifest_extra(self, manifest: Dict[str, Any]) -> None:
        """Adopt kind-specific manifest fields before chains attach."""

    def save(self, path, fs: Any = None) -> Dict[str, int]:
        """Commit an atomic snapshot of the store to a directory.

        Segments stage under temp names and the manifest rename is the
        single commit point (:func:`~repro.store.persistence.save`), so
        a crash mid-save always leaves a loadable store.  With a WAL
        attached, log files fully covered by the committed snapshot are
        retired afterwards (``wal_retired`` in the returned counters).
        """
        from .persistence import save

        report = save(self, path, fs=fs)
        if self._wal is not None:
            report["wal_retired"] = self._wal.retire(self._wal_seq)
        return report

    @classmethod
    def open(cls, path, fs: Any = None):
        """Load the latest committed snapshot and replay the WAL tail.

        Strict: damage anywhere raises
        :class:`~repro.core.exceptions.SerializationError` (a torn WAL
        tail points at :meth:`recover`, which quarantines instead).
        """
        from .persistence import load

        return load(path, fs=fs, expect_kind=cls.kind)

    @classmethod
    def open_durable(
        cls,
        path,
        fsync_every: int = 1,
        fs: Any = None,
    ):
        """:meth:`open` + :meth:`enable_wal` under ``<path>/wal``.

        The one-call way to get a crash-safe serving store: every
        subsequent ingest is WAL-logged, every :meth:`save` commits
        atomically and retires covered logs.
        """
        store = cls.open(path, fs=fs)
        store.enable_wal(
            os.path.join(str(path), "wal"), fsync_every=fsync_every, fs=fs
        )
        return store

    @classmethod
    def recover(cls, path, fs: Any = None):
        """Crash recovery: quarantine damage, replay, re-commit.

        Kind-generic — the manifest names the kind, so recovering a
        cube directory through ``SegmentStore.recover`` (or the CLI)
        just works.  Returns ``(store, report)`` — see
        :func:`~repro.store.persistence.recover_store`.
        """
        from .persistence import recover_store

        return recover_store(path, fs=fs)

    @staticmethod
    def verify(path, fs: Any = None) -> Dict[str, Any]:
        """Read-only, kind-generic audit of a store directory
        (:func:`~repro.store.persistence.verify_store`)."""
        from .persistence import verify_store

        return verify_store(path, fs=fs)
