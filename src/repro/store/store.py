"""The segmented summary store.

:class:`SegmentStore` is the serving layer the ROADMAP's production
north-star asks for, built directly on the paper's mergeability
guarantee: records are partitioned by a numeric key (a timestamp,
usually) into ``width``-wide *epochs*, each epoch's records are folded
into an immutable level-0 :class:`~repro.store.segment.Segment`
holding one summary per configured member, and :meth:`compact` rolls
adjacent segments up into a dyadic tree of pre-merged segments.  A
range query is then compiled by :mod:`repro.store.planner` into
``O(log S)`` pre-merged nodes instead of an ``O(S)`` scan — and because
every summary is mergeable, the roll-up answers carry exactly the same
guarantees as the naive scan would.

The store's persistence (:mod:`repro.store.persistence`) and the
distributed wire format share one serialization layer
(:mod:`repro.core.codecs`), so a segment written with the compact
binary codec is byte-compatible with what a node would ship upstream.

Durability: snapshots commit atomically (stage, fsync, one manifest
rename — see :mod:`repro.store.persistence`), and with a write-ahead
log attached (:meth:`SegmentStore.enable_wal`) every ingest batch is
logged durably *before* it mutates the in-memory state, so
:meth:`SegmentStore.recover` reconverges a crashed store to the exact
pre-crash answers by replaying the WAL tail over the last snapshot.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.base import Summary, normalize_batch
from ..core.codecs import DEFAULT_CODEC, get_codec
from ..core.exceptions import ParameterError, QueryError
from ..core.parallel import ExecutorLike
from ..engine import (
    FaultModel,
    MergeLedger,
    MergePlan,
    MergeStep,
    RetryPolicy,
    execute_plan,
)
from .planner import QueryPlan, plan_range
from .segment import (
    MemberSpec,
    Segment,
    build_members,
    copy_summary,
    merged_segment,
)
from .views import ViewCache

__all__ = ["SegmentStore", "QueryResult"]


class QueryResult:
    """The merged answer to one range query.

    Holds one merged summary per store member (``result["latency"]``),
    plus the :class:`~repro.store.planner.QueryPlan` that produced it
    and the actual (epoch-aligned) key range covered.  Results may be
    served from the store's view cache — treat the summaries as
    read-only query views.
    """

    def __init__(
        self,
        members: Dict[str, Summary],
        plan: QueryPlan,
        key_range: Tuple[float, float],
    ) -> None:
        self._members = members
        #: the segment cover that answered the query
        self.plan = plan
        #: actual half-open key span covered (query rounded out to epochs)
        self.key_range = key_range

    def __getitem__(self, name: str) -> Summary:
        try:
            return self._members[name]
        except KeyError:
            raise ParameterError(
                f"no store member named {name!r}; members: {sorted(self._members)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._members

    def members(self) -> Dict[str, Summary]:
        """Snapshot of the member name -> merged summary mapping."""
        return dict(self._members)

    @property
    def n(self) -> int:
        """Records covered by the answer."""
        return self.plan.records

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<QueryResult n={self.n} fan_in={self.plan.fan_in} "
            f"range={self.key_range}>"
        )


class SegmentStore:
    """A segmented summary store with dyadic roll-ups and a query planner.

    Parameters
    ----------
    width:
        Key-axis width of one epoch (one base segment).
    codec:
        :mod:`repro.core.codecs` name used by persistence
        (``json.v2`` default; ``binary.v1`` for compact storage).
    view_capacity:
        Size of the merged-query-view LRU (0 disables caching).
    """

    def __init__(
        self,
        width: float,
        codec: str = DEFAULT_CODEC,
        view_capacity: int = 8,
    ) -> None:
        if not width > 0:
            raise ParameterError(f"width must be positive, got {width!r}")
        get_codec(codec)  # fail fast on unknown codecs
        self.width = float(width)
        self.codec = codec
        self._schema: Dict[str, MemberSpec] = {}
        self._base: Dict[int, Segment] = {}
        self._rollups: Dict[Tuple[int, int], Segment] = {}
        self._max_level = 0
        self._generation = 0
        self._next_segment_id = 0
        self._records = 0
        self._views = ViewCache(view_capacity)
        self._degraded_blocks_total = 0
        self._window_queries = 0
        self._window_slack_total = 0
        self._wal = None
        self._wal_seq = 0
        self._snapshot = 0

    # ------------------------------------------------------------------
    # Schema
    # ------------------------------------------------------------------

    def add_member(
        self,
        name: str,
        type_name: str,
        field: Optional[str] = None,
        **kwargs: Any,
    ) -> "SegmentStore":
        """Configure a summary member fed from record ``field``.

        Must happen before the first ingest: segments are immutable, so
        a member added later could never be backfilled.
        """
        if name in self._schema:
            raise ParameterError(f"store already has a member named {name!r}")
        if self._base:
            raise ParameterError(
                "cannot add members after ingest has begun; the schema is "
                "fixed once segments exist"
            )
        spec = MemberSpec(type_name=type_name, field=field or name, kwargs=kwargs)
        spec.build()  # validate the constructor arguments eagerly
        self._schema[name] = spec
        return self

    @property
    def schema(self) -> Dict[str, MemberSpec]:
        """Snapshot of the member name -> spec mapping."""
        return dict(self._schema)

    @property
    def generation(self) -> int:
        """Monotonic state version (bumped by ingest and compaction)."""
        return self._generation

    @property
    def records(self) -> int:
        """Total records ingested."""
        return self._records

    @property
    def num_segments(self) -> int:
        """Live level-0 segments."""
        return len(self._base)

    @property
    def num_rollups(self) -> int:
        """Materialized roll-up segments."""
        return len(self._rollups)

    def epoch_of(self, key: float) -> int:
        """The epoch (base-segment index) a key falls into."""
        return int(math.floor(float(key) / self.width))

    def key_span(self) -> Optional[Tuple[float, float]]:
        """Half-open key range covered by ingested data, or ``None``."""
        if not self._base:
            return None
        lo = min(self._base) * self.width
        hi = (max(self._base) + 1) * self.width
        return (lo, hi)

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def _new_segment_id(self, level: int, start: int) -> str:
        self._next_segment_id += 1
        return f"s{self._next_segment_id:06d}-L{level}-e{start}"

    def _build_base_segment(
        self,
        epoch: int,
        records: Sequence[Mapping[str, Any]],
        weights: Optional[Sequence[int]],
    ) -> Segment:
        return Segment(
            segment_id=self._new_segment_id(0, epoch),
            level=0,
            start=epoch,
            count=len(records),
            members=build_members(self._schema, records, weights),
        )

    def _invalidate_rollups(self, epoch: int) -> int:
        """Drop every roll-up whose block contains ``epoch``."""
        dropped = 0
        for level in range(1, self._max_level + 1):
            start = (epoch >> level) << level
            if self._rollups.pop((level, start), None) is not None:
                dropped += 1
        return dropped

    def ingest(
        self,
        records: Iterable[Mapping[str, Any]],
        keys: Optional[Sequence[float]] = None,
        weights: Optional[Sequence[int]] = None,
    ) -> Dict[str, int]:
        """Partition ``records`` by key into immutable base segments.

        ``keys`` is a parallel sequence of numeric partition keys
        (timestamps); when omitted, the running record index is used, so
        epochs become fixed-size arrival batches.  ``weights`` is an
        optional parallel sequence of positive integer multiplicities,
        forwarded to each member's batched ingestion.

        Re-ingesting into an epoch that already has a segment does not
        mutate it: a fresh segment is built from the batch and *merged*
        with the old one into a replacement, and every roll-up covering
        that epoch is invalidated (rebuilt on the next :meth:`compact`).
        Returns counters: ``segments_created``, ``segments_replaced``,
        ``rollups_invalidated``, ``records``.

        With a write-ahead log attached (:meth:`enable_wal`) the batch
        is appended — and, per the log's fsync policy, made durable —
        *before* the in-memory state changes, so a crash at any later
        instant is recoverable by replay.
        """
        if not self._schema:
            raise ParameterError("store has no members; add_member() first")
        records, weights, _total = normalize_batch(records, weights)
        records = list(records)
        if keys is None:
            keys = [float(self._records + i) for i in range(len(records))]
        else:
            if len(keys) != len(records):
                raise ParameterError(
                    f"keys must align with records: got {len(records)} "
                    f"record(s) and {len(keys)} key(s)"
                )
            keys = [float(key) for key in keys]
        for key in keys:
            if not math.isfinite(key):
                raise ParameterError(f"partition keys must be finite, got {key!r}")
        if self._wal is not None:
            seq = self._wal_seq + 1
            self._wal.append(
                seq,
                records,
                keys,
                None if weights is None else [int(w) for w in weights],
            )
            counters = self._apply_ingest(records, keys, weights)
            self._wal_seq = seq
            return counters
        return self._apply_ingest(records, keys, weights)

    def _apply_ingest(
        self,
        records: List[Mapping[str, Any]],
        keys: List[float],
        weights,
    ) -> Dict[str, int]:
        """Partition a validated batch into segments (the WAL replay path)."""
        by_epoch: Dict[int, List[int]] = {}
        for index, key in enumerate(keys):
            by_epoch.setdefault(self.epoch_of(key), []).append(index)

        created = replaced = invalidated = 0
        weight_list = None if weights is None else weights.tolist()
        for epoch in sorted(by_epoch):
            idx = by_epoch[epoch]
            batch = [records[i] for i in idx]
            batch_weights = (
                None if weight_list is None else [weight_list[i] for i in idx]
            )
            fresh = self._build_base_segment(epoch, batch, batch_weights)
            old = self._base.get(epoch)
            if old is None:
                self._base[epoch] = fresh
                created += 1
            else:
                self._base[epoch] = merged_segment(
                    self._new_segment_id(0, epoch), 0, epoch, [old, fresh]
                )
                replaced += 1
            invalidated += self._invalidate_rollups(epoch)
        self._records += len(records)
        self._generation += 1
        return {
            "segments_created": created,
            "segments_replaced": replaced,
            "rollups_invalidated": invalidated,
            "records": len(records),
        }

    # ------------------------------------------------------------------
    # Durability: the write-ahead log and replay
    # ------------------------------------------------------------------

    def enable_wal(
        self,
        directory: str,
        fsync_every: int = 1,
        fs: Any = None,
    ):
        """Attach a write-ahead ingest log rooted at ``directory``.

        Subsequent :meth:`ingest` calls append their batch to the log
        before applying it; ``fsync_every`` is the durability/throughput
        knob (see :mod:`repro.store.wal`).  :meth:`save` records the
        covered sequence in the manifest and retires fully-covered log
        files after the snapshot commits.  Returns the attached
        :class:`~repro.store.wal.WriteAheadLog`.
        """
        from .wal import WriteAheadLog

        if self._wal is not None:
            raise ParameterError("store already has a write-ahead log attached")
        self._wal = WriteAheadLog(directory, fs=fs, fsync_every=fsync_every)
        return self._wal

    @property
    def wal(self):
        """The attached :class:`~repro.store.wal.WriteAheadLog`, or ``None``."""
        return self._wal

    @property
    def wal_seq(self) -> int:
        """Sequence number of the last logged-and-applied ingest batch."""
        return self._wal_seq

    @property
    def snapshot(self) -> int:
        """Generation of the last committed snapshot (0 before any save)."""
        return self._snapshot

    def _replay_wal(self, record) -> None:
        """Re-apply one logged ingest batch (recovery path; no re-logging)."""
        records, weights, _total = normalize_batch(record.records, record.weights)
        self._apply_ingest(list(records), record.keys, weights)
        self._wal_seq = record.seq

    def fingerprint(self) -> str:
        """Digest of the logical store state, for crash-safety proofs.

        Covers everything a snapshot persists and a query can observe —
        schema, counters, every segment's metadata and member states —
        but not administrative counters (snapshot generation, cache
        stats).  Two stores with equal fingerprints give byte-identical
        answers to every query.
        """
        state = {
            "width": self.width,
            "codec": self.codec,
            "schema": {
                name: spec.to_dict() for name, spec in sorted(self._schema.items())
            },
            "records": self._records,
            "max_level": self._max_level,
            "wal_seq": self._wal_seq,
            "segments": [
                {
                    "meta": segment.meta(),
                    "members": {
                        name: summary.to_dict()
                        for name, summary in sorted(segment.members.items())
                    },
                }
                for segment in self.segments()
            ],
        }
        canonical = json.dumps(state, separators=(",", ":"), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # Compaction: the dyadic roll-up tree
    # ------------------------------------------------------------------

    def _seed_rollup(self, segment_id: str, level: int, start: int):
        """Copy-on-write builder for a roll-up's merge step.

        Receives the first child segment of the block and returns the
        fresh roll-up seeded with member-wise copies of it (exactly how
        :func:`~repro.store.segment.merged_segment` starts); the engine
        then merges the remaining children in.
        """

        def seed(first: Segment) -> Segment:
            return Segment(
                segment_id=segment_id,
                level=level,
                start=start,
                count=first.count,
                members={
                    name: copy_summary(summary)
                    for name, summary in first.members.items()
                },
            )

        return seed

    def _compile_compaction(
        self, lo: int, hi: int, levels: int
    ) -> Tuple[MergePlan, Dict[Tuple[int, int], Segment]]:
        """Compile the incremental dyadic roll-up into a merge plan.

        Slots are ``(level, start)`` block coordinates.  Jobs are
        discovered level by level exactly like the historical loop —
        same block iteration, same skip of materialized roll-ups, same
        segment-id allocation order — but a job may now reference a
        *planned* sibling from the level below as a source slot, which
        is what lets the whole tree execute as one plan (the engine's
        wave packer rediscovers the per-level barriers from the slot
        conflicts).
        """
        steps: List[MergeStep] = []
        inputs: Dict[Tuple[int, int], Segment] = {}
        planned: set = set()
        for level in range(1, levels + 1):
            block = 1 << level
            half = block >> 1
            first = (lo // block) * block
            for start in range(first, hi + 1, block):
                if (level, start) in self._rollups:
                    continue
                srcs: List[Tuple[int, int]] = []
                for child_start in (start, start + half):
                    child_slot = (level - 1, child_start)
                    if level - 1 >= 1 and child_slot in planned:
                        srcs.append(child_slot)
                        continue
                    child = self._child_node(level - 1, child_start)
                    if child is not None:
                        inputs[child_slot] = child
                        srcs.append(child_slot)
                if not srcs:
                    continue
                slot = (level, start)
                steps.append(
                    MergeStep(
                        "merge",
                        slot,
                        tuple(srcs),
                        builder=self._seed_rollup(
                            self._new_segment_id(level, start), level, start
                        ),
                    )
                )
                planned.add(slot)
        for slot in sorted(planned):
            steps.append(MergeStep("emit", slot))
        plan = MergePlan(
            name=f"compact[{len(self._base)} segments, {levels} levels]",
            steps=steps,
            groupable=True,
            fuse_fanin=False,
        )
        return plan, inputs

    def compact(
        self,
        executor: ExecutorLike = None,
        *,
        fault_model: Optional[FaultModel] = None,
        retry_policy: Optional[RetryPolicy] = None,
        exactly_once: bool = True,
    ) -> Dict[str, int]:
        """Materialize the dyadic roll-up tree over the base segments.

        Level ``ℓ`` holds one pre-merged segment per aligned block of
        ``2**ℓ`` epochs that contains data; each is the k-way
        ``merge_many`` of its (at most two) children from the level
        below.  Blocks whose roll-up is already materialized are
        skipped, so repeated compactions are incremental.  The roll-up
        is compiled into a :class:`~repro.engine.plan.MergePlan` and run
        by :func:`repro.engine.execute_plan`; with an ``executor`` (int
        worker count or :class:`~repro.core.parallel.ParallelExecutor`)
        the independent merges of each level fan out across workers.

        ``fault_model`` runs the compaction over the engine's unreliable
        fabric: each child delivery is retried per ``retry_policy``, and
        with ``exactly_once`` (the default) every fresh roll-up keeps a
        merge ledger so injected duplicate deliveries merge exactly
        once.  A roll-up whose retries are exhausted is *dropped* — not
        installed partially — so queries degrade to its children; its
        block is retried by the next :meth:`compact`.  Corruption
        injection is meaningless here (segments never cross a wire
        during compaction) and raises
        :class:`~repro.core.exceptions.ParameterError`.

        Returns counters: ``levels``, ``rollups_built``,
        ``merge_inputs`` (summaries consumed by the new roll-ups); under
        a fault model also ``retries`` and ``rollups_failed``.
        """
        if fault_model is not None and fault_model.corruption:
            raise ParameterError(
                "compaction never serializes segments, so corruption "
                "injection cannot apply; use loss/duplicate/crash faults"
            )
        if len(self._base) == 0:
            return {"levels": 0, "rollups_built": 0, "merge_inputs": 0}
        lo, hi = min(self._base), max(self._base)
        span = hi - lo + 1
        levels = max(1, math.ceil(math.log2(span))) if span > 1 else 1
        plan, inputs = self._compile_compaction(lo, hi, levels)
        built = merge_inputs = retries = failed = 0
        if plan.merge_steps:
            use_ledger = fault_model is not None and exactly_once
            result = execute_plan(
                plan,
                inputs,
                executor=executor,
                fault_model=fault_model,
                retry_policy=retry_policy,
                ledger_factory=MergeLedger if use_ledger else None,
                # the compaction counters come from the plan itself;
                # size/coverage tracking is only needed under faults
                # (where execute_plan forces it back on)
                accounting=False,
            )
            fan_in = {
                step.slot: len(step.srcs) for step in plan.merge_steps
            }
            for slot, segment in result.outputs.items():
                self._rollups[slot] = segment
                built += 1
                merge_inputs += fan_in[slot]
            failed = len(fan_in) - built
            if result.report.fault_stats is not None:
                retries = result.report.fault_stats.retries
        self._max_level = max(self._max_level, levels)
        if built:
            self._generation += 1
        counters = {
            "levels": levels,
            "rollups_built": built,
            "merge_inputs": merge_inputs,
        }
        if fault_model is not None:
            counters["retries"] = retries
            counters["rollups_failed"] = failed
        return counters

    def _child_node(self, level: int, start: int) -> Optional[Segment]:
        """The materialized node covering block ``(level, start)``, if any."""
        if level == 0:
            return self._base.get(start)
        return self._rollups.get((level, start))

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------

    def plan(self, lo: float, hi: float, use_rollups: bool = True) -> QueryPlan:
        """Compile key range ``[lo, hi)`` into a segment cover.

        The range is rounded outward to whole epochs (segments are the
        store's resolution); see :mod:`repro.store.planner` for the
        O(log S) decomposition.
        """
        if not hi > lo:
            raise ParameterError(
                f"query range must satisfy lo < hi, got [{lo!r}, {hi!r})"
            )
        lo_epoch = self.epoch_of(lo)
        hi_epoch = int(math.ceil(float(hi) / self.width))
        plan = plan_range(
            lo_epoch,
            hi_epoch,
            self._base,
            self._rollups,
            max_level=max(self._max_level, 1),
            use_rollups=use_rollups,
        )
        self._degraded_blocks_total += plan.degraded_blocks
        return plan

    def _window_range(
        self, window: float, end: Optional[float]
    ) -> Tuple[int, int, int]:
        """Resolve a trailing window to ``(lo_epoch, hi_epoch, window_epochs)``.

        ``end`` defaults to the end of the ingested key span (the
        store's "now"); the window is rounded outward to whole epochs.
        """
        if not window > 0:
            raise ParameterError(f"window must be positive, got {window!r}")
        if end is None:
            span = self.key_span()
            if span is None:
                raise QueryError(
                    "window query on an empty store: no key span to anchor "
                    "the window end (pass hi= explicitly)"
                )
            end = span[1]
        hi_epoch = int(math.ceil(float(end) / self.width))
        window_epochs = max(1, int(math.ceil(float(window) / self.width)))
        return hi_epoch - window_epochs, hi_epoch, window_epochs

    def plan_window(
        self,
        window: float,
        end: Optional[float] = None,
        eps: float = 0.0,
        use_rollups: bool = True,
    ) -> QueryPlan:
        """Compile the trailing window ``[end - window, end)`` into a cover.

        This is the exponential-histogram view of the roll-up tree: a
        trailing window's dyadic cover uses at most two blocks per level
        (the EH per-level invariant), and with ``eps > 0`` the one
        roll-up straddling the window start may be absorbed whole —
        covering at most ``floor(eps * window_epochs)`` extra epochs, so
        the answer's mass is within a ``(1 + eps)`` factor of the exact
        window while reusing the largest materialized blocks available.
        """
        if not 0.0 <= eps <= 1.0:
            raise ParameterError(f"eps must be in [0, 1], got {eps!r}")
        lo_epoch, hi_epoch, window_epochs = self._window_range(window, end)
        plan = plan_range(
            lo_epoch,
            hi_epoch,
            self._base,
            self._rollups,
            max_level=max(self._max_level, 1),
            use_rollups=use_rollups,
            slack_lo=int(math.floor(eps * window_epochs)),
        )
        self._degraded_blocks_total += plan.degraded_blocks
        self._window_queries += 1
        self._window_slack_total += plan.window_slack_used
        return plan

    def query(
        self,
        lo: Optional[float] = None,
        hi: Optional[float] = None,
        use_rollups: bool = True,
        *,
        window: Optional[float] = None,
        window_eps: float = 0.0,
    ) -> QueryResult:
        """Answer a ``[lo, hi)`` range query from pre-merged segments.

        Plans the minimal cover, merges each member across the cover
        (one k-way ``merge_many`` per member), and caches the merged
        view in the store's LRU — repeated queries for the same range
        at the same store generation are served without re-merging.
        ``use_rollups=False`` forces the naive full scan over base
        segments (the benchmark baseline; answers are equivalent).

        ``window=W`` asks for the trailing window instead: the last
        ``W`` key units ending at ``hi`` (default: the end of the
        ingested span).  ``window_eps`` relaxes the window start so the
        planner may absorb one straddling materialized roll-up whole —
        the exponential-histogram rule — trading at most a
        ``(1 + window_eps)`` mass overshoot for strictly fewer merges
        (see :meth:`plan_window`).
        """
        if not self._schema:
            raise QueryError("store has no members; add_member() first")
        if window is not None:
            if lo is not None:
                raise ParameterError(
                    "pass either an explicit [lo, hi) range or window=, "
                    "not both"
                )
            lo_epoch, hi_epoch, window_epochs = self._window_range(window, hi)
            cache_key = (
                self._generation,
                "window",
                lo_epoch,
                hi_epoch,
                window_epochs,
                float(window_eps),
                use_rollups,
            )
            cached = self._views.get(cache_key)
            if cached is not None:
                return cached
            plan = self.plan_window(
                window,
                end=hi,
                eps=window_eps,
                use_rollups=use_rollups,
            )
        else:
            if lo is None or hi is None:
                raise ParameterError(
                    "query needs an explicit [lo, hi) range or window="
                )
            cache_key = (
                self._generation,
                self.epoch_of(lo),
                int(math.ceil(float(hi) / self.width)),
                use_rollups,
            )
            cached = self._views.get(cache_key)
            if cached is not None:
                return cached
            plan = self.plan(lo, hi, use_rollups=use_rollups)
        members: Dict[str, Summary] = {}
        for name, spec in self._schema.items():
            parts = [segment.members[name] for segment in plan.segments]
            if not parts:
                members[name] = spec.build()
                continue
            merged = copy_summary(parts[0])
            merged.merge_many(parts[1:])
            members[name] = merged
        result = QueryResult(
            members,
            plan,
            key_range=(
                plan.covered_lo_epoch * self.width,
                plan.hi_epoch * self.width,
            ),
        )
        self._views.put(cache_key, result)
        return result

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def segments(self) -> List[Segment]:
        """All live segments (base in epoch order, then roll-ups by level)."""
        base = [self._base[e] for e in sorted(self._base)]
        ups = [self._rollups[k] for k in sorted(self._rollups)]
        return base + ups

    def stats(self) -> Dict[str, Any]:
        """Store-level statistics for the CLI and the benchmarks."""
        per_level: Dict[int, int] = {}
        for level, _start in self._rollups:
            per_level[level] = per_level.get(level, 0) + 1
        return {
            "width": self.width,
            "codec": self.codec,
            "members": {
                name: spec.to_dict() for name, spec in sorted(self._schema.items())
            },
            "records": self._records,
            "generation": self._generation,
            "base_segments": len(self._base),
            "rollups": len(self._rollups),
            "rollups_per_level": {str(k): per_level[k] for k in sorted(per_level)},
            "key_span": self.key_span(),
            "view_cache": self._views.stats,
            "planner": {
                "degraded_blocks_total": self._degraded_blocks_total,
                "window_queries": self._window_queries,
                "window_slack_epochs_total": self._window_slack_total,
            },
        }

    # ------------------------------------------------------------------
    # Persistence (delegates to repro.store.persistence)
    # ------------------------------------------------------------------

    def save(self, path, fs: Any = None) -> Dict[str, int]:
        """Commit an atomic snapshot of the store to a directory.

        Segments stage under temp names and the manifest rename is the
        single commit point (:func:`~repro.store.persistence.save_store`),
        so a crash mid-save always leaves a loadable store.  With a WAL
        attached, log files fully covered by the committed snapshot are
        retired afterwards (``wal_retired`` in the returned counters).
        """
        from .persistence import save_store

        report = save_store(self, path, fs=fs)
        if self._wal is not None:
            report["wal_retired"] = self._wal.retire(self._wal_seq)
        return report

    @classmethod
    def open(cls, path, fs: Any = None) -> "SegmentStore":
        """Load the latest committed snapshot and replay the WAL tail.

        Strict: damage anywhere raises
        :class:`~repro.core.exceptions.SerializationError` (a torn WAL
        tail points at :meth:`recover`, which quarantines instead).
        """
        from .persistence import load_store

        return load_store(path, fs=fs)

    @classmethod
    def open_durable(
        cls,
        path,
        fsync_every: int = 1,
        fs: Any = None,
    ) -> "SegmentStore":
        """:meth:`open` + :meth:`enable_wal` under ``<path>/wal``.

        The one-call way to get a crash-safe serving store: every
        subsequent ingest is WAL-logged, every :meth:`save` commits
        atomically and retires covered logs.
        """
        store = cls.open(path, fs=fs)
        store.enable_wal(
            os.path.join(str(path), "wal"), fsync_every=fsync_every, fs=fs
        )
        return store

    @classmethod
    def recover(cls, path, fs: Any = None):
        """Crash recovery: quarantine damage, replay, re-commit.

        Returns ``(store, report)`` — see
        :func:`~repro.store.persistence.recover_store`.
        """
        from .persistence import recover_store

        return recover_store(path, fs=fs)

    @staticmethod
    def verify(path, fs: Any = None) -> Dict[str, Any]:
        """Read-only audit of a store directory
        (:func:`~repro.store.persistence.verify_store`)."""
        from .persistence import verify_store

        return verify_store(path, fs=fs)
