"""The segmented summary store.

:class:`SegmentStore` is the serving layer the ROADMAP's production
north-star asks for, built directly on the paper's mergeability
guarantee: records are partitioned by a numeric key (a timestamp,
usually) into ``width``-wide *epochs*, each epoch's records are folded
into an immutable level-0 :class:`~repro.store.segment.Segment`
holding one summary per configured member, and :meth:`compact` rolls
adjacent segments up into a dyadic tree of pre-merged segments.  A
range query is then compiled by :mod:`repro.store.planner` into
``O(log S)`` pre-merged nodes instead of an ``O(S)`` scan — and because
every summary is mergeable, the roll-up answers carry exactly the same
guarantees as the naive scan would.

Structurally the store is *one* :class:`~repro.store.chain.EpochChain`
— the shared storage kernel a :class:`~repro.store.cube.CubeStore`
instantiates once per cell — layered with the scaffolding of
:class:`~repro.store.common.StoreBase` (schema, WAL ingest,
persistence, stats).

The store's persistence (:mod:`repro.store.persistence`) and the
distributed wire format share one serialization layer
(:mod:`repro.core.codecs`), so a segment written with the compact
binary codec is byte-compatible with what a node would ship upstream.

Durability: snapshots commit atomically (stage, fsync, one manifest
rename — see :mod:`repro.store.persistence`), and with a write-ahead
log attached (:meth:`SegmentStore.enable_wal`) every ingest batch is
logged durably *before* it mutates the in-memory state, so
:meth:`SegmentStore.recover` reconverges a crashed store to the exact
pre-crash answers by replaying the WAL tail over the last snapshot.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.base import Summary
from ..core.codecs import DEFAULT_CODEC
from ..core.exceptions import ParameterError, QueryError
from ..core.parallel import ExecutorLike
from ..engine import FaultModel, MergePlan, MergeStep, RetryPolicy
from .chain import (
    EpochChain,
    check_compaction_fault_model,
    compile_rollup_steps,
    dyadic_levels,
    resolve_window,
    run_store_plan,
)
from .common import StoreBase
from .planner import QueryPlan
from .segment import Segment, build_members, copy_summary, merged_segment

__all__ = ["SegmentStore", "QueryResult"]


class QueryResult:
    """The merged answer to one range query.

    Holds one merged summary per store member (``result["latency"]``),
    plus the :class:`~repro.store.planner.QueryPlan` that produced it
    and the actual (epoch-aligned) key range covered.  Results may be
    served from the store's view cache — treat the summaries as
    read-only query views.
    """

    def __init__(
        self,
        members: Dict[str, Summary],
        plan: QueryPlan,
        key_range: Tuple[float, float],
    ) -> None:
        self._members = members
        #: the segment cover that answered the query
        self.plan = plan
        #: actual half-open key span covered (query rounded out to epochs)
        self.key_range = key_range

    def __getitem__(self, name: str) -> Summary:
        try:
            return self._members[name]
        except KeyError:
            raise ParameterError(
                f"no store member named {name!r}; members: {sorted(self._members)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._members

    def members(self) -> Dict[str, Summary]:
        """Snapshot of the member name -> merged summary mapping."""
        return dict(self._members)

    @property
    def n(self) -> int:
        """Records covered by the answer."""
        return self.plan.records

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<QueryResult n={self.n} fan_in={self.plan.fan_in} "
            f"range={self.key_range}>"
        )


class SegmentStore(StoreBase):
    """A segmented summary store with dyadic roll-ups and a query planner.

    Parameters
    ----------
    width:
        Key-axis width of one epoch (one base segment).
    codec:
        :mod:`repro.core.codecs` name used by persistence
        (``json.v2`` default; ``binary.v1`` for compact storage).
    view_capacity:
        Size of the merged-query-view LRU (0 disables caching).
    """

    kind = "store"
    kind_noun = "store"
    unit_noun = "segments"
    _id_prefix = "s"

    def __init__(
        self,
        width: float,
        codec: str = DEFAULT_CODEC,
        view_capacity: int = 8,
    ) -> None:
        super().__init__(width, codec=codec, view_capacity=view_capacity)
        self._chain = EpochChain()

    # ------------------------------------------------------------------
    # The chain kernel, exposed under the historical attribute names
    # ------------------------------------------------------------------

    @property
    def _base(self) -> Dict[int, Segment]:
        """Live epoch -> level-0 segment mapping (the chain's, shared)."""
        return self._chain.base

    @property
    def _rollups(self) -> Dict[Tuple[int, int], Segment]:
        """Live (level, start) -> roll-up mapping (the chain's, shared)."""
        return self._chain.rollups

    @property
    def _max_level(self) -> int:
        return self._chain.max_level

    @_max_level.setter
    def _max_level(self, value: int) -> None:
        self._chain.max_level = value

    def _has_data(self) -> bool:
        return bool(self._chain.base)

    @property
    def num_segments(self) -> int:
        """Live level-0 segments."""
        return len(self._chain.base)

    @property
    def num_rollups(self) -> int:
        """Materialized roll-up segments."""
        return len(self._chain.rollups)

    def _epoch_span(self) -> Optional[Tuple[int, int]]:
        if not self._chain.base:
            return None
        return (min(self._chain.base), max(self._chain.base))

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def _build_base_segment(
        self,
        epoch: int,
        records: Sequence[Mapping[str, Any]],
        weights: Optional[Sequence[int]],
    ) -> Segment:
        return Segment(
            segment_id=self._new_segment_id(0, epoch),
            level=0,
            start=epoch,
            count=len(records),
            members=build_members(self._schema, records, weights),
        )

    def ingest(self, records, keys=None, weights=None) -> Dict[str, int]:
        """Partition ``records`` by key into immutable base segments.

        ``keys``/``weights`` behave as documented on
        :meth:`~repro.store.common.StoreBase.ingest`.  Re-ingesting into
        an epoch that already has a segment does not mutate it: a fresh
        segment is built from the batch and *merged* with the old one
        into a replacement, and every roll-up covering that epoch is
        invalidated (rebuilt on the next :meth:`compact`).  Returns
        counters: ``segments_created``, ``segments_replaced``,
        ``rollups_invalidated``, ``records``.
        """
        return super().ingest(records, keys, weights)

    def _apply_ingest(
        self,
        records: List[Mapping[str, Any]],
        keys: List[float],
        weights,
    ) -> Dict[str, int]:
        """Partition a validated batch into segments (the WAL replay path)."""
        by_epoch: Dict[int, List[int]] = {}
        for index, key in enumerate(keys):
            by_epoch.setdefault(self.epoch_of(key), []).append(index)

        created = replaced = invalidated = 0
        weight_list = None if weights is None else weights.tolist()
        for epoch in sorted(by_epoch):
            idx = by_epoch[epoch]
            batch = [records[i] for i in idx]
            batch_weights = (
                None if weight_list is None else [weight_list[i] for i in idx]
            )
            fresh = self._build_base_segment(epoch, batch, batch_weights)
            old = self._chain.base.get(epoch)
            if old is None:
                self._chain.base[epoch] = fresh
                created += 1
            else:
                self._chain.base[epoch] = merged_segment(
                    self._new_segment_id(0, epoch), 0, epoch, [old, fresh]
                )
                replaced += 1
            invalidated += self._chain.drop_covering_rollups(epoch)
        self._records += len(records)
        self._generation += 1
        return {
            "segments_created": created,
            "segments_replaced": replaced,
            "rollups_invalidated": invalidated,
            "records": len(records),
        }

    def _fingerprint_extra(self) -> Dict[str, Any]:
        return {
            "max_level": self._max_level,
            "segments": [
                {
                    "meta": segment.meta(),
                    "members": {
                        name: summary.to_dict()
                        for name, summary in sorted(segment.members.items())
                    },
                }
                for segment in self.segments()
            ],
        }

    # ------------------------------------------------------------------
    # Compaction: the dyadic roll-up tree
    # ------------------------------------------------------------------

    def _compile_compaction(
        self, lo: int, hi: int, levels: int
    ) -> Tuple[MergePlan, Dict[Tuple[int, int], Segment]]:
        """Compile the incremental dyadic roll-up into a merge plan.

        Job discovery, slot layout, and segment-id allocation live in
        :func:`~repro.store.chain.compile_rollup_steps` (shared with the
        cube); slots are ``(level, start)`` block coordinates and every
        planned block gets an ``emit`` step in block order.
        """
        steps: List[MergeStep] = []
        inputs: Dict[Tuple[int, int], Segment] = {}
        planned = compile_rollup_steps(
            self._chain,
            levels,
            slot_of=lambda block: block,
            new_segment_id=self._new_segment_id,
            steps=steps,
            inputs=inputs,
        )
        for slot in sorted(planned):
            steps.append(MergeStep("emit", slot))
        plan = MergePlan(
            name=f"compact[{len(self._chain.base)} segments, {levels} levels]",
            steps=steps,
            groupable=True,
            fuse_fanin=False,
        )
        return plan, inputs

    def compact(
        self,
        executor: ExecutorLike = None,
        *,
        fault_model: Optional[FaultModel] = None,
        retry_policy: Optional[RetryPolicy] = None,
        exactly_once: bool = True,
    ) -> Dict[str, int]:
        """Materialize the dyadic roll-up tree over the base segments.

        Level ``ℓ`` holds one pre-merged segment per aligned block of
        ``2**ℓ`` epochs that contains data; each is the k-way
        ``merge_many`` of its (at most two) children from the level
        below.  Blocks whose roll-up is already materialized are
        skipped, so repeated compactions are incremental.  The roll-up
        is compiled into a :class:`~repro.engine.plan.MergePlan` and run
        by :func:`repro.engine.execute_plan` (via the shared
        :func:`~repro.store.chain.run_store_plan`); with an ``executor``
        (int worker count or
        :class:`~repro.core.parallel.ParallelExecutor`) the independent
        merges of each level fan out across workers.

        ``fault_model`` runs the compaction over the engine's unreliable
        fabric: each child delivery is retried per ``retry_policy``, and
        with ``exactly_once`` (the default) every fresh roll-up keeps a
        merge ledger so injected duplicate deliveries merge exactly
        once.  A roll-up whose retries are exhausted is *dropped* — not
        installed partially — so queries degrade to its children; its
        block is retried by the next :meth:`compact`.  Corruption
        injection is meaningless here (segments never cross a wire
        during compaction) and raises
        :class:`~repro.core.exceptions.ParameterError`.

        Returns counters: ``levels``, ``rollups_built``,
        ``merge_inputs`` (summaries consumed by the new roll-ups); under
        a fault model also ``retries`` and ``rollups_failed``.
        """
        check_compaction_fault_model(fault_model)
        if len(self._chain.base) == 0:
            return {"levels": 0, "rollups_built": 0, "merge_inputs": 0}
        levels = dyadic_levels(self._chain)
        lo, hi = min(self._chain.base), max(self._chain.base)
        plan, inputs = self._compile_compaction(lo, hi, levels)
        built = merge_inputs = retries = failed = 0
        if plan.merge_steps:
            result = run_store_plan(
                plan,
                inputs,
                executor=executor,
                fault_model=fault_model,
                retry_policy=retry_policy,
                exactly_once=exactly_once,
            )
            fan_in = {
                step.slot: len(step.srcs) for step in plan.merge_steps
            }
            for slot, segment in result.outputs.items():
                self._chain.rollups[slot] = segment
                built += 1
                merge_inputs += fan_in[slot]
            failed = len(fan_in) - built
            if result.report.fault_stats is not None:
                retries = result.report.fault_stats.retries
        self._max_level = max(self._max_level, levels)
        if built:
            self._generation += 1
        counters = {
            "levels": levels,
            "rollups_built": built,
            "merge_inputs": merge_inputs,
        }
        if fault_model is not None:
            counters["retries"] = retries
            counters["rollups_failed"] = failed
        return counters

    def _child_node(self, level: int, start: int) -> Optional[Segment]:
        """The materialized node covering block ``(level, start)``, if any."""
        return self._chain.node(level, start)

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------

    def plan(self, lo: float, hi: float, use_rollups: bool = True) -> QueryPlan:
        """Compile key range ``[lo, hi)`` into a segment cover.

        The range is rounded outward to whole epochs (segments are the
        store's resolution); see :mod:`repro.store.planner` for the
        O(log S) decomposition.
        """
        if not hi > lo:
            raise ParameterError(
                f"query range must satisfy lo < hi, got [{lo!r}, {hi!r})"
            )
        lo_epoch = self.epoch_of(lo)
        hi_epoch = int(math.ceil(float(hi) / self.width))
        plan = self._chain.plan(lo_epoch, hi_epoch, use_rollups=use_rollups)
        self._degraded_blocks_total += plan.degraded_blocks
        return plan

    def _window_range(
        self, window: float, end: Optional[float]
    ) -> Tuple[int, int, int]:
        """Resolve a trailing window to ``(lo_epoch, hi_epoch, window_epochs)``.

        ``end`` defaults to the end of the ingested key span (the
        store's "now"); the window is rounded outward to whole epochs
        (see :func:`~repro.store.chain.resolve_window`).
        """
        lo_epoch, hi_epoch, window_epochs, _slack = resolve_window(
            window,
            end,
            0.0,
            width=self.width,
            span=self.key_span(),
            noun=self.kind_noun,
        )
        return lo_epoch, hi_epoch, window_epochs

    def plan_window(
        self,
        window: float,
        end: Optional[float] = None,
        eps: float = 0.0,
        use_rollups: bool = True,
    ) -> QueryPlan:
        """Compile the trailing window ``[end - window, end)`` into a cover.

        This is the exponential-histogram view of the roll-up tree: a
        trailing window's dyadic cover uses at most two blocks per level
        (the EH per-level invariant), and with ``eps > 0`` the one
        roll-up straddling the window start may be absorbed whole —
        covering at most ``floor(eps * window_epochs)`` extra epochs, so
        the answer's mass is within a ``(1 + eps)`` factor of the exact
        window while reusing the largest materialized blocks available.
        """
        lo_epoch, hi_epoch, _window_epochs, slack_lo = resolve_window(
            window,
            end,
            eps,
            width=self.width,
            span=self.key_span(),
            noun=self.kind_noun,
        )
        plan = self._chain.plan(
            lo_epoch, hi_epoch, use_rollups=use_rollups, slack_lo=slack_lo
        )
        self._degraded_blocks_total += plan.degraded_blocks
        self._window_queries += 1
        self._window_slack_total += plan.window_slack_used
        return plan

    def query(
        self,
        lo: Optional[float] = None,
        hi: Optional[float] = None,
        use_rollups: bool = True,
        *,
        window: Optional[float] = None,
        window_eps: float = 0.0,
    ) -> QueryResult:
        """Answer a ``[lo, hi)`` range query from pre-merged segments.

        Plans the minimal cover, merges each member across the cover
        (one k-way ``merge_many`` per member), and caches the merged
        view in the store's LRU — repeated queries for the same range
        at the same store generation are served without re-merging.
        ``use_rollups=False`` forces the naive full scan over base
        segments (the benchmark baseline; answers are equivalent).

        ``window=W`` asks for the trailing window instead: the last
        ``W`` key units ending at ``hi`` (default: the end of the
        ingested span).  ``window_eps`` relaxes the window start so the
        planner may absorb one straddling materialized roll-up whole —
        the exponential-histogram rule — trading at most a
        ``(1 + window_eps)`` mass overshoot for strictly fewer merges
        (see :meth:`plan_window`).
        """
        if not self._schema:
            raise QueryError("store has no members; add_member() first")
        if window is not None:
            if lo is not None:
                raise ParameterError(
                    "pass either an explicit [lo, hi) range or window=, "
                    "not both"
                )
            lo_epoch, hi_epoch, window_epochs = self._window_range(window, hi)
            cache_key = (
                self._generation,
                "window",
                lo_epoch,
                hi_epoch,
                window_epochs,
                float(window_eps),
                use_rollups,
            )
            cached = self._views.get(cache_key)
            if cached is not None:
                return cached
            plan = self.plan_window(
                window,
                end=hi,
                eps=window_eps,
                use_rollups=use_rollups,
            )
        else:
            if lo is None or hi is None:
                raise ParameterError(
                    "query needs an explicit [lo, hi) range or window="
                )
            cache_key = (
                self._generation,
                self.epoch_of(lo),
                int(math.ceil(float(hi) / self.width)),
                use_rollups,
            )
            cached = self._views.get(cache_key)
            if cached is not None:
                return cached
            plan = self.plan(lo, hi, use_rollups=use_rollups)
        members: Dict[str, Summary] = {}
        for name, spec in self._schema.items():
            parts = [segment.members[name] for segment in plan.segments]
            if not parts:
                members[name] = spec.build()
                continue
            merged = copy_summary(parts[0])
            merged.merge_many(parts[1:])
            members[name] = merged
        result = QueryResult(
            members,
            plan,
            key_range=(
                plan.covered_lo_epoch * self.width,
                plan.hi_epoch * self.width,
            ),
        )
        self._views.put(cache_key, result)
        return result

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def segments(self) -> List[Segment]:
        """All live segments (base in epoch order, then roll-ups by level)."""
        return self._chain.segments()

    def _stats_extra(self) -> Dict[str, Any]:
        per_level: Dict[int, int] = {}
        for level, _start in self._chain.rollups:
            per_level[level] = per_level.get(level, 0) + 1
        return {
            "base_segments": len(self._chain.base),
            "rollups": len(self._chain.rollups),
            "rollups_per_level": {str(k): per_level[k] for k in sorted(per_level)},
        }

    # ------------------------------------------------------------------
    # Persistence hooks (entry points live on StoreBase)
    # ------------------------------------------------------------------

    def _chain_index(self) -> List[Tuple[Tuple[Any, ...], EpochChain]]:
        return [(("flat",), self._chain)]

    def _attach_chain(
        self, chain_id: Tuple[Any, ...], chain: EpochChain
    ) -> None:
        self._chain = chain
