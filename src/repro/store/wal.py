"""Write-ahead ingest log for :class:`~repro.store.store.SegmentStore`.

The store's segments are sealed (written to disk) only at snapshot
time, so without a log every record ingested since the last
:meth:`~repro.store.store.SegmentStore.save` dies with the process.
The WAL closes that window: with a log attached
(:meth:`~repro.store.store.SegmentStore.enable_wal`), every ingest
batch is appended — and, per the fsync policy, made durable — *before*
it is applied to the in-memory store.  Recovery then replays the log
tail on top of the latest committed snapshot and reconverges to the
exact pre-crash state (ingest is deterministic given the batch).

On-disk format
--------------

A WAL is a directory of append-only files, ``wal-<NNNNNN>.log``.  Each
writer instance appends to a *fresh* file (ids increase monotonically),
so a torn tail from a previous crash is never appended after.  The
framing::

    file header: b"RWAL" | u8 version (1)
    per record:  u32 body_len | u32 crc32(body) | body

``body`` is the compact JSON of one ingest batch::

    {"seq": N, "records": [...], "keys": [...], "weights": [...] | null}

``seq`` is the store's monotonic ingest sequence number; the snapshot
manifest records the last sequence it covers (``wal_seq``), so replay
skips frames a snapshot already includes.  Record values must be
JSON-compatible — the same constraint the codec stack already places on
summary state.

Torn tails
----------

:func:`scan_wal` never raises on a damaged log: it returns every frame
up to the first violation (truncated header, short body, CRC mismatch,
malformed JSON, non-monotonic ``seq``) plus the byte offset where the
good prefix ends and the reason.  Whether the damaged tail is a hard
error (strict :meth:`~repro.store.store.SegmentStore.open`) or gets
quarantined with a report (:func:`~repro.store.persistence.recover_store`)
is the caller's policy, never silently decided here.

Durability knobs
----------------

``fsync_every=1`` (the default) fsyncs after every append: an ingest
that returned is durable.  ``fsync_every=N`` batches N appends per
fsync — ~Nx cheaper, and a crash loses at most the last N-1 batches
but never yields an inconsistent state (a prefix of batches is always
recovered).  ``fsync_every=0`` leaves fsync entirely to explicit
:meth:`WriteAheadLog.sync` / :meth:`WriteAheadLog.close` calls.
"""

from __future__ import annotations

import json
import os
import re
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..core.exceptions import SerializationError
from ..core.fsio import Filesystem, REAL_FS

__all__ = [
    "WAL_MAGIC",
    "WAL_VERSION",
    "WalRecord",
    "WalScan",
    "WriteAheadLog",
    "scan_wal",
    "wal_files",
]

WAL_MAGIC = b"RWAL"
WAL_VERSION = 1
_HEADER_LEN = len(WAL_MAGIC) + 1
_U8 = struct.Struct("!B")
_FRAME = struct.Struct("!II")  # body_len, crc32(body)
_FILE_RE = re.compile(r"^wal-(\d{6})\.log$")


@dataclass(frozen=True)
class WalRecord:
    """One logged ingest batch, exactly as :meth:`SegmentStore.ingest` saw it."""

    seq: int
    records: List[Mapping[str, Any]]
    keys: List[float]
    weights: Optional[List[int]] = None


@dataclass
class WalScan:
    """Result of scanning one WAL file (never raised, always reported).

    ``records`` is the good prefix.  ``error`` is ``None`` for a clean
    file; otherwise the reason the scan stopped, with ``good_bytes``
    marking where the valid prefix ends (everything past it is the
    damaged tail a recovery quarantines).
    """

    path: str
    records: List[WalRecord] = field(default_factory=list)
    good_bytes: int = 0
    total_bytes: int = 0
    error: Optional[str] = None

    @property
    def torn(self) -> bool:
        return self.error is not None

    @property
    def last_seq(self) -> int:
        """Highest sequence in the good prefix (0 when empty)."""
        return self.records[-1].seq if self.records else 0


def _encode_frame(record: WalRecord) -> bytes:
    body = {
        "seq": record.seq,
        "records": record.records,
        "keys": record.keys,
        "weights": record.weights,
    }
    try:
        raw = json.dumps(body, separators=(",", ":"), sort_keys=True).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise SerializationError(
            f"WAL records must be JSON-compatible: {exc}"
        ) from exc
    return _FRAME.pack(len(raw), zlib.crc32(raw) & 0xFFFFFFFF) + raw


def wal_files(directory: str, fs: Optional[Filesystem] = None) -> List[str]:
    """Paths of every WAL file under ``directory``, in id (append) order."""
    fs = fs or REAL_FS
    if not fs.exists(directory):
        return []
    names = sorted(name for name in fs.listdir(directory) if _FILE_RE.match(name))
    return [os.path.join(directory, name) for name in names]


def scan_wal(path: str, fs: Optional[Filesystem] = None) -> WalScan:
    """Parse one WAL file, stopping (not raising) at the first damage."""
    fs = fs or REAL_FS
    try:
        blob = fs.read_bytes(path)
    except OSError as exc:
        return WalScan(path=path, error=f"cannot read WAL file: {exc}")
    scan = WalScan(path=path, total_bytes=len(blob))
    if len(blob) < _HEADER_LEN or not blob.startswith(WAL_MAGIC):
        scan.error = "missing or truncated WAL header"
        return scan
    (version,) = _U8.unpack_from(blob, len(WAL_MAGIC))
    if version != WAL_VERSION:
        scan.error = f"unsupported WAL version {version}"
        return scan
    offset = _HEADER_LEN
    scan.good_bytes = offset
    last_seq = 0
    while offset < len(blob):
        if offset + _FRAME.size > len(blob):
            scan.error = "truncated frame header"
            return scan
        body_len, crc = _FRAME.unpack_from(blob, offset)
        body_start = offset + _FRAME.size
        body = blob[body_start : body_start + body_len]
        if len(body) != body_len:
            scan.error = "truncated frame body"
            return scan
        if (zlib.crc32(body) & 0xFFFFFFFF) != crc:
            scan.error = "frame CRC mismatch"
            return scan
        try:
            payload = json.loads(body.decode("utf-8"))
            seq = int(payload["seq"])
            record = WalRecord(
                seq=seq,
                records=list(payload["records"]),
                keys=[float(k) for k in payload["keys"]],
                weights=(
                    None
                    if payload.get("weights") is None
                    else [int(w) for w in payload["weights"]]
                ),
            )
        except (UnicodeDecodeError, json.JSONDecodeError, KeyError, TypeError,
                ValueError) as exc:
            scan.error = f"malformed frame body: {exc!r}"
            return scan
        if seq <= last_seq:
            scan.error = (
                f"non-monotonic sequence {seq} after {last_seq}"
            )
            return scan
        last_seq = seq
        scan.records.append(record)
        offset = body_start + body_len
        scan.good_bytes = offset
    return scan


class WriteAheadLog:
    """Appender for a store's WAL directory.

    Each instance writes one fresh ``wal-<id>.log`` (created lazily on
    the first append, so an idle writer leaves no file behind).
    ``fsync_every`` is the batching policy described in the module
    docstring.  :meth:`retire` is called after a durable snapshot to
    delete files the snapshot fully covers.
    """

    def __init__(
        self,
        directory: str,
        fs: Optional[Filesystem] = None,
        fsync_every: int = 1,
    ) -> None:
        if fsync_every < 0:
            raise SerializationError(
                f"fsync_every must be >= 0, got {fsync_every}"
            )
        self.directory = str(directory)
        self.fsync_every = int(fsync_every)
        self._fs = fs or REAL_FS
        self._fs.makedirs(self.directory)
        self._next_file_id = self._scan_next_file_id()
        self._handle = None
        self._path: Optional[str] = None
        self._dir_synced = True
        self._pending = 0
        self._last_seq = 0
        self._records_logged = 0

    def _scan_next_file_id(self) -> int:
        highest = 0
        for name in self._fs.listdir(self.directory):
            match = _FILE_RE.match(name)
            if match:
                highest = max(highest, int(match.group(1)))
        return highest + 1

    @property
    def path(self) -> Optional[str]:
        """The active file, or ``None`` before the first append."""
        return self._path

    @property
    def last_seq(self) -> int:
        """Highest sequence this writer has appended (0 when none)."""
        return self._last_seq

    @property
    def records_logged(self) -> int:
        return self._records_logged

    @property
    def pending(self) -> int:
        """Appends since the last fsync (lost-on-crash upper bound)."""
        return self._pending

    def _open_fresh(self) -> None:
        self._path = os.path.join(
            self.directory, f"wal-{self._next_file_id:06d}.log"
        )
        self._next_file_id += 1
        self._handle = self._fs.open_write(self._path)
        self._fs.write(self._handle, WAL_MAGIC + _U8.pack(WAL_VERSION))
        self._dir_synced = False

    def append(
        self,
        seq: int,
        records: Sequence[Mapping[str, Any]],
        keys: Sequence[float],
        weights: Optional[Sequence[int]] = None,
    ) -> None:
        """Log one ingest batch; durable per the fsync policy on return."""
        if seq <= self._last_seq:
            raise SerializationError(
                f"WAL sequence must be monotonic: got {seq} after "
                f"{self._last_seq}"
            )
        frame = _encode_frame(
            WalRecord(
                seq=seq,
                records=list(records),
                keys=[float(k) for k in keys],
                weights=None if weights is None else [int(w) for w in weights],
            )
        )
        if self._handle is None:
            self._open_fresh()
        self._fs.write(self._handle, frame)
        self._last_seq = seq
        self._records_logged += 1
        self._pending += 1
        if self.fsync_every and self._pending >= self.fsync_every:
            self.sync()

    def sync(self) -> None:
        """Force the log durable: fsync the file (and, once, its dirent)."""
        if self._handle is None:
            return
        self._fs.fsync(self._handle)
        self._pending = 0
        if not self._dir_synced:
            self._fs.fsync_dir(self.directory)
            self._dir_synced = True

    def close(self) -> None:
        """Sync and close the active file (a later append starts a new one)."""
        if self._handle is None:
            return
        self.sync()
        self._fs.close(self._handle)
        self._handle = None
        self._path = None

    def retire(self, upto_seq: int) -> int:
        """Delete WAL files fully covered by a durable snapshot.

        A file is retired only when it parses *cleanly* and every frame
        has ``seq <= upto_seq`` — a torn file is left for
        :func:`~repro.store.persistence.recover_store` to quarantine,
        never silently dropped here.  Returns the number of files
        removed.  Post-commit cleanup: crashing mid-retire just leaves
        files whose frames the next recovery skips by sequence.
        """
        active = self._path
        if active is not None and self._last_seq <= upto_seq:
            self.close()
        removed = 0
        for path in wal_files(self.directory, self._fs):
            if path == self._path:
                continue
            scan = scan_wal(path, self._fs)
            if scan.torn or scan.last_seq > upto_seq:
                continue
            self._fs.remove(path)
            removed += 1
        if removed:
            self._fs.fsync_dir(self.directory)
        return removed
