"""Immutable segments: one key-range slice of the stream, pre-summarized.

A :class:`Segment` is the store's unit of pre-computation, the shape
Storyboard-style serving systems persist: it covers a half-open key
range (time range, usually) and holds one summary per configured store
member, built from exactly the records whose key fell in that range.
Segments are *immutable* — ingesting more data into a covered range
produces a replacement segment (built by merging, never by mutating),
so any segment ever handed out stays valid and roll-ups/caches key off
segment identity.

Base segments (level 0) cover one *epoch* — one ``width``-wide slot of
the key axis.  Roll-up segments (level ``ℓ >= 1``) cover an aligned
dyadic block of ``2**ℓ`` epochs and hold the merge of their children;
:mod:`repro.store.planner` serves range queries from them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..core.base import Summary
from ..core.exceptions import ParameterError
from ..core.registry import get_summary_class

__all__ = [
    "MemberSpec",
    "Segment",
    "build_members",
    "copy_summary",
    "merged_segment",
]


def copy_summary(summary: Summary) -> Summary:
    """Deep-copy a summary via its own state round-trip.

    ``to_dict``/``from_dict`` is the library's canonical full-state
    contract, so this is always a faithful copy — and it is what keeps
    segments immutable: every merge the store performs receives a copy
    as its mutable left operand, never a stored segment's summary.
    """
    return type(summary).from_dict(summary.to_dict())


@dataclass(frozen=True)
class MemberSpec:
    """One configured summary of the store schema.

    ``type_name`` is a registry name, ``kwargs`` its constructor
    arguments (JSON-compatible, so the schema persists in the
    manifest), and ``field`` the record field the member ingests.
    """

    type_name: str
    field: str
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def build(self) -> Summary:
        """Construct an empty summary for one segment."""
        cls = get_summary_class(self.type_name)
        try:
            return cls(**self.kwargs)
        except TypeError as exc:
            raise ParameterError(
                f"cannot construct {self.type_name} with {self.kwargs!r}: {exc}"
            ) from exc

    def to_dict(self) -> Dict[str, Any]:
        return {"type": self.type_name, "field": self.field, "kwargs": dict(self.kwargs)}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "MemberSpec":
        return cls(
            type_name=payload["type"],
            field=payload["field"],
            kwargs=dict(payload.get("kwargs", {})),
        )


@dataclass
class Segment:
    """An immutable pre-summarized slice ``[start, start + span)`` of epochs.

    ``level`` 0 segments are ingest output (``span == 1``); higher
    levels are dyadic roll-ups (``span == 2**level``, ``start`` aligned
    to ``span``).  ``members`` maps member name to that member's
    summary over the covered records; treat both the mapping and the
    summaries as frozen — the store only ever *replaces* segments.
    """

    segment_id: str
    level: int
    start: int
    count: int
    members: Dict[str, Summary]

    @property
    def span(self) -> int:
        """Number of base epochs covered (``2**level``)."""
        return 1 << self.level

    @property
    def end(self) -> int:
        """One past the last covered epoch."""
        return self.start + self.span

    def key_range(self, width: float) -> tuple:
        """The half-open key range ``[lo, hi)`` this segment covers."""
        return (self.start * width, self.end * width)

    def meta(self) -> Dict[str, Any]:
        """JSON-compatible descriptor (no summary payloads)."""
        return {
            "id": self.segment_id,
            "level": self.level,
            "start": self.start,
            "count": self.count,
            "members": sorted(self.members),
        }

    def fingerprint(self) -> str:
        """Digest of the full logical segment state (meta + member states).

        The unit the crash-safety proofs compare: two segments with
        equal fingerprints are indistinguishable to every query, so
        "recovery restored this segment" can be asserted byte-for-byte
        without comparing container files (which may differ in codec).
        """
        import hashlib
        import json

        state = {
            "meta": self.meta(),
            "members": {
                name: summary.to_dict()
                for name, summary in sorted(self.members.items())
            },
        }
        canonical = json.dumps(state, separators=(",", ":"), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Segment {self.segment_id} level={self.level} "
            f"epochs=[{self.start},{self.end}) count={self.count}>"
        )


def build_members(
    schema: Dict[str, MemberSpec],
    records,
    weights,
) -> Dict[str, Summary]:
    """Fold ``records`` into one fresh summary per schema member.

    The shared ingest kernel of :class:`~repro.store.store.SegmentStore`
    base segments and :class:`~repro.store.cube.CubeStore` cells: each
    member ingests the values of its configured field (records missing
    the field are skipped for that member) through the vectorized
    ``update_batch`` path, with ``weights`` (when given) subset in
    parallel.
    """
    members: Dict[str, Summary] = {}
    for name, spec in schema.items():
        summary = spec.build()
        values = []
        value_weights = [] if weights is not None else None
        for index, record in enumerate(records):
            if spec.field in record:
                values.append(record[spec.field])
                if value_weights is not None:
                    value_weights.append(weights[index])
        if values:
            summary.update_batch(values, value_weights)
        members[name] = summary
    return members


def merged_segment(
    segment_id: str,
    level: int,
    start: int,
    parts: list,
) -> Segment:
    """Build a roll-up segment as the k-way merge of ``parts``.

    ``parts`` are existing segments (left untouched); the new segment's
    members are ``merge_many`` folds over member-wise copies, so one
    combine/compaction pass covers the whole group.
    """
    if not parts:
        raise ParameterError("cannot roll up an empty segment group")
    members: Dict[str, Summary] = {}
    for name in parts[0].members:
        first = copy_summary(parts[0].members[name])
        members[name] = first.merge_many([p.members[name] for p in parts[1:]])
    return Segment(
        segment_id=segment_id,
        level=level,
        start=start,
        count=sum(p.count for p in parts),
        members=members,
    )
