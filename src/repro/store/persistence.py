"""Store persistence: a manifest plus one container file per segment.

Layout of a store directory::

    manifest.json          # format, width, codec, schema, segment metas
    segments/<id>.rseg     # one container per live segment

The manifest is always JSON (humans debug it); segment *payloads* go
through :mod:`repro.core.codecs`, so a store saved with
``codec="binary.v1"`` stores compact zlib-packed summaries while
``json.v2`` keeps everything inspectable — and loading auto-detects
either, because :func:`~repro.core.codecs.decode_summary` sniffs the
payload.  The container framing is deliberately tiny::

    b"RSEG" | u8 version | u32 meta_len | meta JSON
    then per member: u16 name_len | name | u32 payload_len | payload

Payload bytes are exactly what the codec produced (UTF-8 encoded when
the codec yields text), so the store and the distributed wire format
share one serialization layer.
"""

from __future__ import annotations

import json
import os
import struct
from typing import Any, Dict

from ..core.codecs import decode_summary, encode_summary
from ..core.exceptions import SerializationError
from .segment import MemberSpec, Segment

__all__ = ["save_store", "load_store", "write_segment", "read_segment"]

_MANIFEST_FORMAT = 1
_SEGMENT_MAGIC = b"RSEG"
_SEGMENT_VERSION = 1
_U8 = struct.Struct("!B")
_U16 = struct.Struct("!H")
_U32 = struct.Struct("!I")


def write_segment(segment: Segment, path: str, codec: str) -> int:
    """Serialize one segment into an ``.rseg`` container; returns bytes written."""
    chunks = [_SEGMENT_MAGIC, _U8.pack(_SEGMENT_VERSION)]
    meta = json.dumps(segment.meta(), sort_keys=True).encode("utf-8")
    chunks.append(_U32.pack(len(meta)))
    chunks.append(meta)
    for name in sorted(segment.members):
        payload = encode_summary(segment.members[name], codec)
        if isinstance(payload, str):
            payload = payload.encode("utf-8")
        raw_name = name.encode("utf-8")
        chunks.append(_U16.pack(len(raw_name)))
        chunks.append(raw_name)
        chunks.append(_U32.pack(len(payload)))
        chunks.append(payload)
    blob = b"".join(chunks)
    with open(path, "wb") as handle:
        handle.write(blob)
    return len(blob)


def read_segment(path: str) -> Segment:
    """Load one ``.rseg`` container written by :func:`write_segment`."""
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError as exc:
        raise SerializationError(f"{path}: cannot read segment container") from exc
    if len(blob) < len(_SEGMENT_MAGIC) + 1 + 4 or not blob.startswith(_SEGMENT_MAGIC):
        raise SerializationError(f"{path}: not a segment container")
    offset = len(_SEGMENT_MAGIC)
    (version,) = _U8.unpack_from(blob, offset)
    offset += 1
    if version != _SEGMENT_VERSION:
        raise SerializationError(
            f"{path}: unsupported segment container version {version}"
        )
    (meta_len,) = _U32.unpack_from(blob, offset)
    offset += 4
    try:
        meta = json.loads(blob[offset : offset + meta_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(f"{path}: corrupt segment metadata") from exc
    offset += meta_len
    members = {}
    while offset < len(blob):
        (name_len,) = _U16.unpack_from(blob, offset)
        offset += 2
        name = blob[offset : offset + name_len].decode("utf-8")
        offset += name_len
        (payload_len,) = _U32.unpack_from(blob, offset)
        offset += 4
        payload = blob[offset : offset + payload_len]
        if len(payload) != payload_len:
            raise SerializationError(f"{path}: truncated segment container")
        offset += payload_len
        members[name] = decode_summary(payload)
    if sorted(members) != meta.get("members"):
        raise SerializationError(
            f"{path}: member payloads do not match the container metadata"
        )
    return Segment(
        segment_id=meta["id"],
        level=int(meta["level"]),
        start=int(meta["start"]),
        count=int(meta["count"]),
        members=members,
    )


def save_store(store: Any, path: str) -> Dict[str, int]:
    """Persist a :class:`~repro.store.store.SegmentStore` to a directory.

    Returns counters: ``segments`` written and total payload ``bytes``.
    Overwrites any previous save at ``path``.
    """
    seg_dir = os.path.join(path, "segments")
    os.makedirs(seg_dir, exist_ok=True)
    for stale in os.listdir(seg_dir):
        if stale.endswith(".rseg"):
            os.remove(os.path.join(seg_dir, stale))
    segments = store.segments()
    total = 0
    for segment in segments:
        total += write_segment(
            segment,
            os.path.join(seg_dir, f"{segment.segment_id}.rseg"),
            store.codec,
        )
    manifest = {
        "format": _MANIFEST_FORMAT,
        "width": store.width,
        "codec": store.codec,
        "generation": store.generation,
        "records": store.records,
        "max_level": store._max_level,
        "next_segment_id": store._next_segment_id,
        "view_capacity": store._views.capacity,
        "schema": {
            name: spec.to_dict() for name, spec in store.schema.items()
        },
        "segments": [segment.meta() for segment in segments],
    }
    manifest_path = os.path.join(path, "manifest.json")
    with open(manifest_path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return {"segments": len(segments), "bytes": total}


def load_store(path: str) -> Any:
    """Load a store saved by :func:`save_store`."""
    from .store import SegmentStore

    manifest_path = os.path.join(path, "manifest.json")
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except FileNotFoundError:
        raise SerializationError(f"{path}: no store manifest found") from None
    except json.JSONDecodeError as exc:
        raise SerializationError(f"{path}: corrupt store manifest") from exc
    if manifest.get("format") != _MANIFEST_FORMAT:
        raise SerializationError(
            f"{path}: unsupported store manifest format "
            f"{manifest.get('format')!r}"
        )
    store = SegmentStore(
        width=manifest["width"],
        codec=manifest["codec"],
        view_capacity=manifest.get("view_capacity", 8),
    )
    for name, spec in manifest["schema"].items():
        store._schema[name] = MemberSpec.from_dict(spec)
    seg_dir = os.path.join(path, "segments")
    for meta in manifest["segments"]:
        segment = read_segment(os.path.join(seg_dir, f"{meta['id']}.rseg"))
        if segment.level == 0:
            store._base[segment.start] = segment
        else:
            store._rollups[(segment.level, segment.start)] = segment
    store._max_level = int(manifest.get("max_level", 0))
    store._generation = int(manifest.get("generation", 0))
    store._records = int(manifest.get("records", 0))
    store._next_segment_id = int(manifest.get("next_segment_id", 0))
    return store
