"""Store persistence: crash-safe snapshots, recovery, and verification.

One container format serves both store kinds — the manifest carries a
``kind`` tag (``"store"`` | ``"cube"``) and a list of per-chain
sub-manifests, one per :class:`~repro.store.chain.EpochChain` the store
owns (the flat store has exactly one; a cube has one per cell chain).
Layout of a store directory::

    manifest.json          # the COMMIT POINT: format, kind, counters,
                           # schema, snapshot generation, wal_seq, and
                           # one sub-manifest per chain
    segments/<id>.rseg     # flat store: one container per live segment
    cells/<id>.rseg        # cube: one container per live cell
    wal/wal-<n>.log        # write-ahead ingest log (repro.store.wal)
    quarantine/            # damaged bytes recovery refused to drop

The manifest is always JSON (humans debug it); segment *payloads* go
through :mod:`repro.core.codecs`, so a store saved with
``codec="binary.v1"`` stores compact zlib-packed summaries while
``json.v2`` keeps everything inspectable — and loading auto-detects
either, because :func:`~repro.core.codecs.decode_summary` sniffs the
payload.  The container framing is deliberately tiny::

    b"RSEG" | u8 version | u32 crc32 | u32 meta_len | meta JSON
    then per member: u16 name_len | name | u32 payload_len | payload

(version 2; the CRC covers every byte after itself, so any flip in the
framing or metadata — not just the codec payloads — is detected.
Version-1 containers, which lacked the CRC field, still load.)

Manifest format 3 is the chain-kernel unification; formats 1 and 2 —
the flat store's flat ``segments`` list and the cube's nested
``groups``/``masks`` trees — still load (:func:`_chain_specs` adapts
either shape into chain sub-manifests), so stores saved before the
refactor open unchanged.

Commit protocol
---------------

:func:`save` never has a window where a crash loses both the old and
the new state:

1. every segment not already covered by the *committed* manifest is
   staged as ``<id>.rseg.tmp``, fsynced, renamed into place, and the
   container directory is fsynced (segments are immutable, so files the
   previous snapshot committed are simply kept);
2. the new manifest — carrying a monotonic ``snapshot`` generation and
   the WAL sequence it covers — is published with the canonical
   write-temp / fsync / ``os.replace`` / fsync-dir sequence.  This
   rename is the *only* commit point;
3. only after the manifest is durable are stale segment files (and any
   ``.tmp`` staging leftovers from a crashed half-save) deleted.

A crash before step 2 leaves the old manifest pointing at the old
segments, all still present; a crash after leaves the new snapshot
fully committed.  Uncommitted staging files are garbage-collected by
the next save or recovery — never loaded.

Recovery
--------

:func:`load` (behind :meth:`StoreBase.open`) is *strict*: it loads the
committed snapshot, replays any WAL tail past ``wal_seq``, and raises
:class:`~repro.core.exceptions.SerializationError` on any damage.
:func:`recover_store` is the crash path: same load + replay, but torn
WAL tails and checksum-failing segments are moved into ``quarantine/``
(never silently dropped) with a written recovery report, the
reconverged state is committed as a fresh snapshot, and fully-replayed
WAL files are retired.  :func:`verify_store` is the read-only auditor
behind ``repro store verify``.  All three are kind-generic: the
manifest names the kind, so the CLI (and the :class:`StoreBase`
classmethods) need no cube-vs-flat dispatch.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field as dataclass_field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..core.codecs import decode_summary, encode_summary
from ..core.exceptions import SerializationError
from ..core.fsio import Filesystem, REAL_FS, write_file_durable
from .chain import EpochChain
from .segment import MemberSpec, Segment
from .wal import WalScan, scan_wal, wal_files

__all__ = [
    "save",
    "load",
    "save_store",
    "load_store",
    "save_cube",
    "load_cube",
    "recover_store",
    "verify_store",
    "write_segment",
    "read_segment",
    "RecoveryReport",
]

_MANIFEST_FORMAT = 3
_ACCEPTED_MANIFEST_FORMATS = (1, 2, 3)
_SEGMENT_MAGIC = b"RSEG"
_SEGMENT_VERSION = 2
_U8 = struct.Struct("!B")
_U16 = struct.Struct("!H")
_U32 = struct.Struct("!I")


# ---------------------------------------------------------------------------
# Segment containers
# ---------------------------------------------------------------------------


def _segment_blob(segment: Segment, codec: str) -> bytes:
    chunks: List[bytes] = []
    meta = json.dumps(segment.meta(), sort_keys=True).encode("utf-8")
    chunks.append(_U32.pack(len(meta)))
    chunks.append(meta)
    for name in sorted(segment.members):
        payload = encode_summary(segment.members[name], codec)
        if isinstance(payload, str):
            payload = payload.encode("utf-8")
        raw_name = name.encode("utf-8")
        chunks.append(_U16.pack(len(raw_name)))
        chunks.append(raw_name)
        chunks.append(_U32.pack(len(payload)))
        chunks.append(payload)
    body = b"".join(chunks)
    return (
        _SEGMENT_MAGIC
        + _U8.pack(_SEGMENT_VERSION)
        + _U32.pack(zlib.crc32(body) & 0xFFFFFFFF)
        + body
    )


def write_segment(
    segment: Segment,
    path: str,
    codec: str,
    fs: Optional[Filesystem] = None,
    durable: bool = False,
) -> int:
    """Serialize one segment into an ``.rseg`` container; returns bytes written.

    With ``durable=True`` the container is fsynced before the handle
    closes (what :func:`save` stages through); the plain call keeps the
    historical fire-and-forget behaviour.
    """
    fs = fs or REAL_FS
    blob = _segment_blob(segment, codec)
    handle = fs.open_write(str(path))
    try:
        fs.write(handle, blob)
        if durable:
            fs.fsync(handle)
    finally:
        fs.close(handle)
    return len(blob)


def _parse_segment(blob: bytes, path: str) -> Segment:
    if len(blob) < len(_SEGMENT_MAGIC) + 1 + 4 or not blob.startswith(_SEGMENT_MAGIC):
        raise SerializationError(f"{path}: not a segment container")
    offset = len(_SEGMENT_MAGIC)
    (version,) = _U8.unpack_from(blob, offset)
    offset += 1
    if version not in (1, _SEGMENT_VERSION):
        raise SerializationError(
            f"{path}: unsupported segment container version {version}"
        )
    if version >= 2:
        (crc,) = _U32.unpack_from(blob, offset)
        offset += 4
        if (zlib.crc32(blob[offset:]) & 0xFFFFFFFF) != crc:
            raise SerializationError(
                f"{path}: segment container checksum mismatch (torn or "
                "bit-rotted container)"
            )
    (meta_len,) = _U32.unpack_from(blob, offset)
    offset += 4
    meta_raw = blob[offset : offset + meta_len]
    if len(meta_raw) != meta_len:
        raise SerializationError(f"{path}: truncated segment metadata")
    try:
        meta = json.loads(meta_raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(f"{path}: corrupt segment metadata") from exc
    if not isinstance(meta, dict):
        raise SerializationError(f"{path}: corrupt segment metadata")
    offset += meta_len
    members = {}
    while offset < len(blob):
        if offset + _U16.size > len(blob):
            raise SerializationError(f"{path}: truncated segment container")
        (name_len,) = _U16.unpack_from(blob, offset)
        offset += 2
        raw_name = blob[offset : offset + name_len]
        if len(raw_name) != name_len:
            raise SerializationError(f"{path}: truncated segment container")
        name = raw_name.decode("utf-8")
        offset += name_len
        if offset + _U32.size > len(blob):
            raise SerializationError(f"{path}: truncated segment container")
        (payload_len,) = _U32.unpack_from(blob, offset)
        offset += 4
        payload = blob[offset : offset + payload_len]
        if len(payload) != payload_len:
            raise SerializationError(f"{path}: truncated segment container")
        offset += payload_len
        members[name] = decode_summary(payload)
    if sorted(members) != meta.get("members"):
        raise SerializationError(
            f"{path}: member payloads do not match the container metadata"
        )
    return Segment(
        segment_id=meta["id"],
        level=int(meta["level"]),
        start=int(meta["start"]),
        count=int(meta["count"]),
        members=members,
    )


def read_segment(path: str, fs: Optional[Filesystem] = None) -> Segment:
    """Load one ``.rseg`` container written by :func:`write_segment`.

    Every decode failure — truncated headers, torn names, checksum
    mismatches, malformed member payloads — surfaces as
    :class:`~repro.core.exceptions.SerializationError` carrying the
    path; raw ``struct.error``/``UnicodeDecodeError`` never escape.
    """
    fs = fs or REAL_FS
    path = str(path)
    try:
        blob = fs.read_bytes(path)
    except OSError as exc:
        raise SerializationError(f"{path}: cannot read segment container") from exc
    try:
        return _parse_segment(blob, path)
    except SerializationError as exc:
        if str(exc).startswith(path):
            raise
        raise SerializationError(f"{path}: {exc}") from exc
    except (
        struct.error,
        UnicodeDecodeError,
        KeyError,
        TypeError,
        ValueError,
        IndexError,
    ) as exc:
        raise SerializationError(
            f"{path}: corrupt segment container ({exc!r})"
        ) from exc


# ---------------------------------------------------------------------------
# Manifest helpers
# ---------------------------------------------------------------------------


def _manifest_path(path: str) -> str:
    return os.path.join(str(path), "manifest.json")


def _segments_dir(path: str) -> str:
    return os.path.join(str(path), "segments")


def _cells_dir(path: str) -> str:
    return os.path.join(str(path), "cells")


def _container_dir(path: str, kind: str) -> str:
    """Where a kind keeps its ``.rseg`` containers."""
    return _cells_dir(path) if kind == "cube" else _segments_dir(path)


def _wal_dir(path: str) -> str:
    return os.path.join(str(path), "wal")


def _quarantine_dir(path: str) -> str:
    return os.path.join(str(path), "quarantine")


def _manifest_checksum(manifest: Dict[str, Any]) -> int:
    body = {key: value for key, value in manifest.items() if key != "checksum"}
    canonical = json.dumps(body, separators=(",", ":"), sort_keys=True)
    return zlib.crc32(canonical.encode("utf-8")) & 0xFFFFFFFF


def _read_manifest(path: str, fs: Filesystem) -> Dict[str, Any]:
    manifest_path = _manifest_path(path)
    try:
        raw = fs.read_bytes(manifest_path)
    except FileNotFoundError:
        raise SerializationError(f"{path}: no store manifest found") from None
    except OSError as exc:
        raise SerializationError(f"{path}: cannot read store manifest") from exc
    try:
        manifest = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(f"{path}: corrupt store manifest") from exc
    if not isinstance(manifest, dict):
        raise SerializationError(f"{path}: corrupt store manifest")
    if manifest.get("format") not in _ACCEPTED_MANIFEST_FORMATS:
        raise SerializationError(
            f"{path}: unsupported store manifest format "
            f"{manifest.get('format')!r}"
        )
    if "checksum" in manifest:
        expected = manifest["checksum"]
        actual = _manifest_checksum(manifest)
        if actual != expected:
            raise SerializationError(
                f"{path}: store manifest checksum mismatch (stored "
                f"{expected!r}, computed {actual}); manifest is corrupt"
            )
    return manifest


def _encode_chain_id(chain_id: Tuple[Any, ...]) -> List[Any]:
    """Chain id tuple -> its JSON form (tuples become lists)."""
    return [list(part) if isinstance(part, tuple) else part for part in chain_id]


def _decode_chain_id(raw: List[Any]) -> Tuple[Any, ...]:
    return tuple(tuple(part) if isinstance(part, list) else part for part in raw)


def _chain_specs(
    manifest: Dict[str, Any],
) -> Iterator[Tuple[Tuple[Any, ...], int, List[Dict[str, Any]]]]:
    """Yield ``(chain_id, max_level, segment metas)`` for any manifest format.

    Format 3 carries chains directly; legacy flat manifests (one
    implicit chain under a top-level ``segments`` list) and legacy cube
    manifests (``groups`` plus nested per-mask ``groups``) are adapted
    to the same shape, which is the whole legacy-load path.
    """
    if "chains" in manifest:
        for entry in manifest["chains"]:
            yield (
                _decode_chain_id(entry["id"]),
                int(entry.get("max_level", 0)),
                entry.get("segments", []),
            )
    elif manifest.get("kind") == "cube":
        for chain in manifest.get("groups", []):
            yield (
                ("g", tuple(chain["key"])),
                int(chain.get("max_level", 0)),
                chain.get("segments", []),
            )
        for mask_entry in manifest.get("masks", []):
            mask = tuple(mask_entry["dims"])
            for chain in mask_entry.get("groups", []):
                yield (
                    ("m", mask, tuple(chain["key"])),
                    int(chain.get("max_level", 0)),
                    chain.get("segments", []),
                )
    else:
        yield (
            ("flat",),
            int(manifest.get("max_level", 0)),
            manifest.get("segments", []),
        )


def _manifest_segment_metas(manifest: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Every segment meta the manifest references, across all chains."""
    return [meta for _id, _level, metas in _chain_specs(manifest) for meta in metas]


def _committed_segment_ids(path: str, fs: Filesystem) -> Dict[str, Any]:
    """Ids the durable manifest references (empty when none is loadable)."""
    try:
        manifest = _read_manifest(path, fs)
    except SerializationError:
        return {}
    return {meta["id"]: meta for meta in _manifest_segment_metas(manifest)}


# ---------------------------------------------------------------------------
# Atomic snapshot save (both kinds)
# ---------------------------------------------------------------------------


def save(store: Any, path: str, fs: Optional[Filesystem] = None) -> Dict[str, int]:
    """Persist any :class:`~repro.store.common.StoreBase` atomically.

    Follows the module-docstring commit protocol: stage-and-fsync new
    containers, publish the manifest by atomic rename, then garbage-
    collect.  The store contributes its chains
    (``StoreBase._chain_index``) and kind-specific manifest fields
    (``StoreBase._manifest_extra`` — the cube's dimension names, mask
    lattice, and stale marks); everything else is shared.  Returns
    counters: ``segments`` live in the snapshot (cells, for a cube),
    ``written`` containers actually staged this save (committed files
    are reused — segments are immutable), payload ``bytes`` written,
    the committed ``snapshot`` generation, and stale files ``gc``-ed.
    """
    fs = fs or REAL_FS
    path = str(path)
    seg_dir = _container_dir(path, store.kind)
    fs.makedirs(seg_dir)
    previous = _committed_segment_ids(path, fs)
    prior_snapshot = int(getattr(store, "_snapshot", 0))

    chains = store._chain_index()
    live_segments: List[Segment] = []
    for _chain_id, chain in chains:
        live_segments.extend(chain.segments())

    total = written = 0
    for segment in live_segments:
        final = os.path.join(seg_dir, f"{segment.segment_id}.rseg")
        if segment.segment_id in previous and fs.exists(final):
            continue  # immutable and already durable under the old manifest
        staging = final + ".tmp"
        total += write_segment(segment, staging, store.codec, fs=fs, durable=True)
        fs.replace(staging, final)
        written += 1
    if written:
        fs.fsync_dir(seg_dir)

    manifest = {
        "format": _MANIFEST_FORMAT,
        "kind": store.kind,
        "snapshot": prior_snapshot + 1,
        "wal_seq": int(getattr(store, "_wal_seq", 0)),
        "width": store.width,
        "codec": store.codec,
        "generation": store.generation,
        "records": store.records,
        "next_segment_id": store._next_segment_id,
        "view_capacity": store._views.capacity,
        "schema": {name: spec.to_dict() for name, spec in store.schema.items()},
        "chains": [
            {
                "id": _encode_chain_id(chain_id),
                "max_level": chain.max_level,
                "segments": [segment.meta() for segment in chain.segments()],
            }
            for chain_id, chain in chains
        ],
    }
    manifest.update(store._manifest_extra())
    manifest["checksum"] = _manifest_checksum(manifest)
    payload = (json.dumps(manifest, indent=2, sort_keys=True) + "\n").encode("utf-8")
    write_file_durable(fs, _manifest_path(path), payload)  # ← commit point
    store._snapshot = manifest["snapshot"]

    # post-commit GC: stale containers and staging leftovers are garbage
    # the new manifest can never reference; deleting them cannot lose a
    # committed state (and a crash here just leaves them for next time)
    live = {f"{segment.segment_id}.rseg" for segment in live_segments}
    gc = 0
    for name in fs.listdir(seg_dir):
        if name in live:
            continue
        if name.endswith(".rseg") or name.endswith(".tmp"):
            fs.remove(os.path.join(seg_dir, name))
            gc += 1
    return {
        "segments": len(live_segments),
        "written": written,
        "bytes": total,
        "snapshot": manifest["snapshot"],
        "gc": gc,
    }


def save_store(
    store: Any, path: str, fs: Optional[Filesystem] = None
) -> Dict[str, int]:
    """Persist a :class:`~repro.store.store.SegmentStore` (see :func:`save`)."""
    return save(store, path, fs=fs)


def save_cube(
    cube: Any, path: str, fs: Optional[Filesystem] = None
) -> Dict[str, int]:
    """Persist a :class:`~repro.store.cube.CubeStore` (see :func:`save`)."""
    return save(cube, path, fs=fs)


# ---------------------------------------------------------------------------
# Strict load (StoreBase.open)
# ---------------------------------------------------------------------------


def _store_from_manifest(
    manifest: Dict[str, Any],
    path: str,
    fs: Filesystem,
    *,
    on_bad_segment: Optional[Any] = None,
) -> Any:
    """Build a store of the manifest's kind from a parsed manifest.

    ``on_bad_segment`` is the recovery hook: called with
    ``(meta, file_path, error)`` for a segment that fails to load, and
    the segment is skipped; without it the error propagates (strict).
    """
    from .cube import CubeStore
    from .store import SegmentStore

    kind = manifest.get("kind", "store")
    if kind == "cube":
        store = CubeStore(
            width=manifest["width"],
            dims=manifest["dims"],
            codec=manifest["codec"],
            view_capacity=manifest.get("view_capacity", 8),
        )
    else:
        store = SegmentStore(
            width=manifest["width"],
            codec=manifest["codec"],
            view_capacity=manifest.get("view_capacity", 8),
        )
    for name, spec in manifest["schema"].items():
        store._schema[name] = MemberSpec.from_dict(spec)
    # kind extras (cube masks + stale marks) attach before the chains so
    # mask insertion order matches the manifest's sorted order
    store._apply_manifest_extra(manifest)
    seg_dir = _container_dir(path, kind)
    for chain_id, max_level, metas in _chain_specs(manifest):
        chain = EpochChain()
        for meta in metas:
            file_path = os.path.join(seg_dir, f"{meta['id']}.rseg")
            try:
                segment = read_segment(file_path, fs=fs)
            except SerializationError as exc:
                if on_bad_segment is None:
                    raise
                on_bad_segment(meta, file_path, exc)
                continue
            if segment.level == 0:
                chain.base[segment.start] = segment
            else:
                chain.rollups[(segment.level, segment.start)] = segment
        chain.max_level = max_level
        store._attach_chain(chain_id, chain)
    store._generation = int(manifest.get("generation", 0))
    store._records = int(manifest.get("records", 0))
    store._next_segment_id = int(manifest.get("next_segment_id", 0))
    store._snapshot = int(manifest.get("snapshot", 0))
    store._wal_seq = int(manifest.get("wal_seq", 0))
    return store


def load(
    path: str,
    fs: Optional[Filesystem] = None,
    expect_kind: Optional[str] = None,
) -> Any:
    """Load a store saved by :func:`save`, replaying the WAL tail.

    Kind-generic: the manifest names the kind, so the caller gets back
    a :class:`SegmentStore` or :class:`CubeStore` as appropriate;
    ``expect_kind`` pins it (what ``SegmentStore.open`` and
    ``CubeStore.open`` pass) and mismatches raise with a pointer at the
    right entry point.  Strict: any damaged segment, manifest, or WAL
    file raises :class:`~repro.core.exceptions.SerializationError`.  A
    torn WAL tail is *expected* after a crash — the error says to run
    ``repro store recover`` (:func:`recover_store`), which quarantines
    the tail instead of refusing to load.
    """
    fs = fs or REAL_FS
    path = str(path)
    manifest = _read_manifest(path, fs)
    kind = manifest.get("kind", "store")
    if expect_kind == "store" and kind == "cube":
        raise SerializationError(
            f"{path}: this directory holds a dimension cube; open it with "
            "CubeStore.open (repro.store.load_cube)"
        )
    if expect_kind == "cube" and kind != "cube":
        raise SerializationError(
            f"{path}: this directory holds a flat segment store; open it "
            "with SegmentStore.open (repro.store.load_store)"
        )
    store = _store_from_manifest(manifest, path, fs)
    for wal_path in wal_files(_wal_dir(path), fs):
        scan = scan_wal(wal_path, fs)
        if scan.torn:
            raise SerializationError(
                f"{wal_path}: damaged WAL ({scan.error}); run "
                f"`repro store recover` to quarantine the torn tail and "
                f"restore the consistent prefix"
            )
        for record in scan.records:
            if record.seq <= store._wal_seq:
                continue
            store._replay_wal(record)
    return store


def load_store(path: str, fs: Optional[Filesystem] = None) -> Any:
    """Load a flat segment store (see :func:`load`)."""
    return load(path, fs=fs, expect_kind="store")


def load_cube(path: str, fs: Optional[Filesystem] = None) -> Any:
    """Load a dimension cube (see :func:`load`)."""
    return load(path, fs=fs, expect_kind="cube")


# ---------------------------------------------------------------------------
# Recovery (quarantine, replay, re-commit)
# ---------------------------------------------------------------------------


@dataclass
class RecoveryReport:
    """What :func:`recover_store` found, replayed, and quarantined."""

    path: str
    snapshot_loaded: int = 0
    snapshot_committed: int = 0
    wal_records_replayed: int = 0
    wal_records_skipped: int = 0
    records_recovered: int = 0
    wal_files_retired: int = 0
    #: ``[{"file": ..., "reason": ...}]`` moved under ``quarantine/``
    wal_quarantined: List[Dict[str, Any]] = dataclass_field(default_factory=list)
    #: ``[{"id": ..., "file": ..., "reason": ...}]`` moved under ``quarantine/``
    segments_quarantined: List[Dict[str, Any]] = dataclass_field(
        default_factory=list
    )
    #: uncommitted staging/orphan files deleted (never user data)
    orphans_removed: int = 0

    @property
    def clean(self) -> bool:
        """True when nothing had to be quarantined."""
        return not self.wal_quarantined and not self.segments_quarantined

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "snapshot_loaded": self.snapshot_loaded,
            "snapshot_committed": self.snapshot_committed,
            "wal_records_replayed": self.wal_records_replayed,
            "wal_records_skipped": self.wal_records_skipped,
            "records_recovered": self.records_recovered,
            "wal_files_retired": self.wal_files_retired,
            "wal_quarantined": list(self.wal_quarantined),
            "segments_quarantined": list(self.segments_quarantined),
            "orphans_removed": self.orphans_removed,
            "clean": self.clean,
        }


def _quarantine_file(path: str, file_path: str, fs: Filesystem) -> str:
    """Move a damaged file under ``quarantine/``; returns the new path."""
    qdir = _quarantine_dir(path)
    fs.makedirs(qdir)
    base = os.path.basename(file_path)
    target = os.path.join(qdir, base)
    suffix = 0
    while fs.exists(target):
        suffix += 1
        target = os.path.join(qdir, f"{base}.{suffix}")
    fs.replace(file_path, target)
    fs.fsync_dir(qdir)
    return target


def recover_store(path: str, fs: Optional[Filesystem] = None):
    """Crash recovery: load, quarantine damage, replay, re-commit.

    Kind-generic (works on flat store and cube directories alike; the
    manifest names the kind).  Returns ``(store, report)``.  The
    recovered state is committed as a fresh snapshot before returning,
    so recovery is idempotent: running it again finds a clean store and
    changes nothing.  Damaged bytes are *moved* to ``quarantine/`` —
    with a ``recovery-<snapshot>.json`` report beside them — never
    deleted, so a post-mortem can still inspect exactly what the crash
    tore.
    """
    fs = fs or REAL_FS
    path = str(path)
    report = RecoveryReport(path=path)
    manifest = _read_manifest(path, fs)  # unrecoverable without a commit point
    report.snapshot_loaded = int(manifest.get("snapshot", 0))

    def quarantine_segment(meta, file_path, error):
        if fs.exists(file_path):
            target = _quarantine_file(path, file_path, fs)
        else:
            target = None
        report.segments_quarantined.append(
            {
                "id": meta.get("id"),
                "file": target or file_path,
                "level": meta.get("level"),
                "start": meta.get("start"),
                "reason": str(error),
            }
        )

    store = _store_from_manifest(
        manifest, path, fs, on_bad_segment=quarantine_segment
    )

    # uncommitted staging leftovers and orphaned containers: garbage
    # from a crashed half-save, never referenced by the commit point
    seg_dir = _container_dir(path, manifest.get("kind", "store"))
    referenced = {
        f"{meta['id']}.rseg" for meta in _manifest_segment_metas(manifest)
    }
    if fs.exists(seg_dir):
        for name in sorted(fs.listdir(seg_dir)):
            if name in referenced:
                continue
            if name.endswith(".rseg") or name.endswith(".tmp"):
                fs.remove(os.path.join(seg_dir, name))
                report.orphans_removed += 1
    stale_manifest_tmp = _manifest_path(path) + ".tmp"
    if fs.exists(stale_manifest_tmp):
        fs.remove(stale_manifest_tmp)
        report.orphans_removed += 1

    # WAL replay: good prefixes reconverge the store; torn files are
    # quarantined whole (their good frames are already replayed and
    # about to be re-committed in the snapshot below)
    clean_wal: List[WalScan] = []
    for wal_path in wal_files(_wal_dir(path), fs):
        scan = scan_wal(wal_path, fs)
        for record in scan.records:
            if record.seq <= store._wal_seq:
                report.wal_records_skipped += 1
                continue
            store._replay_wal(record)
            report.wal_records_replayed += 1
            report.records_recovered += len(record.records)
        if scan.torn:
            target = _quarantine_file(path, wal_path, fs)
            report.wal_quarantined.append(
                {
                    "file": target,
                    "reason": scan.error,
                    "good_bytes": scan.good_bytes,
                    "total_bytes": scan.total_bytes,
                    "frames_recovered": len(scan.records),
                }
            )
        else:
            clean_wal.append(scan)

    # commit the reconverged state, then retire fully-covered WAL files
    saved = save(store, path, fs=fs)
    report.snapshot_committed = saved["snapshot"]
    for scan in clean_wal:
        if scan.last_seq <= store._wal_seq and fs.exists(scan.path):
            fs.remove(scan.path)
            report.wal_files_retired += 1

    if not report.clean:
        qdir = _quarantine_dir(path)
        fs.makedirs(qdir)
        report_payload = json.dumps(
            report.to_dict(), indent=2, sort_keys=True
        ).encode("utf-8")
        write_file_durable(
            fs,
            os.path.join(qdir, f"recovery-{report.snapshot_committed:06d}.json"),
            report_payload,
        )
    return store, report


# ---------------------------------------------------------------------------
# Read-only verification
# ---------------------------------------------------------------------------


def verify_store(path: str, fs: Optional[Filesystem] = None) -> Dict[str, Any]:
    """Audit a store directory without touching it (kind-generic).

    Returns a JSON-compatible report: manifest status, per-segment
    container health, orphaned files, and WAL frame accounting.  The
    top-level ``ok`` is True only when a strict :func:`load` would
    succeed and no garbage is lying around.
    """
    fs = fs or REAL_FS
    path = str(path)
    report: Dict[str, Any] = {"path": path, "ok": True}
    try:
        manifest = _read_manifest(path, fs)
    except SerializationError as exc:
        report["manifest"] = str(exc)
        report["ok"] = False
        return report
    report["manifest"] = "ok"
    report["kind"] = manifest.get("kind", "store")
    report["snapshot"] = int(manifest.get("snapshot", 0))
    report["wal_seq"] = int(manifest.get("wal_seq", 0))

    seg_dir = _container_dir(path, report["kind"])
    referenced = [meta["id"] for meta in _manifest_segment_metas(manifest)]
    seg_report: Dict[str, Any] = {
        "referenced": len(referenced),
        "ok": 0,
        "corrupt": [],
        "missing": [],
    }
    for seg_id in referenced:
        file_path = os.path.join(seg_dir, f"{seg_id}.rseg")
        if not fs.exists(file_path):
            seg_report["missing"].append(seg_id)
            continue
        try:
            read_segment(file_path, fs=fs)
        except SerializationError as exc:
            seg_report["corrupt"].append({"id": seg_id, "reason": str(exc)})
        else:
            seg_report["ok"] += 1
    report["segments"] = seg_report

    orphans = []
    if fs.exists(seg_dir):
        live = {f"{seg_id}.rseg" for seg_id in referenced}
        for name in sorted(fs.listdir(seg_dir)):
            if name not in live and (
                name.endswith(".rseg") or name.endswith(".tmp")
            ):
                orphans.append(name)
    if fs.exists(_manifest_path(path) + ".tmp"):
        orphans.append("manifest.json.tmp")
    report["orphans"] = orphans

    wal_report: Dict[str, Any] = {
        "files": 0,
        "records": 0,
        "replayable": 0,
        "torn": [],
    }
    wal_seq = report["wal_seq"]
    for wal_path in wal_files(_wal_dir(path), fs):
        scan = scan_wal(wal_path, fs)
        wal_report["files"] += 1
        wal_report["records"] += len(scan.records)
        wal_report["replayable"] += sum(
            1 for record in scan.records if record.seq > wal_seq
        )
        if scan.torn:
            wal_report["torn"].append(
                {
                    "file": os.path.basename(wal_path),
                    "reason": scan.error,
                    "good_bytes": scan.good_bytes,
                    "total_bytes": scan.total_bytes,
                }
            )
    report["wal"] = wal_report

    report["ok"] = (
        not seg_report["corrupt"]
        and not seg_report["missing"]
        and not wal_report["torn"]
        and not orphans
    )
    return report
