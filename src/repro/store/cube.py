"""Dimension cube: pre-aggregated sketch cells for sub-population queries.

:class:`CubeStore` generalizes :class:`~repro.store.store.SegmentStore`
from a single time axis to (dimension-value x epoch) *cells*: records
carry dimension tags (``dims=("country", "version")``), every distinct
tag combination owns its own per-epoch segment chain, and a query names
a sub-population (``where={"country": "DE"}``) and/or a grouping
(``group_by=["version"]``).  This is the killer app the paper's
mergeability theorem enables — and the one Storyboard and the
moments-sketch paper (PAPERS.md) both build: "p99 latency for
country=X, version=Y, last 6h" answered by merging a handful of
pre-aggregated cells instead of rescanning raw data, with the merged
answer carrying exactly the guarantees of a from-scratch build.

Structurally the cube is *many* instances of the same storage kernel
the flat store is one of: every cell chain — full-key or materialized
coarse — is an :class:`~repro.store.chain.EpochChain`, so per-chain
planning, invalidation, and roll-up compilation are literally the flat
store's code.  The cube planner covers a query along two axes:

- **time** — each contributing cell chain is covered dyadically by
  :meth:`~repro.store.chain.EpochChain.plan`, the same O(log S)
  segment-tree decomposition the flat store proves;
- **dimensions** — the lattice of *roll-up masks*.  A mask is the
  subset of dimensions kept (the rest summed out); a materialized mask
  ``M`` answers any query whose needed dimensions (``where`` keys +
  ``group_by``) are a subset of ``M`` from its pre-merged cells.  The
  planner picks the cheapest materialized superset, falling back to the
  base cells when none exists.  The empty mask is the grand total: one
  cell chain, so a full-population query touches O(log E) cells no
  matter how many distinct keys exist — query cost scales with the
  *answer*, not the *data*.

Freshness is per (mask, coarse-key, epoch): ingest marks every covering
roll-up cell *stale* and the planner transparently re-reads the base
cells for exactly those epochs (counted in
:attr:`CubePlan.degraded_blocks`), so roll-ups never serve stale data.

All cube maintenance — building roll-up cells across the dimension
lattice and the dyadic time tree within every chain — compiles into one
:class:`~repro.engine.plan.MergePlan` executed through the shared
:func:`~repro.store.chain.run_store_plan`, so cube compaction inherits
the engine's parallel runtime and exactly-once fault tolerance
unchanged.

Which masks to materialize is the Storyboard question:
:meth:`CubeStore.compact` takes a cell ``budget`` and a ``workload``
(query-shape log; the store also records one) and greedily picks the
masks with the best saved-merges-per-cell ratio under the budget.

Durability rides :class:`~repro.store.common.StoreBase` unchanged:
:meth:`CubeStore.enable_wal`/:meth:`CubeStore.open_durable` log every
ingest batch — dimension tags and all, since they are ordinary record
fields — before it mutates the cube, and recovery replays the tail
over the last atomic snapshot exactly as the flat store does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import combinations
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..core.base import Summary
from ..core.codecs import DEFAULT_CODEC
from ..core.exceptions import ParameterError, QueryError
from ..core.parallel import ExecutorLike
from ..engine import FaultModel, MergePlan, MergeStep, RetryPolicy
from .chain import (
    EpochChain,
    check_compaction_fault_model,
    compile_rollup_steps,
    dyadic_levels,
    resolve_window,
    run_store_plan,
    seed_segment,
)
from .common import StoreBase
from .segment import Segment, build_members, copy_summary, merged_segment

__all__ = ["CubeStore", "CubePlan", "CubeResult"]

#: a full dimension-value tuple (one value per cube dimension, in order)
Key = Tuple[Any, ...]
#: a roll-up mask: the subset of dimensions kept, in cube dimension order
Mask = Tuple[str, ...]


@dataclass
class CubePlan:
    """Accounting for one cube query: which cells, at what cost.

    ``cells_merged`` is the number of segments merged per member — the
    cube's headline metric against ``base_cells_total`` cells a naive
    per-key scan would touch.  ``serving_mask`` names the dimension
    roll-up that served the query (``None`` = base cells).
    ``stale_epochs`` counts epochs transparently re-read from base cells
    because ingest invalidated the roll-up; ``degraded_blocks`` adds the
    time-axis blocks whose dyadic roll-up was missing (see
    :class:`~repro.store.planner.QueryPlan`).
    """

    lo_epoch: int
    hi_epoch: int
    where: Tuple[Tuple[str, Any], ...] = ()
    group_by: Mask = ()
    serving_mask: Optional[Mask] = None
    groups: int = 0
    cells_merged: int = 0
    rollup_nodes: int = 0
    stale_epochs: int = 0
    degraded_blocks: int = 0
    #: largest per-chain epoch overhang absorbed under window slack
    #: (window queries with ``window_eps`` only)
    window_slack_used: int = 0

    def describe(self) -> str:
        """One-line human-readable plan summary."""
        mask = (
            "base cells"
            if self.serving_mask is None
            else f"mask ({','.join(self.serving_mask) or 'total'})"
        )
        clauses = []
        if self.where:
            clauses.append(
                "where " + ",".join(f"{d}={v!r}" for d, v in self.where)
            )
        if self.group_by:
            clauses.append("group by " + ",".join(self.group_by))
        degraded = (
            f", degraded={self.degraded_blocks} blocks"
            f"/{self.stale_epochs} stale epochs"
            if self.degraded_blocks or self.stale_epochs
            else ""
        )
        return (
            f"epochs [{self.lo_epoch},{self.hi_epoch})"
            f"{' ' + ' '.join(clauses) if clauses else ''}: "
            f"{self.groups} group(s) from {mask}, "
            f"cells_merged={self.cells_merged} "
            f"({self.rollup_nodes} time roll-ups{degraded})"
        )


class CubeResult:
    """The merged answer to one cube query.

    Maps each output group key (the ``group_by`` projection; ``()`` for
    an ungrouped query) to its merged members.  ``result[key]`` accepts
    a bare value for single-dimension groupings.
    """

    def __init__(
        self,
        groups: Dict[Key, Dict[str, Summary]],
        plan: CubePlan,
        key_range: Tuple[float, float],
    ) -> None:
        self.groups = groups
        self.plan = plan
        self.key_range = key_range

    def _norm(self, key: Any) -> Key:
        return key if isinstance(key, tuple) else (key,)

    def __getitem__(self, key: Any) -> Dict[str, Summary]:
        return self.groups[self._norm(key)]

    def __contains__(self, key: Any) -> bool:
        return self._norm(key) in self.groups

    def __len__(self) -> int:
        return len(self.groups)

    def keys(self):
        return self.groups.keys()

    @property
    def members(self) -> Dict[str, Summary]:
        """The single group of an ungrouped query."""
        if len(self.groups) != 1:
            raise QueryError(
                f"query produced {len(self.groups)} groups; index by group key"
            )
        return next(iter(self.groups.values()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CubeResult groups={len(self.groups)} plan={self.plan.describe()!r}>"


def _mask_label(mask: Mask) -> str:
    return ",".join(mask) or "()"


class CubeStore(StoreBase):
    """Multi-dimensional sketch cube over (dimension-value x epoch) cells.

    Parameters
    ----------
    width:
        Epoch width on the numeric partition key (as in
        :class:`~repro.store.store.SegmentStore`).
    dims:
        Ordered dimension field names; every ingested record must carry
        all of them, with JSON-scalar values (str/int/float/bool/None).
    codec:
        Serialization codec for persistence.
    view_capacity:
        Size of the merged-query-view LRU (0 disables caching).
    """

    kind = "cube"
    kind_noun = "cube"
    unit_noun = "cells"
    _id_prefix = "c"

    def __init__(
        self,
        width: float,
        dims: Sequence[str],
        codec: str = DEFAULT_CODEC,
        view_capacity: int = 8,
    ) -> None:
        super().__init__(width, codec=codec, view_capacity=view_capacity)
        dims = tuple(dims)
        if not dims:
            raise ParameterError("a cube needs at least one dimension")
        if len(set(dims)) != len(dims):
            raise ParameterError(f"duplicate dimension names in {dims!r}")
        for dim in dims:
            if not isinstance(dim, str) or not dim:
                raise ParameterError(
                    f"dimension names must be non-empty strings, got {dim!r}"
                )
        self.dims: Mask = dims
        self._dim_pos = {dim: i for i, dim in enumerate(dims)}
        #: full-key cell chains — the ground truth
        self._groups: Dict[Key, EpochChain] = {}
        #: materialized dimension roll-ups: mask -> coarse key -> chain
        self._masks: Dict[Mask, Dict[Key, EpochChain]] = {}
        #: per (mask, coarse key): epochs whose roll-up cell is missing
        #: or invalidated — served from base cells until recompacted
        self._stale: Dict[Mask, Dict[Key, Set[int]]] = {}
        #: epoch -> full keys with a base cell there (stale-fallback index)
        self._epoch_keys: Dict[int, Set[Key]] = {}
        #: query-shape log for workload-aware compaction
        self._query_log: Dict[Mask, int] = {}

    # ------------------------------------------------------------------
    # Schema
    # ------------------------------------------------------------------

    def _has_data(self) -> bool:
        return bool(self._groups)

    def _check_member_field(self, field: Optional[str]) -> None:
        if field in self._dim_pos:
            raise ParameterError(
                f"member field {field!r} is a cube dimension; members "
                "summarize measure fields, dimensions partition them"
            )

    @property
    def members(self) -> Dict[str, Any]:
        return dict(self._schema)

    @property
    def num_groups(self) -> int:
        """Distinct dimension-value combinations seen."""
        return len(self._groups)

    @property
    def num_cells(self) -> int:
        """Live base cells (group x epoch)."""
        return sum(len(g.base) for g in self._groups.values())

    def materialized_masks(self) -> List[Mask]:
        return sorted(self._masks)

    def _epoch_span(self) -> Optional[Tuple[int, int]]:
        if not self._epoch_keys:
            return None
        return (min(self._epoch_keys), max(self._epoch_keys))

    def _project(self, key: Key, mask: Mask) -> Key:
        return tuple(key[self._dim_pos[dim]] for dim in mask)

    def _as_mask(self, dims: Iterable[str]) -> Mask:
        wanted = set(dims)
        unknown = wanted - set(self.dims)
        if unknown:
            raise ParameterError(
                f"unknown dimension(s) {sorted(unknown)}; "
                f"cube dimensions are {list(self.dims)}"
            )
        return tuple(d for d in self.dims if d in wanted)

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def _dim_key(self, record: Mapping[str, Any], index: int) -> Key:
        key = []
        for dim in self.dims:
            if dim not in record:
                raise ParameterError(
                    f"record {index} is missing dimension field {dim!r}"
                )
            value = record[dim]
            if value is not None and not isinstance(value, (str, int, float, bool)):
                raise ParameterError(
                    f"dimension {dim!r} must be a JSON scalar, "
                    f"got {type(value).__name__}"
                )
            key.append(value)
        return tuple(key)

    def ingest(self, records, keys=None, weights=None) -> Dict[str, int]:
        """Partition ``records`` into immutable (dimension x epoch) cells.

        ``keys``/``weights`` behave as in
        :meth:`~repro.store.store.SegmentStore.ingest` — including the
        write-ahead-log path when one is attached
        (:meth:`~repro.store.common.StoreBase.enable_wal`): the batch,
        dimension tags and all, is logged durably before the cube
        mutates.  Re-ingesting into an existing cell replaces it with
        the merge of old and new (cells are immutable), and every
        covering roll-up — the time roll-ups of that chain *and* the
        dimension roll-up cells of every materialized mask — is
        invalidated: dropped where materialized, marked stale so queries
        transparently fall back to base cells until the next
        :meth:`compact`.

        Returns counters: ``cells_created``, ``cells_replaced``,
        ``rollups_invalidated``, ``records``.
        """
        return super().ingest(records, keys, weights)

    def _apply_ingest(
        self,
        records: List[Mapping[str, Any]],
        keys: List[float],
        weights,
    ) -> Dict[str, int]:
        """Partition a validated batch into cells (the WAL replay path)."""
        by_cell: Dict[Tuple[Key, int], List[int]] = {}
        for index, record in enumerate(records):
            cell = (self._dim_key(record, index), self.epoch_of(keys[index]))
            by_cell.setdefault(cell, []).append(index)

        created = replaced = invalidated = 0
        weight_list = None if weights is None else weights.tolist()
        for dim_key, epoch in sorted(by_cell, key=lambda c: (repr(c[0]), c[1])):
            idx = by_cell[(dim_key, epoch)]
            batch = [records[i] for i in idx]
            batch_weights = (
                None if weight_list is None else [weight_list[i] for i in idx]
            )
            fresh = Segment(
                segment_id=self._new_segment_id(0, epoch),
                level=0,
                start=epoch,
                count=len(batch),
                members=build_members(self._schema, batch, batch_weights),
            )
            group = self._groups.setdefault(dim_key, EpochChain())
            old = group.base.get(epoch)
            if old is None:
                group.base[epoch] = fresh
                created += 1
            else:
                group.base[epoch] = merged_segment(
                    self._new_segment_id(0, epoch), 0, epoch, [old, fresh]
                )
                replaced += 1
            self._epoch_keys.setdefault(epoch, set()).add(dim_key)
            invalidated += group.drop_covering_rollups(epoch)
            invalidated += self._invalidate_mask_cells(dim_key, epoch)
        self._records += len(records)
        self._generation += 1
        return {
            "cells_created": created,
            "cells_replaced": replaced,
            "rollups_invalidated": invalidated,
            "records": len(records),
        }

    def _invalidate_mask_cells(self, dim_key: Key, epoch: int) -> int:
        """Mark every materialized mask's covering cell stale for ``epoch``."""
        dropped = 0
        for mask, groups in self._masks.items():
            coarse = self._project(dim_key, mask)
            group = groups.get(coarse)
            if group is not None:
                if group.base.pop(epoch, None) is not None:
                    dropped += 1
                dropped += group.drop_covering_rollups(epoch)
            self._stale.setdefault(mask, {}).setdefault(coarse, set()).add(epoch)
        return dropped

    # ------------------------------------------------------------------
    # Compaction: dimension lattice + dyadic time tree, one merge plan
    # ------------------------------------------------------------------

    def _normalize_workload(
        self, workload: Optional[Iterable[Any]]
    ) -> List[Tuple[Mask, float]]:
        """Workload entries -> ``(needed mask, weight)`` pairs.

        Accepts explicit entries (dicts with ``where`` dimension names
        or mapping, ``group_by`` list, optional ``weight``), falls back
        to the store's own query log, and defaults to the grand-total
        query so a plain ``compact()`` always materializes something
        useful.
        """
        if workload is not None:
            entries: List[Tuple[Mask, float]] = []
            for entry in workload:
                if isinstance(entry, Mapping):
                    where = entry.get("where", ())
                    where_dims = (
                        where.keys() if isinstance(where, Mapping) else where
                    )
                    needed = set(where_dims) | set(entry.get("group_by", ()))
                    weight = float(entry.get("weight", 1.0))
                else:  # bare iterable of dimension names
                    needed = set(entry)
                    weight = 1.0
                entries.append((self._as_mask(needed), weight))
            return entries
        if self._query_log:
            return [(mask, float(n)) for mask, n in self._query_log.items()]
        return [((), 1.0)]

    def _choose_masks(
        self,
        workload: Optional[Iterable[Any]],
        budget: Optional[int],
    ) -> Tuple[Set[Mask], Dict[str, int]]:
        """Greedy Storyboard-style mask selection under a cell budget.

        Candidates are the proper sub-masks of the dimension set; the
        cost of a mask is the number of cells it materializes (distinct
        projected (key, epoch) pairs), the benefit of adding it is the
        workload-weighted drop in cells each query shape must merge
        (serving cost = cells of its cheapest covering mask, the full
        base cube by default).  Masks are added best
        benefit-per-cell first while the total materialized cell count
        stays within ``budget`` (``None`` = unbounded).  Already
        materialized masks are kept (and count against the budget).
        """
        entries = self._normalize_workload(workload)
        if len(self.dims) <= 10:
            candidates = [
                tuple(mask)
                for r in range(len(self.dims))
                for mask in combinations(self.dims, r)
            ]
        else:  # lattice too wide to enumerate: only query-shaped masks
            candidates = sorted(
                {mask for mask, _ in entries if len(mask) < len(self.dims)}
            )
        # a candidate is only worth costing if some query shape fits it
        needed_sets = [set(mask) for mask, _ in entries]
        candidates = [
            m
            for m in candidates
            if any(n <= set(m) for n in needed_sets) or m in self._masks
        ]
        cost: Dict[Mask, int] = {m: 0 for m in candidates}
        seen: Dict[Mask, Set[Tuple[Key, int]]] = {m: set() for m in candidates}
        for key, group in self._groups.items():
            for mask in candidates:
                coarse = self._project(key, mask)
                cells = seen[mask]
                for epoch in group.base:
                    cells.add((coarse, epoch))
        for mask in candidates:
            cost[mask] = len(seen[mask])
        total_base = self.num_cells

        def serve_cost(needed: Set[str], chosen: Set[Mask]) -> int:
            best = total_base
            for mask in chosen:
                if needed <= set(mask):
                    best = min(best, cost.get(mask, total_base))
            return best

        chosen: Set[Mask] = set(self._masks)
        spent = sum(cost.get(mask, 0) for mask in chosen)
        while True:
            best_mask, best_score, best_saving = None, 0.0, 0.0
            for mask in candidates:
                if mask in chosen:
                    continue
                if budget is not None and spent + cost[mask] > budget:
                    continue
                saving = sum(
                    weight
                    * (
                        serve_cost(set(need), chosen)
                        - serve_cost(set(need), chosen | {mask})
                    )
                    for need, weight in entries
                )
                score = saving / max(cost[mask], 1)
                if saving > 0 and score > best_score:
                    best_mask, best_score, best_saving = mask, score, saving
            if best_mask is None:
                break
            chosen.add(best_mask)
            spent += cost[best_mask]
        return chosen, {
            "candidate_masks": len(candidates),
            "materialized_cells": spent,
        }

    def compact(
        self,
        executor: ExecutorLike = None,
        *,
        budget: Optional[int] = None,
        workload: Optional[Iterable[Any]] = None,
        fault_model: Optional[FaultModel] = None,
        retry_policy: Optional[RetryPolicy] = None,
        exactly_once: bool = True,
    ) -> Dict[str, int]:
        """Materialize dimension roll-ups and time roll-up trees.

        Two phases, each one :class:`~repro.engine.plan.MergePlan` run
        through the shared :func:`~repro.store.chain.run_store_plan`
        (parallel with an ``executor``, fault-tolerant with a
        ``fault_model`` — exactly the contract of
        :meth:`SegmentStore.compact`):

        1. **dimension cells** — for every chosen mask, each missing or
           stale (coarse key, epoch) cell is rebuilt as the k-way merge
           of its matching base cells;
        2. **time roll-ups** — every chain (base and roll-up) with more
           than one epoch gets its incremental dyadic tree, compiled by
           the same :func:`~repro.store.chain.compile_rollup_steps` the
           flat store uses.

        Mask choice is workload-aware (see :meth:`_choose_masks`):
        ``budget`` caps total materialized roll-up cells, ``workload``
        overrides the store's own query log.  A cell whose merge is lost
        to injected faults past the retry budget is *not* installed and
        stays stale — queries keep falling back to its base cells.

        Returns counters: ``masks``, ``dim_cells_built``,
        ``time_rollups_built``, ``merge_inputs``; under a fault model
        also ``retries`` and ``cells_failed``.
        """
        if budget is not None and budget < 0:
            raise ParameterError(
                f"budget must be a non-negative cell count, got {budget}"
            )
        check_compaction_fault_model(fault_model)
        counters = {
            "masks": 0,
            "dim_cells_built": 0,
            "time_rollups_built": 0,
            "merge_inputs": 0,
        }
        if fault_model is not None:
            counters["retries"] = 0
            counters["cells_failed"] = 0
        if not self._groups:
            return counters

        def run(plan: MergePlan, inputs: Dict[Any, Any]):
            return run_store_plan(
                plan,
                inputs,
                executor=executor,
                fault_model=fault_model,
                retry_policy=retry_policy,
                exactly_once=exactly_once,
            )

        chosen, choice_stats = self._choose_masks(workload, budget)
        counters["masks"] = len(chosen)
        counters.update(choice_stats)

        # phase 1: dimension roll-up cells across the lattice
        pending: Dict[Tuple[Mask, Key, int], List[Tuple[str, Key, int]]] = {}
        inputs: Dict[Any, Segment] = {}
        for key, group in self._groups.items():
            for mask in chosen:
                coarse = self._project(key, mask)
                mask_groups = self._masks.get(mask, {})
                cell_chain = mask_groups.get(coarse)
                stale = self._stale.get(mask, {}).get(coarse, set())
                for epoch, segment in group.base.items():
                    exists = cell_chain is not None and epoch in cell_chain.base
                    if exists and epoch not in stale:
                        continue
                    src = ("base", key, epoch)
                    inputs[src] = segment
                    pending.setdefault((mask, coarse, epoch), []).append(src)
        if pending:
            # every target is stale until its rebuild lands — a build lost
            # to faults must keep falling back to base cells
            for mask, coarse, epoch in pending:
                self._stale.setdefault(mask, {}).setdefault(
                    coarse, set()
                ).add(epoch)
            steps: List[MergeStep] = []
            for target in sorted(pending, key=repr):
                mask, coarse, epoch = target
                steps.append(
                    MergeStep(
                        "merge",
                        ("cell",) + target,
                        tuple(pending[target]),
                        builder=seed_segment(
                            self._new_segment_id(0, epoch), 0, epoch
                        ),
                    )
                )
            steps.extend(
                MergeStep("emit", ("cell",) + target)
                for target in sorted(pending, key=repr)
            )
            plan = MergePlan(
                name=f"cube-cells[{len(pending)} cells, {len(chosen)} masks]",
                steps=steps,
                groupable=True,
                fuse_fanin=False,
            )
            result = run(plan, inputs)
            for slot, segment in result.outputs.items():
                _tag, mask, coarse, epoch = slot
                chain = self._masks.setdefault(mask, {}).setdefault(
                    coarse, EpochChain()
                )
                chain.base[epoch] = segment
                chain.drop_covering_rollups(epoch)
                stale_epochs = self._stale.get(mask, {}).get(coarse)
                if stale_epochs is not None:
                    stale_epochs.discard(epoch)
                    if not stale_epochs:
                        del self._stale[mask][coarse]
                counters["dim_cells_built"] += 1
                counters["merge_inputs"] += len(pending[(mask, coarse, epoch)])
            if fault_model is not None:
                counters["cells_failed"] += len(pending) - len(result.outputs)
                if result.report.fault_stats is not None:
                    counters["retries"] += result.report.fault_stats.retries
        else:
            for mask in chosen:
                self._masks.setdefault(mask, {})

        # phase 2: dyadic time trees inside every chain with > 1 epoch
        steps = []
        inputs = {}
        chains: List[Tuple[Any, EpochChain]] = [
            (("g", key), group) for key, group in self._groups.items()
        ]
        for mask, groups in self._masks.items():
            chains.extend(
                (("m", mask, coarse), group)
                for coarse, group in groups.items()
            )
        chain_levels: Dict[Any, Tuple[EpochChain, int]] = {}
        for chain_id, group in chains:
            if len(group.base) < 2:
                continue
            levels = dyadic_levels(group)
            chain_levels[chain_id] = (group, levels)
            planned = compile_rollup_steps(
                group,
                levels,
                slot_of=lambda block, chain_id=chain_id: chain_id + block,
                new_segment_id=self._new_segment_id,
                steps=steps,
                inputs=inputs,
            )
            steps.extend(
                MergeStep("emit", chain_id + slot) for slot in sorted(planned)
            )
        if steps:
            plan = MergePlan(
                name=f"cube-time[{len(chain_levels)} chains]",
                steps=steps,
                groupable=True,
                fuse_fanin=False,
            )
            result = run(plan, inputs)
            fan_in = {
                step.slot: len(step.srcs) for step in plan.merge_steps
            }
            for slot, segment in result.outputs.items():
                chain_id, block = slot[:-2], slot[-2:]
                group, levels = chain_levels[chain_id]
                group.rollups[block] = segment
                group.max_level = max(group.max_level, levels)
                counters["time_rollups_built"] += 1
                counters["merge_inputs"] += fan_in[slot]
            if fault_model is not None:
                counters["cells_failed"] += len(fan_in) - len(result.outputs)
                if result.report.fault_stats is not None:
                    counters["retries"] += result.report.fault_stats.retries
            # even on partial failure the attempted levels are recorded so
            # future planners try the blocks again
            for chain_id, (group, levels) in chain_levels.items():
                group.max_level = max(group.max_level, levels)

        if counters["dim_cells_built"] or counters["time_rollups_built"]:
            self._generation += 1
        return counters

    # ------------------------------------------------------------------
    # Query: lattice mask choice x dyadic time cover
    # ------------------------------------------------------------------

    def _check_where(
        self, where: Optional[Mapping[str, Any]]
    ) -> Tuple[Tuple[str, Any], ...]:
        if not where:
            return ()
        self._as_mask(where)  # validates dimension names
        return tuple(
            (dim, where[dim]) for dim in self.dims if dim in where
        )

    def query(
        self,
        lo: Optional[float] = None,
        hi: Optional[float] = None,
        *,
        where: Optional[Mapping[str, Any]] = None,
        group_by: Optional[Sequence[str]] = None,
        use_rollups: bool = True,
        window: Optional[float] = None,
        window_eps: float = 0.0,
    ) -> CubeResult:
        """Answer a sub-population range query from the covering cells.

        ``where`` filters dimensions to exact values, ``group_by``
        produces one merged answer per distinct value combination of the
        named dimensions.  The planner serves the query from the
        cheapest materialized mask covering the needed dimensions
        (falling back to base cells), covers each contributing chain
        dyadically over time, and merges each output group with one
        k-way ``merge_many`` per member.  ``use_rollups=False`` is the
        naive full scan over base cells — the benchmark baseline; the
        answers are equivalent.

        Epochs whose roll-up cells were invalidated by later ingest are
        transparently served from base cells (never stale data), counted
        in ``plan.stale_epochs``.

        ``window=W`` asks for the trailing window — the last ``W`` key
        units ending at ``hi`` (default: the end of the ingested span).
        ``window_eps`` lets each contributing cell chain absorb one
        materialized time roll-up straddling the window start (the
        exponential-histogram rule, resolved once for both store kinds
        by :func:`~repro.store.chain.resolve_window`), so every group's
        answer covers at most a ``(1 + window_eps)`` factor more than
        the exact window while reusing the largest pre-merged cells
        available.
        """
        if not self._schema:
            raise QueryError("cube has no members; add_member() first")
        slack_lo = 0
        if window is not None:
            if lo is not None:
                raise ParameterError(
                    "pass either an explicit [lo, hi) range or window=, "
                    "not both"
                )
            lo_epoch, hi_epoch, _window_epochs, slack_lo = resolve_window(
                window,
                hi,
                window_eps,
                width=self.width,
                span=self.key_span(),
                noun=self.kind_noun,
                eps_name="window_eps",
            )
        else:
            if lo is None or hi is None:
                raise ParameterError(
                    "query needs an explicit [lo, hi) range or window="
                )
            if not hi > lo:
                raise ParameterError(
                    f"query range must satisfy lo < hi, got [{lo!r}, {hi!r})"
                )
            lo_epoch = self.epoch_of(lo)
            hi_epoch = int(math.ceil(float(hi) / self.width))
        where_items = self._check_where(where)
        group_mask = self._as_mask(group_by or ())
        overlap = {d for d, _ in where_items} & set(group_mask)
        if overlap:
            raise ParameterError(
                f"dimension(s) {sorted(overlap)} appear in both where and "
                "group_by; a filtered dimension has a single value"
            )
        needed = self._as_mask({d for d, _ in where_items} | set(group_mask))
        self._query_log[needed] = self._query_log.get(needed, 0) + 1

        cache_key = (
            self._generation,
            lo_epoch,
            hi_epoch,
            slack_lo,
            where_items,
            group_mask,
            use_rollups,
        )
        cached = self._views.get(cache_key)
        if cached is not None:
            return cached

        plan = CubePlan(
            lo_epoch=lo_epoch,
            hi_epoch=hi_epoch,
            where=where_items,
            group_by=group_mask,
        )
        serving: Optional[Mask] = None
        if use_rollups and needed != self.dims:
            best_cells = None
            for mask, groups in self._masks.items():
                if not set(needed) <= set(mask):
                    continue
                cells = sum(len(g.base) for g in groups.values())
                cells += sum(
                    len(epochs)
                    for epochs in self._stale.get(mask, {}).values()
                )
                if best_cells is None or cells < best_cells:
                    serving, best_cells = mask, cells
        plan.serving_mask = serving

        source_mask = serving if serving is not None else self.dims
        pos = {dim: i for i, dim in enumerate(source_mask)}
        where_idx = [(pos[dim], value) for dim, value in where_items]
        group_idx = [pos[dim] for dim in group_mask]

        def matches(key: Key) -> bool:
            return all(key[i] == value for i, value in where_idx)

        def out_key_of(key: Key) -> Key:
            return tuple(key[i] for i in group_idx)

        chosen: Dict[Key, List[Segment]] = {}

        if serving is not None:
            for coarse, chain in self._masks[serving].items():
                if not matches(coarse) or not chain.base:
                    continue
                sub = chain.plan(
                    lo_epoch, hi_epoch, use_rollups=True, slack_lo=slack_lo
                )
                if not sub.segments:
                    continue
                out = chosen.setdefault(out_key_of(coarse), [])
                out.extend(sub.segments)
                plan.rollup_nodes += sub.rollup_nodes
                plan.degraded_blocks += sub.degraded_blocks
                plan.window_slack_used = max(
                    plan.window_slack_used, sub.window_slack_used
                )
            # stale epochs: transparently re-read the base cells
            for coarse, epochs in self._stale.get(serving, {}).items():
                if not matches(coarse):
                    continue
                in_range = sorted(
                    e for e in epochs if lo_epoch <= e < hi_epoch
                )
                for epoch in in_range:
                    out = None
                    # sorted: patch-segment merge order must not depend on
                    # set iteration order, or bounded-type states drift
                    # across processes
                    for key in sorted(self._epoch_keys.get(epoch, ()), key=repr):
                        if self._project(key, serving) != coarse:
                            continue
                        segment = self._groups[key].base.get(epoch)
                        if segment is None:
                            continue
                        if out is None:
                            out = chosen.setdefault(out_key_of(coarse), [])
                        out.append(segment)
                    if out is not None:
                        plan.stale_epochs += 1
                        plan.degraded_blocks += 1
        else:
            for key, chain in self._groups.items():
                if not matches(key):
                    continue
                sub = chain.plan(
                    lo_epoch, hi_epoch, use_rollups=use_rollups, slack_lo=slack_lo
                )
                if not sub.segments:
                    continue
                out = chosen.setdefault(out_key_of(key), [])
                out.extend(sub.segments)
                plan.rollup_nodes += sub.rollup_nodes
                if use_rollups:
                    plan.degraded_blocks += sub.degraded_blocks
                plan.window_slack_used = max(
                    plan.window_slack_used, sub.window_slack_used
                )

        groups: Dict[Key, Dict[str, Summary]] = {}
        for out_key in sorted(chosen, key=repr):
            segments = chosen[out_key]
            members: Dict[str, Summary] = {}
            for name in self._schema:
                parts = [segment.members[name] for segment in segments]
                merged = copy_summary(parts[0])
                merged.merge_many(parts[1:])
                members[name] = merged
            groups[out_key] = members
            plan.cells_merged += len(segments)
        if not groups and not group_mask:
            # ungrouped query over no data: the empty answer, like
            # SegmentStore.query on an empty range
            groups[()] = {
                name: spec.build() for name, spec in self._schema.items()
            }
        plan.groups = len(groups)
        self._degraded_blocks_total += plan.degraded_blocks
        if window is not None:
            self._window_queries += 1
            self._window_slack_total += plan.window_slack_used
        result = CubeResult(
            groups,
            plan,
            key_range=(
                (lo_epoch - plan.window_slack_used) * self.width,
                hi_epoch * self.width,
            ),
        )
        self._views.put(cache_key, result)
        return result

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def _stats_extra(self) -> Dict[str, Any]:
        masks: Dict[str, Any] = {}
        for mask in sorted(self._masks):
            groups = self._masks[mask]
            masks[_mask_label(mask)] = {
                "groups": len(groups),
                "cells": sum(len(g.base) for g in groups.values()),
                "time_rollups": sum(len(g.rollups) for g in groups.values()),
                "stale_epochs": sum(
                    len(epochs)
                    for epochs in self._stale.get(mask, {}).values()
                ),
            }
        return {
            "dims": list(self.dims),
            "groups": len(self._groups),
            "base_cells": self.num_cells,
            "time_rollups": sum(
                len(g.rollups) for g in self._groups.values()
            )
            + sum(
                len(g.rollups)
                for groups in self._masks.values()
                for g in groups.values()
            ),
            "masks": masks,
            "query_log": {
                _mask_label(mask): count
                for mask, count in sorted(self._query_log.items())
            },
        }

    def _chains(self) -> List[Tuple[Any, EpochChain]]:
        """Every chain with a stable sort key (fingerprint ordering)."""
        chains: List[Tuple[Any, EpochChain]] = [
            (("g", key), group) for key, group in self._groups.items()
        ]
        for mask, groups in self._masks.items():
            chains.extend(
                (("m", mask, coarse), group)
                for coarse, group in groups.items()
            )
        return sorted(chains, key=lambda item: repr(item[0]))

    def _fingerprint_extra(self) -> Dict[str, Any]:
        return {
            "dims": list(self.dims),
            "chains": [
                {
                    "id": repr(chain_id),
                    "max_level": group.max_level,
                    "cells": [
                        {
                            "meta": segment.meta(),
                            "members": {
                                name: summary.to_dict()
                                for name, summary in sorted(
                                    segment.members.items()
                                )
                            },
                        }
                        for _slot, segment in sorted(
                            list(group.base.items())
                            + list(group.rollups.items()),
                            key=lambda item: repr(item[0]),
                        )
                    ],
                }
                for chain_id, group in self._chains()
            ],
            "stale_marks": sorted(
                (repr(mask), repr(coarse), sorted(epochs))
                for mask, per_key in self._stale.items()
                for coarse, epochs in per_key.items()
                if epochs
            ),
        }

    # ------------------------------------------------------------------
    # Persistence hooks (entry points live on StoreBase)
    # ------------------------------------------------------------------

    def _chain_index(self) -> List[Tuple[Tuple[Any, ...], EpochChain]]:
        """Chains in manifest order: full keys, then each mask's cells."""
        chains: List[Tuple[Tuple[Any, ...], EpochChain]] = [
            (("g", key), group)
            for key, group in sorted(
                self._groups.items(), key=lambda item: repr(item[0])
            )
        ]
        for mask in sorted(self._masks):
            chains.extend(
                (("m", mask, coarse), group)
                for coarse, group in sorted(
                    self._masks[mask].items(), key=lambda item: repr(item[0])
                )
            )
        return chains

    def _attach_chain(
        self, chain_id: Tuple[Any, ...], chain: EpochChain
    ) -> None:
        if chain_id[0] == "g":
            key = chain_id[1]
            self._groups[key] = chain
            for epoch in chain.base:
                self._epoch_keys.setdefault(epoch, set()).add(key)
        else:
            self._masks.setdefault(chain_id[1], {})[chain_id[2]] = chain

    def _manifest_extra(self) -> Dict[str, Any]:
        return {
            "dims": list(self.dims),
            "masks": [list(mask) for mask in sorted(self._masks)],
            "stale": [
                [list(mask), list(coarse), sorted(epochs)]
                for mask in sorted(self._masks)
                for coarse, epochs in sorted(
                    self._stale.get(mask, {}).items(),
                    key=lambda item: repr(item[0]),
                )
                if epochs
            ],
        }

    def _apply_manifest_extra(self, manifest: Dict[str, Any]) -> None:
        if "chains" in manifest:
            for mask in manifest.get("masks", []):
                self._masks.setdefault(tuple(mask), {})
            for mask, coarse, epochs in manifest.get("stale", []):
                self._stale.setdefault(tuple(mask), {})[tuple(coarse)] = {
                    int(e) for e in epochs
                }
        else:  # legacy (format 2) cube manifest: masks carried their chains
            for entry in manifest.get("masks", []):
                mask = tuple(entry["dims"])
                self._masks.setdefault(mask, {})
                for coarse, epochs in entry.get("stale", []):
                    self._stale.setdefault(mask, {})[tuple(coarse)] = {
                        int(e) for e in epochs
                    }
