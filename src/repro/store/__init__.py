"""Segmented summary store: immutable segments, roll-ups, query planner.

The serving layer built on mergeability: :class:`SegmentStore`
partitions a stream into immutable per-epoch segments,
:meth:`~SegmentStore.compact` pre-merges them into a dyadic roll-up
tree, and the planner answers ``[lo, hi)`` range queries from
``O(log S)`` pre-merged nodes with the same guarantees as a full scan.
:class:`CubeStore` generalizes the store to (dimension-value x epoch)
cells for ``where``/``group_by`` sub-population queries served from a
workload-chosen lattice of pre-merged dimension roll-ups.

Both kinds are layerings of one storage kernel: the
:class:`~repro.store.chain.EpochChain` (the flat store is one chain, a
cube is many), the shared scaffolding of
:class:`~repro.store.common.StoreBase`, and one kind-tagged persistence
format (:func:`save`/:func:`load`, with kind-generic
:func:`recover_store`/:func:`verify_store` behind the CLI).
"""

from .chain import EpochChain
from .common import StoreBase
from .cube import CubePlan, CubeResult, CubeStore
from .persistence import (
    RecoveryReport,
    load,
    load_cube,
    load_store,
    recover_store,
    save,
    save_cube,
    save_store,
    verify_store,
)
from .planner import QueryPlan, fan_in_bound, plan_range
from .segment import (
    MemberSpec,
    Segment,
    build_members,
    copy_summary,
    merged_segment,
)
from .store import QueryResult, SegmentStore
from .views import ViewCache
from .wal import WalRecord, WalScan, WriteAheadLog, scan_wal, wal_files

__all__ = [
    "SegmentStore",
    "QueryResult",
    "CubeStore",
    "CubePlan",
    "CubeResult",
    "EpochChain",
    "StoreBase",
    "save",
    "load",
    "save_cube",
    "load_cube",
    "save_store",
    "load_store",
    "build_members",
    "QueryPlan",
    "plan_range",
    "fan_in_bound",
    "MemberSpec",
    "Segment",
    "copy_summary",
    "merged_segment",
    "ViewCache",
    "WriteAheadLog",
    "WalRecord",
    "WalScan",
    "scan_wal",
    "wal_files",
    "RecoveryReport",
    "recover_store",
    "verify_store",
]
