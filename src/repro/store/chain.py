"""The storage kernel: one epoch chain, shared by both store kinds.

The paper's thesis is that one merge operation composes everywhere;
this module is where the repo's storage layer finally says it once.  An
:class:`EpochChain` owns the per-epoch level-0 segments of *one* series
plus their incremental dyadic roll-up tree — exactly the structure
:class:`~repro.store.store.SegmentStore` keeps for its single time
axis, and :class:`~repro.store.cube.CubeStore` keeps per
(dimension-value x epoch) cell chain.  Storyboard (Gan et al.,
PAPERS.md) treats segment summaries and cube cells as the same
precomputed-summary object; here they literally are:

- the flat store is **one** chain;
- a cube is **many** chains (one per full dimension key, plus one per
  materialized coarse cell), planned and compacted with the same code.

Everything layered on top — query planning
(:func:`~repro.store.planner.plan_range` via :meth:`EpochChain.plan`,
including the PR 9 ``window=``/``window_eps`` slack rule resolved by
:func:`resolve_window`), invalidation
(:meth:`EpochChain.drop_covering_rollups`), roll-up compilation
(:func:`compile_rollup_steps`), and fault-tolerant plan execution
(:func:`run_store_plan`) — lives here exactly once, so every future
store feature lands once instead of twice.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..core.exceptions import ParameterError, QueryError
from ..engine import MergeLedger, MergePlan, MergeStep, execute_plan
from .planner import QueryPlan, plan_range
from .segment import Segment, copy_summary

__all__ = [
    "EpochChain",
    "seed_segment",
    "compile_rollup_steps",
    "dyadic_levels",
    "resolve_window",
    "check_compaction_fault_model",
    "run_store_plan",
]

#: a dyadic tree coordinate: (level, start), ``start`` aligned to ``2**level``
Block = Tuple[int, int]


class EpochChain:
    """One series of immutable per-epoch segments + dyadic roll-ups.

    ``base`` maps epoch -> level-0 segment; ``rollups`` maps
    ``(level, start)`` -> pre-merged segment covering the aligned block
    of ``2**level`` epochs; ``max_level`` records the tallest tree ever
    attempted (the planner's recursion depth — kept even when a build
    failed, so future compactions retry the blocks).
    """

    __slots__ = ("base", "rollups", "max_level")

    def __init__(self) -> None:
        self.base: Dict[int, Segment] = {}
        self.rollups: Dict[Block, Segment] = {}
        self.max_level = 0

    def node(self, level: int, start: int) -> Optional[Segment]:
        """The materialized node covering block ``(level, start)``, if any."""
        if level == 0:
            return self.base.get(start)
        return self.rollups.get((level, start))

    def plan(
        self,
        lo_epoch: int,
        hi_epoch: int,
        *,
        use_rollups: bool = True,
        slack_lo: int = 0,
    ) -> QueryPlan:
        """Minimal dyadic cover of ``[lo_epoch, hi_epoch)`` over this chain.

        Delegates to :func:`~repro.store.planner.plan_range`;
        ``slack_lo`` is the window-query left-edge relaxation (the
        exponential-histogram oldest-bucket rule — see
        :func:`resolve_window`, its single resolution site).
        """
        return plan_range(
            lo_epoch,
            hi_epoch,
            self.base,
            self.rollups,
            max_level=max(self.max_level, 1),
            use_rollups=use_rollups,
            slack_lo=slack_lo,
        )

    def drop_covering_rollups(self, epoch: int) -> int:
        """Drop every roll-up whose block contains ``epoch``; returns count."""
        dropped = 0
        for level in range(1, self.max_level + 1):
            start = (epoch >> level) << level
            if self.rollups.pop((level, start), None) is not None:
                dropped += 1
        return dropped

    def segments(self) -> List[Segment]:
        """Live segments: base in epoch order, then roll-ups by block."""
        base = [self.base[e] for e in sorted(self.base)]
        ups = [self.rollups[k] for k in sorted(self.rollups)]
        return base + ups


def dyadic_levels(chain: EpochChain) -> int:
    """Roll-up tree height for the chain's current epoch span."""
    lo, hi = min(chain.base), max(chain.base)
    span = hi - lo + 1
    return max(1, math.ceil(math.log2(span))) if span > 1 else 1


def seed_segment(
    segment_id: str, level: int, start: int
) -> Callable[[Segment], Segment]:
    """Copy-on-write builder for a roll-up's merge step.

    Receives the first child segment of the block and returns the fresh
    roll-up seeded with member-wise copies of it (exactly how
    :func:`~repro.store.segment.merged_segment` starts); the engine then
    merges the remaining children in.
    """

    def seed(first: Segment) -> Segment:
        return Segment(
            segment_id=segment_id,
            level=level,
            start=start,
            count=first.count,
            members={
                name: copy_summary(summary)
                for name, summary in first.members.items()
            },
        )

    return seed


def compile_rollup_steps(
    chain: EpochChain,
    levels: int,
    *,
    slot_of: Callable[[Block], Any],
    new_segment_id: Callable[[int, int], str],
    steps: List[MergeStep],
    inputs: Dict[Any, Segment],
) -> Set[Block]:
    """Compile one chain's incremental dyadic roll-up into merge steps.

    Jobs are discovered level by level exactly like the historical loop
    — same block iteration, same skip of materialized roll-ups, same
    segment-id allocation order — but a job may reference a *planned*
    sibling from the level below as a source slot, which is what lets
    the whole tree execute as one plan (the engine's wave packer
    rediscovers the per-level barriers from the slot conflicts).

    ``slot_of`` maps a ``(level, start)`` block to the caller's plan
    slot (the flat store uses the block itself; the cube prefixes its
    chain id so many chains share one plan).  Merge steps are appended
    to ``steps`` and their source segments to ``inputs``; the caller
    appends the ``emit`` steps so it controls their ordering.  Returns
    the set of planned blocks.
    """
    lo, hi = min(chain.base), max(chain.base)
    planned: Set[Block] = set()
    for level in range(1, levels + 1):
        block = 1 << level
        half = block >> 1
        first = (lo // block) * block
        for start in range(first, hi + 1, block):
            if (level, start) in chain.rollups:
                continue
            srcs: List[Any] = []
            for child_start in (start, start + half):
                child = (level - 1, child_start)
                if level - 1 >= 1 and child in planned:
                    srcs.append(slot_of(child))
                    continue
                node = chain.node(level - 1, child_start)
                if node is not None:
                    child_slot = slot_of(child)
                    inputs[child_slot] = node
                    srcs.append(child_slot)
            if not srcs:
                continue
            steps.append(
                MergeStep(
                    "merge",
                    slot_of((level, start)),
                    tuple(srcs),
                    builder=seed_segment(
                        new_segment_id(level, start), level, start
                    ),
                )
            )
            planned.add((level, start))
    return planned


def resolve_window(
    window: float,
    end: Optional[float],
    eps: float,
    *,
    width: float,
    span: Optional[Tuple[float, float]],
    noun: str = "store",
    eps_name: str = "eps",
) -> Tuple[int, int, int, int]:
    """Resolve a trailing window to epoch coordinates and its slack.

    The single implementation of the PR 9 window rule shared by both
    store kinds: ``end`` defaults to the end of the ingested key span
    (the store's "now"), the window is rounded outward to whole epochs,
    and ``eps`` buys the planner ``floor(eps * window_epochs)`` epochs
    of left-edge slack — the exponential histogram's oldest-bucket
    budget, spent by :func:`~repro.store.planner.plan_range` when a
    materialized roll-up straddles the window start.  Returns
    ``(lo_epoch, hi_epoch, window_epochs, slack_lo)``.
    """
    if not window > 0:
        raise ParameterError(f"window must be positive, got {window!r}")
    if not 0.0 <= eps <= 1.0:
        raise ParameterError(f"{eps_name} must be in [0, 1], got {eps!r}")
    if end is None:
        if span is None:
            raise QueryError(
                f"window query on an empty {noun}: no key span to anchor "
                "the window end (pass hi= explicitly)"
            )
        end = span[1]
    hi_epoch = int(math.ceil(float(end) / width))
    window_epochs = max(1, int(math.ceil(float(window) / width)))
    slack_lo = int(math.floor(eps * window_epochs))
    return hi_epoch - window_epochs, hi_epoch, window_epochs, slack_lo


def check_compaction_fault_model(fault_model: Any) -> None:
    """Reject fault models that cannot apply to in-process compaction."""
    if fault_model is not None and fault_model.corruption:
        raise ParameterError(
            "compaction never serializes segments, so corruption "
            "injection cannot apply; use loss/duplicate/crash faults"
        )


def run_store_plan(
    plan: MergePlan,
    inputs: Dict[Any, Segment],
    *,
    executor: Any = None,
    fault_model: Any = None,
    retry_policy: Any = None,
    exactly_once: bool = True,
):
    """Execute one store-maintenance plan through the engine.

    The single place both store kinds thread
    ``fault_model``/``retry_policy``/``exactly_once``/``executor`` into
    :func:`repro.engine.execute_plan`: with a fault model and
    ``exactly_once`` every fresh roll-up keeps a merge ledger so
    injected duplicate deliveries merge exactly once, and plan-level
    accounting stays off (the compaction counters come from the plan
    itself; size/coverage tracking is only needed under faults, where
    ``execute_plan`` forces it back on).
    """
    use_ledger = fault_model is not None and exactly_once
    return execute_plan(
        plan,
        inputs,
        executor=executor,
        fault_model=fault_model,
        retry_policy=retry_policy,
        ledger_factory=MergeLedger if use_ledger else None,
        accounting=False,
    )
