"""2-D computational-geometry substrate for eps-kernels.

Self-contained (no scipy.spatial): convex hull by Andrew's monotone
chain, directional width, diameter, and the affine normalization
("reference frame") that makes a point set fat — the precondition under
which eps-kernel guarantees become relative to the width in *every*
direction (paper Section 5).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..core.exceptions import ParameterError

__all__ = [
    "convex_hull",
    "directional_width",
    "diameter",
    "farthest_pair",
    "fat_frame",
    "apply_frame",
    "min_area_bounding_box",
]


def _check_points(points: np.ndarray) -> np.ndarray:
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise ParameterError(f"expected points of shape (n, 2), got {pts.shape}")
    if len(pts) == 0:
        raise ParameterError("point set is empty")
    return pts


def convex_hull(points: np.ndarray) -> np.ndarray:
    """Convex hull vertices in counter-clockwise order (monotone chain).

    Degenerate inputs (all collinear) return the two extreme points;
    a single point returns itself.
    """
    pts = _check_points(points)
    unique = np.unique(pts, axis=0)
    if len(unique) <= 2:
        return unique
    order = np.lexsort((unique[:, 1], unique[:, 0]))
    sorted_pts = unique[order]

    def cross(o: np.ndarray, a: np.ndarray, b: np.ndarray) -> float:
        return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])

    lower: list = []
    for p in sorted_pts:
        while len(lower) >= 2 and cross(lower[-2], lower[-1], p) <= 0:
            lower.pop()
        lower.append(p)
    upper: list = []
    for p in sorted_pts[::-1]:
        while len(upper) >= 2 and cross(upper[-2], upper[-1], p) <= 0:
            upper.pop()
        upper.append(p)
    hull = np.array(lower[:-1] + upper[:-1])
    if len(hull) == 0:  # fully collinear
        return np.array([sorted_pts[0], sorted_pts[-1]])
    return hull


def directional_width(points: np.ndarray, direction: np.ndarray) -> float:
    """Extent of ``points`` along ``direction``: ``max<p,u> - min<p,u>``."""
    pts = _check_points(points)
    u = np.asarray(direction, dtype=np.float64)
    norm = np.linalg.norm(u)
    if norm == 0:
        raise ParameterError("direction must be nonzero")
    projections = pts @ (u / norm)
    return float(projections.max() - projections.min())


def farthest_pair(points: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """A diametral pair of the point set (via its convex hull)."""
    hull = convex_hull(_check_points(points))
    if len(hull) == 1:
        return hull[0], hull[0]
    best = (hull[0], hull[1])
    best_d = -1.0
    for i in range(len(hull)):
        deltas = hull - hull[i]
        dists = np.einsum("ij,ij->i", deltas, deltas)
        j = int(np.argmax(dists))
        if dists[j] > best_d:
            best_d = float(dists[j])
            best = (hull[i], hull[j])
    return best


def diameter(points: np.ndarray) -> float:
    """Largest pairwise distance (the spread the kernel error scales with)."""
    a, b = farthest_pair(points)
    return float(np.linalg.norm(a - b))


def fat_frame(points: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Affine frame ``(A, b)`` making ``A @ (p - b)`` fat.

    Rotates the diametral direction onto the x-axis and rescales each
    axis by its extent, so the image lies in ``[-1, 1]^2`` and spans a
    constant fraction of it — the reference frame of paper Section 5.
    Degenerate extents fall back to scale 1 on that axis.
    """
    pts = _check_points(points)
    p, q = farthest_pair(pts)
    direction = q - p
    norm = np.linalg.norm(direction)
    if norm == 0:
        rotation = np.eye(2)
    else:
        cos_t, sin_t = direction / norm
        rotation = np.array([[cos_t, sin_t], [-sin_t, cos_t]])
    center = pts.mean(axis=0)
    rotated = (pts - center) @ rotation.T
    extents = rotated.max(axis=0) - rotated.min(axis=0)
    extents[extents == 0] = 1.0
    scale = np.diag(2.0 / extents)
    return scale @ rotation, center


def apply_frame(points: np.ndarray, frame: Tuple[np.ndarray, np.ndarray]) -> np.ndarray:
    """Apply a :func:`fat_frame` transform to points."""
    matrix, offset = frame
    return (np.asarray(points, dtype=np.float64) - offset) @ np.asarray(matrix).T


def min_area_bounding_box(points: np.ndarray) -> Tuple[np.ndarray, float]:
    """Minimum-area oriented bounding box via rotating calipers.

    Returns ``(corners, area)`` where ``corners`` is a ``(4, 2)`` array
    in order around the box.  Uses the classical fact that some edge of
    the convex hull is flush with an optimal box, so only hull-edge
    orientations need checking.  Degenerate inputs (collinear / single
    point) return a zero-area box spanning the extreme points.
    """
    hull = convex_hull(_check_points(points))
    if len(hull) == 1:
        corner = hull[0]
        return np.tile(corner, (4, 1)), 0.0
    if len(hull) == 2:
        a, b = hull
        return np.array([a, b, b, a]), 0.0
    best_area = np.inf
    best_corners = None
    for i in range(len(hull)):
        edge = hull[(i + 1) % len(hull)] - hull[i]
        norm = np.linalg.norm(edge)
        if norm == 0:
            continue
        u = edge / norm
        v = np.array([-u[1], u[0]])
        projections_u = hull @ u
        projections_v = hull @ v
        width = projections_u.max() - projections_u.min()
        height = projections_v.max() - projections_v.min()
        area = float(width * height)
        if area < best_area:
            best_area = area
            lo_u, hi_u = projections_u.min(), projections_u.max()
            lo_v, hi_v = projections_v.min(), projections_v.max()
            best_corners = np.array(
                [
                    lo_u * u + lo_v * v,
                    hi_u * u + lo_v * v,
                    hi_u * u + hi_v * v,
                    lo_u * u + hi_v * v,
                ]
            )
    assert best_corners is not None
    return best_corners, best_area
