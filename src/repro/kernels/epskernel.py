"""Mergeable 2-D eps-kernels for directional width (paper Section 5).

An *eps-kernel* of a point set ``P`` is a subset ``K ⊆ P`` with
``width_K(u) >= (1 - eps) * width_P(u)`` for every direction ``u``.
The classic construction (Agarwal, Har-Peled, Varadarajan): normalize
``P`` to be fat, snap directions to a grid of ``O(1/sqrt(eps))``
angles, and keep both extreme points per grid direction.

Mergeability (the paper's angle): "extreme point per fixed direction"
is a decomposable maximum, so two kernels built over the **same
direction grid and the same reference frame** merge *exactly* — slot by
slot, keep the more extreme point.  What cannot be recomputed after the
fact is the frame itself; the paper's condition is that all summaries
share a frame fixed in advance (equivalently, the data's aspect ratio
in that frame is bounded).  This module exposes both modes:

- :class:`EpsKernel` with ``frame=None`` operates in the raw
  coordinate frame; the merged guarantee is *absolute*:
  ``width_K(u) >= width_P(u) - 2 * eps_grid * diam(P)`` with
  ``eps_grid = (pi / (2 m))^2 / 2`` for ``m`` grid directions — the
  bound degrades for thin point sets, exactly the phenomenon the
  paper's fatness condition exists to prevent.
- :class:`EpsKernel` with an explicit ``frame`` (from
  :func:`repro.kernels.convex.fat_frame` over a data sample, or domain
  knowledge) measures extents in the normalized space, restoring the
  relative ``(1 - eps)`` guarantee as long as the frame keeps the data
  fat.  Frames are part of merge compatibility.

:func:`compute_eps_kernel` is the offline (non-mergeable) classic
construction used as ground truth in benchmark E10.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..core.base import Summary, normalize_batch
from ..core.exceptions import EmptySummaryError, ParameterError
from ..core.registry import register_summary
from .convex import apply_frame, convex_hull, directional_width, fat_frame

__all__ = ["EpsKernel", "compute_eps_kernel", "grid_directions"]


def grid_directions(m: int) -> np.ndarray:
    """``m`` unit directions with angles ``j * pi / m`` (antipodal pairs
    are covered because both extremes are kept per direction)."""
    if m < 1:
        raise ParameterError(f"direction count m must be >= 1, got {m!r}")
    angles = np.arange(m) * (math.pi / m)
    return np.stack([np.cos(angles), np.sin(angles)], axis=1)


def directions_for_epsilon(epsilon: float) -> int:
    """Grid resolution: angle gap ``pi/m <= sqrt(2 eps)`` per the cosine
    bound ``1 - cos(t) <= t^2 / 2``."""
    if not 0 < epsilon < 1:
        raise ParameterError(f"epsilon must be in (0, 1), got {epsilon!r}")
    return max(2, math.ceil(math.pi / math.sqrt(2.0 * epsilon)))


def compute_eps_kernel(points: np.ndarray, epsilon: float) -> np.ndarray:
    """Offline eps-kernel with the relative ``(1 - eps)`` width guarantee.

    Normalizes ``points`` with their own fat frame, snaps to the
    direction grid, keeps both extremes per direction.  Not mergeable
    (the frame depends on the data); serves as the reference
    construction.
    """
    pts = np.asarray(points, dtype=np.float64)
    frame = fat_frame(pts)
    normalized = apply_frame(pts, frame)
    m = directions_for_epsilon(epsilon)
    keep = set()
    for u in grid_directions(m):
        proj = normalized @ u
        keep.add(int(np.argmax(proj)))
        keep.add(int(np.argmin(proj)))
    return pts[sorted(keep)]


@register_summary("eps_kernel")
class EpsKernel(Summary):
    """Mergeable extreme-point kernel over a fixed direction grid.

    Parameters
    ----------
    epsilon:
        Target width error (sets the direction-grid resolution).
    frame:
        Optional shared reference frame ``(matrix, offset)``; summaries
        merge only with an identical frame (or both ``None``).
    """

    def __init__(
        self,
        epsilon: float,
        frame: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> None:
        super().__init__()
        if not 0 < epsilon < 1:
            raise ParameterError(f"epsilon must be in (0, 1), got {epsilon!r}")
        self.epsilon = float(epsilon)
        self.m = directions_for_epsilon(epsilon)
        self._directions = grid_directions(self.m)
        if frame is not None:
            matrix = np.asarray(frame[0], dtype=np.float64)
            offset = np.asarray(frame[1], dtype=np.float64)
            if matrix.shape != (2, 2) or offset.shape != (2,):
                raise ParameterError(
                    f"frame must be a (2x2 matrix, length-2 offset), got shapes "
                    f"{matrix.shape}, {offset.shape}"
                )
            frame = (matrix, offset)
        self.frame = frame
        # slot arrays: per direction, the original-space point attaining
        # the max / min projection (NaN while empty)
        self._max_points = np.full((self.m, 2), np.nan)
        self._min_points = np.full((self.m, 2), np.nan)
        self._max_proj = np.full(self.m, -np.inf)
        self._min_proj = np.full(self.m, np.inf)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def _project(self, points: np.ndarray) -> np.ndarray:
        """Projections of points onto the direction grid, shape (n, m)."""
        coords = points if self.frame is None else apply_frame(points, self.frame)
        return coords @ self._directions.T

    def update(self, item: Any, weight: int = 1) -> None:
        """Add one 2-D point; ``weight`` only affects ``n`` accounting."""
        if weight <= 0:
            raise ParameterError(f"weight must be positive, got {weight!r}")
        point = np.asarray(item, dtype=np.float64).reshape(-1)
        if point.shape != (2,):
            raise ParameterError(f"expected a 2-D point, got shape {point.shape}")
        proj = self._project(point.reshape(1, 2))[0]
        improve_max = proj > self._max_proj
        improve_min = proj < self._min_proj
        self._max_points[improve_max] = point
        self._max_proj[improve_max] = proj[improve_max]
        self._min_points[improve_min] = point
        self._min_proj[improve_min] = proj[improve_min]
        self._n += weight

    def extend_points(self, points: np.ndarray) -> "EpsKernel":
        """Bulk-add an ``(n, 2)`` point array (vectorized)."""
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise ParameterError(f"expected (n, 2) points, got {pts.shape}")
        if len(pts) == 0:
            return self
        proj = self._project(pts)  # (n, m)
        arg_max = np.argmax(proj, axis=0)
        arg_min = np.argmin(proj, axis=0)
        cols = np.arange(self.m)
        batch_max = proj[arg_max, cols]
        batch_min = proj[arg_min, cols]
        improve_max = batch_max > self._max_proj
        improve_min = batch_min < self._min_proj
        self._max_points[improve_max] = pts[arg_max[improve_max]]
        self._max_proj[improve_max] = batch_max[improve_max]
        self._min_points[improve_min] = pts[arg_min[improve_min]]
        self._min_proj[improve_min] = batch_min[improve_min]
        self._n += len(pts)
        return self

    def update_batch(self, items, weights=None) -> None:
        items, weights, total = normalize_batch(items, weights)
        if not len(items):
            return
        pts = np.asarray(items, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise ParameterError(f"expected (n, 2) points, got {pts.shape}")
        before = self._n
        self.extend_points(pts)
        # the extent lattice is weight-oblivious; only n sees the weights
        self._n = before + total

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def kernel_points(self) -> np.ndarray:
        """The kernel: unique extreme points kept so far (subset of P)."""
        if self.is_empty:
            return np.empty((0, 2))
        stacked = np.concatenate([self._max_points, self._min_points])
        stacked = stacked[~np.isnan(stacked).any(axis=1)]
        return np.unique(stacked, axis=0)

    def width(self, direction: np.ndarray) -> float:
        """Directional width of the kernel (lower-bounds the true width)."""
        kernel = self.kernel_points()
        if len(kernel) == 0:
            raise EmptySummaryError("width query on an empty kernel")
        return directional_width(kernel, direction)

    def hull(self) -> np.ndarray:
        """Convex hull of the kernel (approximates the hull of P)."""
        return convex_hull(self.kernel_points())

    def size(self) -> int:
        return len(self.kernel_points())

    # ------------------------------------------------------------------
    # Merge — exact slot-wise decomposable max
    # ------------------------------------------------------------------

    def compatible_with(self, other: "EpsKernel") -> Optional[str]:
        assert isinstance(other, EpsKernel)
        if abs(other.epsilon - self.epsilon) > 1e-12:
            return f"epsilon mismatch: {self.epsilon} vs {other.epsilon}"
        if (self.frame is None) != (other.frame is None):
            return "frame mismatch: one operand has a reference frame, the other none"
        if self.frame is not None and not (
            np.allclose(self.frame[0], other.frame[0])
            and np.allclose(self.frame[1], other.frame[1])
        ):
            return "frame mismatch: operands use different reference frames"
        return None

    def _merge_same_type(self, other: "EpsKernel") -> None:
        assert isinstance(other, EpsKernel)
        improve_max = other._max_proj > self._max_proj
        improve_min = other._min_proj < self._min_proj
        self._max_points[improve_max] = other._max_points[improve_max]
        self._max_proj[improve_max] = other._max_proj[improve_max]
        self._min_points[improve_min] = other._min_points[improve_min]
        self._min_proj[improve_min] = other._min_proj[improve_min]
        self._n += other._n

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        def encode(arr: np.ndarray) -> List[List[float]]:
            return [[float(c) for c in row] for row in arr]

        return {
            "epsilon": self.epsilon,
            "n": self._n,
            "frame": None
            if self.frame is None
            else {
                "matrix": encode(self.frame[0]),
                "offset": [float(c) for c in self.frame[1]],
            },
            "max_points": encode(self._max_points),
            "min_points": encode(self._min_points),
            "max_proj": [float(v) for v in self._max_proj],
            "min_proj": [float(v) for v in self._min_proj],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "EpsKernel":
        frame = payload["frame"]
        if frame is not None:
            frame = (
                np.array(frame["matrix"], dtype=np.float64),
                np.array(frame["offset"], dtype=np.float64),
            )
        kernel = cls(epsilon=payload["epsilon"], frame=frame)
        kernel._max_points = np.array(payload["max_points"], dtype=np.float64)
        kernel._min_points = np.array(payload["min_points"], dtype=np.float64)
        kernel._max_proj = np.array(payload["max_proj"], dtype=np.float64)
        kernel._min_proj = np.array(payload["min_proj"], dtype=np.float64)
        kernel._n = payload["n"]
        return kernel
