"""eps-kernels for directional width (paper Section 5)."""

from .convex import (
    apply_frame,
    convex_hull,
    diameter,
    directional_width,
    farthest_pair,
    fat_frame,
    min_area_bounding_box,
)
from .epskernel import EpsKernel, compute_eps_kernel, grid_directions

__all__ = [
    "EpsKernel",
    "compute_eps_kernel",
    "grid_directions",
    "convex_hull",
    "directional_width",
    "diameter",
    "farthest_pair",
    "fat_frame",
    "apply_frame",
    "min_area_bounding_box",
]
