"""Plan compilers: turn merge topologies into :class:`MergePlan` programs.

Each legacy execution loop of the library is re-expressed here as a
*compiler* producing the shared IR:

- :func:`compile_fold` — the ``merge_all`` strategies (chain, balanced
  tree, uniformly random tree, single k-way), compiled over abstract
  slot names so the caller binds any summaries to them;
- :func:`compile_aggregation` — a distributed
  :class:`~repro.distributed.topology.MergeSchedule` plus its leaf
  summary factory, compiled to build steps (one per node) followed by
  the schedule's merges and a root emit;

(the store's dyadic roll-up compiler lives with the store itself —
:meth:`repro.store.store.SegmentStore.compact` — because it reads
private segment state; it produces the same IR and runs on the same
executor).

Compilation is where each strategy's *randomness* is consumed: the
random-tree compiler replays the exact draw sequence of the historical
``merge_random_tree`` loop against its RNG, so a seeded plan is a
faithful, inspectable transcript of what the legacy executor would have
done — and executing it is byte-identical.

:data:`MERGE_STRATEGIES` maps strategy names to
:class:`MergeStrategy` descriptors that carry, besides the compiler,
which optional knobs (``rng``, ``executor``) the strategy actually
consumes — ``merge_all`` uses this to reject unsupported combinations
instead of silently dropping them.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable, Hashable, List, Optional, Sequence

from ..core.exceptions import MergeError, ParameterError
from ..core.rng import RngLike, resolve_rng
from .plan import MergePlan, MergeStep

__all__ = [
    "MergeStrategy",
    "MERGE_STRATEGIES",
    "compile_fold",
    "compile_aggregation",
    "fold_slots",
]


def fold_slots(count: int) -> List[str]:
    """Canonical slot names for an ``count``-ary fold: ``s0`` .. ``s{n-1}``."""
    return [f"s{i}" for i in range(count)]


# ---------------------------------------------------------------------------
# Fold strategies
# ---------------------------------------------------------------------------


def _compile_chain(slots: Sequence[Hashable], rng: RngLike = None) -> MergePlan:
    """Left fold: ``((s0 <- s1) <- s2) <- ...`` — depth ``m - 1``."""
    acc = slots[0]
    steps = [MergeStep("merge", acc, (src,)) for src in slots[1:]]
    steps.append(MergeStep("emit", acc))
    # one destination absorbing everything is inherently sequential
    return MergePlan(name=f"fold:chain[{len(slots)}]", steps=steps)


def _compile_tree(slots: Sequence[Hashable], rng: RngLike = None) -> MergePlan:
    """Balanced binary reduction — depth ``ceil(log2 m)``, pairwise merges.

    Levels reproduce the historical loop exactly: pairs merge left-in-
    place, an odd leftover joins the *end* of the next level.  The plan
    is groupable (each level's pairs are disjoint) but fan-in fusion is
    off — the tree's contract is pairwise merges, not k-way.
    """
    steps: List[MergeStep] = []
    level: List[Hashable] = list(slots)
    while len(level) > 1:
        nxt: List[Hashable] = []
        for i in range(0, len(level) - 1, 2):
            steps.append(MergeStep("merge", level[i], (level[i + 1],)))
            nxt.append(level[i])
        if len(level) % 2 == 1:
            nxt.append(level[-1])
        level = nxt
    steps.append(MergeStep("emit", level[0]))
    return MergePlan(
        name=f"fold:tree[{len(slots)}]",
        steps=steps,
        groupable=True,
        fuse_fanin=False,
    )


def _compile_random(slots: Sequence[Hashable], rng: RngLike = None) -> MergePlan:
    """A uniformly random binary merge tree, deterministic under a seed.

    Replays the draw sequence of the historical loop: pick two distinct
    survivors, merge the later-positioned one into the earlier.  The
    randomness is spent *here*, so the compiled plan is the realized
    tree and execution is deterministic.
    """
    gen = resolve_rng(rng)
    steps: List[MergeStep] = []
    pool: List[Hashable] = list(slots)
    while len(pool) > 1:
        i, j = gen.choice(len(pool), size=2, replace=False)
        i, j = int(i), int(j)
        if i > j:
            i, j = j, i
        right = pool.pop(j)
        steps.append(MergeStep("merge", pool[i], (right,)))
    steps.append(MergeStep("emit", pool[0]))
    return MergePlan(name=f"fold:random[{len(slots)}]", steps=steps)


def _compile_kway(slots: Sequence[Hashable], rng: RngLike = None) -> MergePlan:
    """One s-way fan-in: a single ``merge_many`` over the whole list."""
    steps: List[MergeStep] = []
    if len(slots) > 1:
        steps.append(MergeStep("merge", slots[0], tuple(slots[1:])))
    steps.append(MergeStep("emit", slots[0]))
    return MergePlan(name=f"fold:kway[{len(slots)}]", steps=steps)


@dataclass(frozen=True)
class MergeStrategy:
    """A named fold strategy: its plan compiler plus the knobs it consumes.

    ``uses_rng``/``supports_executor`` drive ``merge_all``'s argument
    validation — a knob a strategy cannot honor raises
    :class:`~repro.core.exceptions.ParameterError` instead of being
    silently ignored.
    """

    name: str
    compiler: Callable[..., MergePlan]
    uses_rng: bool = False
    supports_executor: bool = False
    description: str = ""

    def compile(
        self, slots: Sequence[Hashable], rng: RngLike = None
    ) -> MergePlan:
        """Compile a plan over ``slots`` (consuming ``rng`` if used)."""
        if not slots:
            raise MergeError("cannot merge an empty list of summaries")
        return self.compiler(slots, rng)


#: strategy registry: ``merge_all`` dispatch, CLI choices, docs
MERGE_STRATEGIES = {
    "chain": MergeStrategy(
        name="chain",
        compiler=_compile_chain,
        description="left fold, depth m-1 (the adversarial caterpillar)",
    ),
    "tree": MergeStrategy(
        name="tree",
        compiler=_compile_tree,
        supports_executor=True,
        description="balanced binary reduction, depth ceil(log2 m)",
    ),
    "random": MergeStrategy(
        name="random",
        compiler=_compile_random,
        uses_rng=True,
        description="uniformly random binary merge tree",
    ),
    "kway": MergeStrategy(
        name="kway",
        compiler=_compile_kway,
        description="one s-way merge_many fan-in",
    ),
}


def compile_fold(
    strategy: str, count: int, rng: RngLike = None
) -> MergePlan:
    """Compile the named fold strategy over ``count`` canonical slots.

    Convenience wrapper used by the CLI and benchmarks; ``merge_all``
    goes through :data:`MERGE_STRATEGIES` directly so it can validate
    knobs against the strategy descriptor first.
    """
    try:
        descriptor = MERGE_STRATEGIES[strategy]
    except KeyError:
        raise ParameterError(
            f"unknown merge strategy {strategy!r}; choose from "
            f"{sorted(MERGE_STRATEGIES)}"
        ) from None
    return descriptor.compile(fold_slots(count), rng)


# ---------------------------------------------------------------------------
# Distributed aggregation schedules
# ---------------------------------------------------------------------------


def _factory_takes_node_index(factory: Callable[..., object]) -> bool:
    """True when ``factory`` wants the node index (one required arg).

    Factories may accept the node index to derive per-node RNG streams
    (``lambda i: KLLQuantiles(200, rng=1000 + i)``); zero-argument
    factories are called as before.
    """
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):
        return False
    required = [
        p
        for p in signature.parameters.values()
        if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
        and p.default is p.empty
    ]
    return len(required) == 1


def _leaf_builder(
    factory: Optional[Callable[..., object]], takes_index: bool
) -> Callable[..., object]:
    """Build-step builder: receives the slot's node, returns its summary."""
    if factory is None:
        # plan-inspection mode (``repro plan``): steps are never executed
        return lambda node: None
    if takes_index:
        return lambda node: node.build(lambda: factory(node.node_id))
    return lambda node: node.build(factory)


def compile_aggregation(
    schedule,
    summary_factory: Optional[Callable[..., object]] = None,
) -> MergePlan:
    """Compile a :class:`~repro.distributed.topology.MergeSchedule`.

    One build step per leaf (the executor fans consecutive builds out
    across its pool), one merge step per schedule step in order, one
    emit of the root.  The root is *protected*: the simulator's
    coordinator is recovered out-of-band (see
    :mod:`repro.distributed.recovery`), so crash injection never takes
    it.  ``summary_factory`` may be omitted when the plan is compiled
    only for inspection.
    """
    takes_index = _factory_takes_node_index(summary_factory) if summary_factory else False
    builder = _leaf_builder(summary_factory, takes_index)
    steps: List[MergeStep] = [
        MergeStep("build", i, builder=builder) for i in range(schedule.leaves)
    ]
    steps.extend(
        MergeStep("merge", dst, (src,)) for dst, src in schedule.steps
    )
    steps.append(MergeStep("emit", schedule.root))
    return MergePlan(
        name=f"aggregate:{schedule.name}[{schedule.leaves}]",
        steps=steps,
        groupable=True,
        protected=frozenset({schedule.root}),
    )
