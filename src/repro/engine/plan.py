"""The merge-plan IR: what to merge, decoupled from how it runs.

The paper's central claim is that mergeability makes aggregation
*composable*: any merge tree over any partition of the data yields the
same ``eps`` guarantee.  The execution shape is therefore a *plan* —
data, not control flow — and this module is its intermediate
representation.  A :class:`MergePlan` is an ordered list of
:class:`MergeStep` ops over named slots:

``build``
    Materialize a slot's value by calling the step's ``builder`` (a
    leaf node ingesting its shard, for the simulator).
``merge``
    Combine the values of ``srcs`` into ``slot``.  When ``slot``
    already holds a value the merge is *in place* (the simulator's
    "absorb the child" semantics, mutating the first operand exactly
    like the classic fold executors).  When ``slot`` is fresh, the
    first source is copied through the step's ``builder`` (or a plain
    summary copy) and the rest are merged into the copy — the store's
    immutable roll-up semantics.
``emit``
    Mark ``slot`` as an output of the plan.

Slots are arbitrary hashable names: the fold compilers use ``"s0"``,
``"s1"``, ...; the simulator uses the node indices themselves; the
store uses ``(level, start)`` block coordinates.

Plans are compiled by :mod:`repro.engine.compilers` from merge
strategies, :class:`~repro.distributed.topology.MergeSchedule` objects,
and store roll-up states, and executed — serially, wave-parallel, or
through a fault-injected retry loop — by
:func:`repro.engine.execute_plan`.  The IR itself never executes
anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Any, Callable, Hashable, Iterable, List, Optional, Set, Tuple

from ..core.exceptions import ParameterError

__all__ = ["MergeStep", "MergePlan", "OPS"]

#: the three plan ops, in the order a step lifecycle runs them
OPS = ("build", "merge", "emit")


@dataclass(frozen=True)
class MergeStep:
    """One op of a merge plan.

    ``op`` is one of :data:`OPS`.  ``slot`` is the destination (the
    built slot, the merge target, or the emitted output).  ``srcs``
    names the merge operands, in order.  ``builder`` is the leaf
    factory for ``build`` steps, or — for a ``merge`` into a fresh
    slot — a callable receiving the first source's value and returning
    the new slot value (the copy-on-write seed).
    """

    op: str
    slot: Hashable
    srcs: Tuple[Hashable, ...] = ()
    builder: Optional[Callable[..., Any]] = None

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise ParameterError(
                f"unknown plan op {self.op!r}; choose from {OPS}"
            )
        if self.op == "merge":
            if not self.srcs:
                raise ParameterError("a merge step needs at least one source slot")
            if self.slot in self.srcs:
                raise ParameterError(
                    f"merge step destination {self.slot!r} appears in its own sources"
                )
        elif self.srcs:
            raise ParameterError(f"{self.op} steps take no source slots")
        if self.op == "build" and self.builder is None:
            raise ParameterError("a build step needs a builder callable")

    def describe(self) -> str:
        """One human-readable line for :meth:`MergePlan.describe`."""
        if self.op == "build":
            return f"build {self.slot!r}"
        if self.op == "merge":
            srcs = ", ".join(repr(s) for s in self.srcs)
            arrow = "<-" if self.builder is None else "<=(copy)"
            return f"merge {self.slot!r} {arrow} [{srcs}]"
        return f"emit  {self.slot!r}"


@dataclass(frozen=True)
class MergePlan:
    """An ordered program of :class:`MergeStep` ops over named slots.

    ``groupable`` opts the plan into the executor's wave runtime: with
    a parallel executor, consecutive merges into one destination
    collapse into a single k-way fan-in and slot-disjoint groups run
    concurrently.  Plans whose step-by-step shape *is* the contract
    (the chain fold, the random tree) stay ungroupable so their merge
    sequence — and therefore their error behavior — is preserved
    exactly.

    ``fuse_fanin`` controls whether the wave runtime may additionally
    collapse consecutive single-source merges into one destination into
    a single k-way ``merge_many`` (the simulator's historical wave
    semantics).  Plans that promise *pairwise* merges (the balanced
    tree) keep it off so grouped execution stays byte-identical to the
    scalar fold.

    ``protected`` names slots immune to crash injection (the
    simulator's coordinator, recovered out-of-band).
    """

    name: str
    steps: Tuple[MergeStep, ...]
    groupable: bool = False
    fuse_fanin: bool = True
    protected: frozenset = frozenset()

    def __post_init__(self) -> None:
        object.__setattr__(self, "steps", tuple(self.steps))
        object.__setattr__(self, "protected", frozenset(self.protected))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    # cached_property works on a frozen dataclass (it writes straight
    # into __dict__); plans are immutable, so each view is computed once
    @cached_property
    def merge_steps(self) -> Tuple[MergeStep, ...]:
        return tuple(s for s in self.steps if s.op == "merge")

    @cached_property
    def build_steps(self) -> Tuple[MergeStep, ...]:
        return tuple(s for s in self.steps if s.op == "build")

    @cached_property
    def outputs(self) -> Tuple[Hashable, ...]:
        """Slots emitted by the plan, in emit order."""
        return tuple(s.slot for s in self.steps if s.op == "emit")

    @cached_property
    def num_merges(self) -> int:
        """Total merge fan-in (source slots consumed across merge steps)."""
        return sum(len(s.srcs) for s in self.merge_steps)

    def slots(self) -> Set[Hashable]:
        """Every slot the plan names anywhere."""
        named: Set[Hashable] = set()
        for step in self.steps:
            named.add(step.slot)
            named.update(step.srcs)
        return named

    def validate(self, inputs: Iterable[Hashable] = ()) -> None:
        """Check the plan is executable given the caller's input slots.

        Raises :class:`~repro.core.exceptions.ParameterError` when a
        step reads a slot that is neither an input, nor built, nor the
        fresh destination of an earlier merge, or when an emit names an
        unknown slot.
        """
        known: Set[Hashable] = set(inputs)
        # plans are immutable, so a (plan, input-set) pair that passed
        # once passes forever — cached fold plans skip the re-walk
        witnessed = self.__dict__.setdefault("_validated_input_sets", set())
        key = frozenset(known)
        if key in witnessed:
            return
        for index, step in enumerate(self.steps):
            if step.op == "build":
                known.add(step.slot)
                continue
            if step.op == "merge":
                missing = [s for s in step.srcs if s not in known]
                if missing:
                    raise ParameterError(
                        f"plan {self.name!r} step {index}: merge into "
                        f"{step.slot!r} reads unknown slot(s) {missing!r}"
                    )
                known.add(step.slot)
                continue
            if step.slot not in known:
                raise ParameterError(
                    f"plan {self.name!r} step {index}: emit of unknown "
                    f"slot {step.slot!r}"
                )
        if not self.outputs:
            raise ParameterError(f"plan {self.name!r} emits nothing")
        witnessed.add(key)

    def describe(self) -> str:
        """Multi-line rendering for the ``repro plan`` CLI command."""
        header = (
            f"plan {self.name!r}: {len(self.build_steps)} build(s), "
            f"{len(self.merge_steps)} merge step(s) "
            f"({self.num_merges} fan-in), "
            f"{len(self.outputs)} output(s)"
            f"{' [groupable]' if self.groupable else ''}"
        )
        lines: List[str] = [header]
        for index, step in enumerate(self.steps):
            lines.append(f"  {index:>3}. {step.describe()}")
        return "\n".join(lines)
