"""``execute_plan``: the one runner every merge in the library goes through.

The paper's mergeability guarantee is about *what* gets merged; this
module owns *how*, once, for every call site: ``merge_all`` folds, the
distributed simulator's schedules, and the store's dyadic compactions
all compile to :class:`~repro.engine.plan.MergePlan` and run here.
Three execution regimes cover the plan space:

- **scalar** — steps run one by one in plan order, each source emitted
  and absorbed by its destination (the legacy step-by-step semantics;
  also carries the bare ``duplicate_probability`` at-least-once knob);
- **wave** — with a parallel executor and a ``groupable`` plan,
  consecutive merges are grouped into k-way fan-ins, packed into
  slot-disjoint waves (:mod:`repro.engine.waves`), and dispatched
  through :class:`~repro.core.parallel.ParallelExecutor`; emission and
  counter updates stay in the calling process so worker forks never
  double-account;
- **fault** — with a :class:`~repro.engine.faults.FaultModel`, every
  delivery runs a retry-with-backoff loop against injected loss,
  corruption, crashes and duplicates, parents dedup via per-slot
  :class:`~repro.engine.faults.MergeLedger` (exactly-once merges), and
  the report carries coverage/degradation accounting.

Build steps fan out across the executor in all three regimes (leaf
ingestion is embarrassingly parallel even on an unreliable fabric);
only the merge phase is forced scalar under faults, because retries are
inherently sequential.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Mapping, Optional, Set, Tuple

from ..core.codecs import decode_summary
from ..core.exceptions import ParameterError, SerializationError
from ..core.parallel import (
    ExecutorLike,
    ParallelExecutor,
    RuntimeUnavailable,
    resolve_executor,
)
from ..core.rng import RngLike, resolve_rng
from ..core.shared_state import export_value
from .agents import (
    is_segment,
    merge_segment_into,
    set_slot_value,
    slot_size,
    slot_value,
    wrap_slot,
)
from .faults import FaultModel, FaultStats, RetryPolicy
from .plan import MergePlan, MergeStep
from .waves import StepGroup, assign_groups, plan_step_waves

__all__ = ["ExecutionReport", "ExecutionResult", "execute_plan"]

#: per-merge-step outcomes recorded in :attr:`ExecutionReport.step_status`
STEP_DONE = "done"
STEP_FAILED = "failed"
STEP_SKIPPED = "skipped"


@dataclass
class ExecutionReport:
    """What one :func:`execute_plan` run actually did."""

    plan: str
    #: fan-in actually delivered (source slots merged into destinations)
    merges: int = 0
    #: build steps executed
    builds: int = 0
    #: parallel rounds: consecutive builds dispatched together
    build_waves: int = 0
    #: merge waves dispatched on the wave path (0 on scalar/fault paths)
    waves: int = 0
    #: k-way groups executed on the wave path
    groups: int = 0
    #: largest summary size observed at any slot during the run
    max_size: int = 0
    #: serialized payload bytes shipped (each generation counted once)
    bytes_shipped: int = 0
    #: bytes re-sent for already-serialized generations (retry overhead)
    bytes_retransmitted: int = 0
    #: merge steps delivered twice by the legacy at-least-once knob
    duplicated_deliveries: int = 0
    build_seconds: float = 0.0
    merge_seconds: float = 0.0
    #: merge-step index -> "done" | "failed" | "skipped"
    step_status: Dict[int, str] = field(default_factory=dict)
    #: slot -> set of slots whose data that slot's value now covers
    covered: Dict[Hashable, Set[Hashable]] = field(default_factory=dict)
    #: slots lost to crash injection
    crashed: Set[Hashable] = field(default_factory=set)
    #: fault-injection accounting (None for fault-free runs)
    fault_stats: Optional[FaultStats] = None
    #: True when parallelism was *requested* (executor with >1 workers)
    #: but some or all of the run actually executed serially — platform
    #: without fork, pool failures, runtime worker crashes.  Callers
    #: must surface this instead of reporting serial numbers as parallel.
    degraded_to_serial: bool = False
    #: human-readable record of every degradation the executor saw
    degradation_events: List[str] = field(default_factory=list)
    #: persistent-runtime dispatch accounting (None when the resident
    #: runtime was not used): workers, dispatch_rounds, messages_sent,
    #: cmd_bytes/ack_bytes on the pipes, synced_slots, sync_shm_bytes,
    #: exported_bytes through shared memory, worker_crashes
    runtime_stats: Optional[Dict[str, Any]] = None

    @property
    def steps_done(self) -> int:
        return sum(1 for s in self.step_status.values() if s == STEP_DONE)

    @property
    def steps_failed(self) -> int:
        return sum(1 for s in self.step_status.values() if s == STEP_FAILED)

    @property
    def steps_skipped(self) -> int:
        return sum(1 for s in self.step_status.values() if s == STEP_SKIPPED)


@dataclass
class ExecutionResult:
    """Outputs plus report plus the live agents of one plan execution.

    ``outputs`` maps every *reachable* emitted slot to its final value;
    slots lost to faults (a roll-up whose every retry failed) are
    absent, so callers can distinguish "empty" from "gone".
    """

    outputs: Dict[Hashable, Any]
    report: ExecutionReport
    agents: Dict[Hashable, Any]

    @property
    def value(self) -> Any:
        """The single output of a one-output plan."""
        if len(self.outputs) != 1:
            raise ParameterError(
                f"plan produced {len(self.outputs)} outputs; use .outputs"
            )
        return next(iter(self.outputs.values()))


# ---------------------------------------------------------------------------
# Worker functions (run inside ParallelExecutor forks — must not touch
# agent counters, which live in the calling process)
# ---------------------------------------------------------------------------


def _run_build(builder: Callable[..., Any], agent: Any) -> Any:
    return builder(agent) if agent is not None else builder()


def _combine_values(target: Any, children: List[Any]) -> Any:
    if is_segment(target):
        return merge_segment_into(target, children)
    if not children:
        return target
    if len(children) == 1:
        return target.merge(children[0])
    return target.merge_many(children)


def _execute_group(
    target: Any, payloads: List[Any], serialized: bool, fresh: bool
) -> Any:
    """One k-way group: decode children, then merge (or seed-and-merge)."""
    children = [decode_summary(p) if serialized else p for p in payloads]
    if fresh:
        seed = target(children[0])
        if is_segment(seed):
            # merged_segment semantics: one member-wise merge_many over
            # the remaining parts, issued even when the group had one part
            return merge_segment_into(seed, children[1:])
        return _combine_values(seed, children[1:])
    return _combine_values(target, children)


def _value_size(value: Any) -> int:
    if value is None:
        return 0
    if is_segment(value):
        return sum(member.size() for member in value.members.values())
    return value.size()


class _ResidentSession:
    """Worker-resident half of the persistent runtime.

    Instantiated *inside* each forked worker by
    :class:`~repro.core.parallel.WorkerRuntime`; the payload is the
    plan plus the coordinator's agent dict, both inherited copy-on-write
    at fork time — builder closures, slot values and shard arrays all
    arrive without a single pickle.  From then on the coordinator ships
    only ids: builds as slot names, merge groups as
    ``(dst, srcs, builder_ordinal)``.  Every produced value is exported
    into this worker's append-only shared-memory arena so the
    coordinator (or another worker, via sync) can import it later —
    including after this worker crashes, which is what makes the
    engine's exactly-once recovery work.
    """

    def __init__(self, worker_id: int, payload: Any, arena: Any) -> None:
        plan, slots = payload
        self.worker_id = worker_id
        self.arena = arena
        self.slots = slots
        self.merge_steps = plan.merge_steps
        self.builders = {step.slot: step.builder for step in plan.build_steps}

    def install(self, slot: Hashable, value: Any) -> None:
        agent = self.slots.get(slot)
        if agent is None:
            self.slots[slot] = wrap_slot(value)
        else:
            set_slot_value(agent, value)

    def execute(self, kind: str, item: Any) -> Tuple[Hashable, Dict[str, Any], int]:
        if kind == "build":
            slot = item
            agent = self.slots.get(slot)
            value = _run_build(self.builders[slot], agent)
            self.install(slot, value)
            return slot, export_value(value, self.arena), _value_size(value)
        dst, srcs, ordinal = item
        payloads = [slot_value(self.slots[src]) for src in srcs]
        if ordinal is not None:
            # copy-on-write destination: seed through the plan's builder
            builder = self.merge_steps[ordinal].builder
            value = _execute_group(builder, payloads, False, True)
            agent = wrap_slot(value)
            self.slots[dst] = agent
        else:
            agent = self.slots[dst]
            value = _execute_group(slot_value(agent), payloads, False, False)
            set_slot_value(agent, value)
        if hasattr(agent, "merges_performed"):
            agent.merges_performed += len(srcs)
        return dst, export_value(value, self.arena), _value_size(value)


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------


class _Run:
    """Mutable state of one plan execution."""

    def __init__(
        self,
        plan: MergePlan,
        inputs: Mapping[Hashable, Any],
        pool: Optional[ParallelExecutor],
        serialize: bool,
        duplicate_probability: float,
        rng: RngLike,
        fault_model: Optional[FaultModel],
        retry_policy: Optional[RetryPolicy],
        ledger_factory: Optional[Callable[[], Any]],
        instrument: Optional[Callable[[str, Dict[str, Any]], None]],
        accounting: bool,
    ) -> None:
        self.plan = plan
        self.pool = pool
        self.serialize = serialize
        self.duplicate_probability = duplicate_probability
        # entropy is only drawn when the duplicate knob is actually live
        self.dup_rng = resolve_rng(rng) if duplicate_probability else None
        self.faults = fault_model
        self.policy = retry_policy or RetryPolicy()
        self.ledger_factory = ledger_factory
        self.instrument = instrument
        # the fault runtime's skip/coverage logic reads these structures
        self.accounting = accounting or fault_model is not None
        self.report = ExecutionReport(plan=plan.name)
        if fault_model is not None:
            self.report.fault_stats = FaultStats()
        self.slots: Dict[Hashable, Any] = {}
        self.outputs: Dict[Hashable, Any] = {}
        for slot, value in inputs.items():
            self._install(slot, wrap_slot(value))
        #: wave path applies only to fault-free, knob-free groupable runs
        self.use_waves = (
            pool is not None
            and plan.groupable
            and fault_model is None
            and not duplicate_probability
        )
        #: the persistent runtime additionally requires serialize=False:
        #: wire-format byte accounting must run in the coordinator, so
        #: serialized runs keep the legacy per-wave pool
        self.use_resident = self.use_waves and not serialize
        self._runtime = None
        #: slot -> worker ids holding its latest value; missing key means
        #: everyone does (the fork-time snapshot, or no runtime at all)
        self._fresh: Dict[Hashable, Set[int]] = {}
        #: slot -> shared-memory descriptor of its latest worker export
        self._desc: Dict[Hashable, Dict[str, Any]] = {}
        #: slots whose coordinator agent also holds the latest value
        self._coord_fresh: Set[Hashable] = set()
        self._events_baseline = (
            len(pool.degradation_events) if pool is not None else 0
        )

    # -- bookkeeping ------------------------------------------------------

    def _install(self, slot: Hashable, agent: Any) -> None:
        if (
            self.faults is not None
            and self.ledger_factory is not None
            and getattr(agent, "ledger", None) is None
        ):
            agent.ledger = self.ledger_factory()
        self.slots[slot] = agent
        if self.accounting:
            self.report.covered.setdefault(slot, {slot})
            self._observe_size(agent)

    def _observe_size(self, agent: Any) -> None:
        self.report.max_size = max(self.report.max_size, slot_size(agent))

    def _emit_event(self, event: str, **info: Any) -> None:
        if self.instrument is not None:
            self.instrument(event, info)

    # -- build phase ------------------------------------------------------

    def run_builds(self, steps: List[MergeStep]) -> None:
        t0 = time.perf_counter()
        agents = [self.slots.get(step.slot) for step in steps]
        tasks = [(step.builder, agent) for step, agent in zip(steps, agents)]
        if self.pool is not None:
            values = self.pool.map(_run_build, tasks)
        else:
            values = [_run_build(builder, agent) for builder, agent in tasks]
        for step, agent, value in zip(steps, agents, values):
            if agent is None:
                self._install(step.slot, wrap_slot(value))
            elif self.accounting:
                set_slot_value(agent, value)
                self.report.covered.setdefault(step.slot, {step.slot})
                self._observe_size(agent)
            else:
                set_slot_value(agent, value)
        self.report.builds += len(steps)
        self.report.build_waves += 1
        self.report.build_seconds += time.perf_counter() - t0
        self._emit_event("build_wave", builds=len(steps))

    # -- persistent (resident) runtime ------------------------------------

    @property
    def _resident_active(self) -> bool:
        return self._runtime is not None and bool(self._runtime.live)

    def _maybe_start_runtime(self) -> None:
        """Fork the persistent workers for this plan, if eligible.

        A start failure records a degradation on the pool and leaves
        ``self._runtime`` unset — every path below then falls back to
        the legacy pool.map / scalar execution with identical results.
        """
        if not self.use_resident or not self.pool.is_parallel:
            return
        work = len(self.plan.merge_steps) + len(self.plan.build_steps)
        if work < 2:
            return  # nothing to overlap; forking workers is pure overhead
        try:
            self._runtime = self.pool.start_runtime(
                _ResidentSession, (self.plan, self.slots)
            )
        except RuntimeUnavailable:
            self._runtime = None

    def _freshness(self, slot: Hashable) -> Optional[Set[int]]:
        return self._fresh.get(slot)

    def _pack_sync(
        self, worker_id: int, slot: Hashable, sync: List[Any], synced: Set[Hashable]
    ) -> None:
        """Queue ``slot``'s latest value for ``worker_id`` if it is stale
        there — by shared-memory descriptor when a worker produced it,
        inline only for coordinator-recovered values (post-crash)."""
        fresh = self._fresh.get(slot)
        if fresh is None or worker_id in fresh or slot in synced:
            return
        synced.add(slot)
        descriptor = self._desc.get(slot)
        if descriptor is not None:
            sync.append((slot, ("desc", descriptor)))
        else:
            sync.append((slot, ("val", slot_value(self.slots[slot]))))
        fresh.add(worker_id)

    def _materialize(self, slot: Hashable) -> Any:
        """Bring the coordinator's agent for ``slot`` up to date and
        return the value (imports from shared memory at most once)."""
        agent = self.slots.get(slot)
        if slot in self._coord_fresh or slot not in self._fresh:
            return slot_value(agent) if agent is not None else None
        descriptor = self._desc.get(slot)
        if descriptor is None:  # pragma: no cover - coordinator is latest
            self._coord_fresh.add(slot)
            return slot_value(agent) if agent is not None else None
        value = self._runtime.fetch(descriptor)
        if agent is None:
            self._install(slot, wrap_slot(value))
        else:
            set_slot_value(agent, value)
        self._coord_fresh.add(slot)
        return value

    def _coordinator_owns(self, slot: Hashable) -> None:
        """Record that the coordinator's value for ``slot`` is now the
        only fresh copy (after a serial re-execution or local build)."""
        self._fresh[slot] = set()
        self._desc.pop(slot, None)
        self._coord_fresh.add(slot)

    def _handle_crash(self, worker_id: int) -> None:
        for fresh in self._fresh.values():
            fresh.discard(worker_id)
        self.pool.fallbacks += 1
        self.pool.degradation_events.append(
            f"runtime worker {worker_id} crashed mid-wave; its "
            f"unacknowledged groups were re-executed serially (exactly-once)"
        )

    def _deactivate_runtime(self) -> None:
        """Materialize every pending worker value, then drop the runtime.

        Called at normal completion, and mid-plan when the last worker
        dies — after it, coordinator state is fully current and the
        legacy paths continue the plan seamlessly.
        """
        for slot in list(self._desc):
            self._materialize(slot)
        self.report.runtime_stats = dict(self._runtime.stats)
        self._runtime.close()
        self._runtime = None
        self._fresh.clear()
        self._desc.clear()
        self._coord_fresh.clear()

    def _finish_resident_build(
        self, slot: Hashable, worker_id: int, descriptor: Dict[str, Any], size: int
    ) -> None:
        self._fresh[slot] = {worker_id}
        self._desc[slot] = descriptor
        self._coord_fresh.discard(slot)
        if self.accounting:
            self.report.covered.setdefault(slot, {slot})
            self.report.max_size = max(self.report.max_size, size)

    def _local_build(self, step: MergeStep) -> None:
        """Serial re-execution of one build whose worker died before
        acking — its partial work was never published anywhere, so this
        runs exactly once from the coordinator's (fork-equal) state."""
        agent = self.slots.get(step.slot)
        value = _run_build(step.builder, agent)
        if agent is None:
            self._install(step.slot, wrap_slot(value))
        else:
            set_slot_value(agent, value)
            if self.accounting:
                self.report.covered.setdefault(step.slot, {step.slot})
                self._observe_size(agent)
        self._coordinator_owns(step.slot)

    def run_builds_resident(self, steps: List[MergeStep]) -> None:
        """One IPC round-trip builds every leaf: workers get contiguous
        slot ranges (so later merge waves stay worker-local as long as
        possible) and ship back only descriptors and sizes."""
        t0 = time.perf_counter()
        workers = sorted(self._runtime.live)
        per_worker: Dict[int, List[MergeStep]] = {w: [] for w in workers}
        for index, step in enumerate(steps):
            per_worker[workers[index * len(workers) // len(steps)]].append(step)
        assignments: Dict[int, Tuple[str, List[Any], List[Any]]] = {}
        for worker_id, assigned in per_worker.items():
            if not assigned:
                continue
            items: List[Any] = []
            sync: List[Any] = []
            synced: Set[Hashable] = set()
            for step in assigned:
                self._pack_sync(worker_id, step.slot, sync, synced)
                items.append(step.slot)
            assignments[worker_id] = ("build", items, sync)
        results, crashed = self._runtime.dispatch(assignments)
        for worker_id, rows in results.items():
            for (slot, descriptor, size) in rows:
                self._finish_resident_build(slot, worker_id, descriptor, size)
        for worker_id in crashed:
            self._handle_crash(worker_id)
        for worker_id in crashed:
            for step in per_worker[worker_id]:
                self._local_build(step)
        if self._runtime is not None and not self._runtime.live:
            self._deactivate_runtime()
        self.report.builds += len(steps)
        self.report.build_waves += 1
        self.report.build_seconds += time.perf_counter() - t0
        self._emit_event("build_wave", builds=len(steps))

    def _finish_resident_group(
        self,
        group: StepGroup,
        worker_id: int,
        descriptor: Dict[str, Any],
        size: int,
    ) -> None:
        self._fresh[group.dst] = {worker_id}
        self._desc[group.dst] = descriptor
        self._coord_fresh.discard(group.dst)
        agent = self.slots.get(group.dst)
        if agent is not None and hasattr(agent, "merges_performed"):
            agent.merges_performed += len(group.srcs)
        self._account_group(group, size)

    def _account_group(self, group: StepGroup, size: int) -> None:
        if self.accounting:
            self.report.covered.setdefault(group.dst, {group.dst})
            for src in group.srcs:
                self.report.covered[group.dst] |= self.report.covered[src]
            self.report.max_size = max(self.report.max_size, size)
        for index in group.indices:
            self.report.step_status[index] = STEP_DONE
        self.report.merges += len(group.srcs)

    def _local_group(self, group: StepGroup) -> None:
        """Serial re-execution of one merge group whose worker died
        before acking.  Operand state is recovered from acked exports
        (append-only arenas survive their producer), so the group runs
        exactly once — never zero times, never one-and-a-half."""
        payloads = [self._materialize(src) for src in group.srcs]
        if group.builder is not None:
            value = _execute_group(group.builder, payloads, False, True)
            agent = self.slots.get(group.dst)
            if agent is None:
                self._install(group.dst, wrap_slot(value))
                agent = self.slots[group.dst]
            else:
                set_slot_value(agent, value)
        else:
            target = self._materialize(group.dst)
            value = _execute_group(target, payloads, False, False)
            agent = self.slots[group.dst]
            set_slot_value(agent, value)
        if hasattr(agent, "merges_performed"):
            agent.merges_performed += len(group.srcs)
        self._coordinator_owns(group.dst)
        self._account_group(group, _value_size(value))

    def _wave_resident(self, wave: List[StepGroup]) -> None:
        """One merge wave, one IPC round-trip: groups are assigned to the
        workers already holding their operands, stale operands sync via
        shared-memory descriptors, and only (dst, srcs, ordinal) ids
        travel on the pipes."""
        workers = sorted(self._runtime.live)
        by_worker = assign_groups(wave, workers, self._freshness)
        assignments: Dict[int, Tuple[str, List[Any], List[Any]]] = {}
        for worker_id, groups in by_worker.items():
            if not groups:
                continue
            items: List[Any] = []
            sync: List[Any] = []
            synced: Set[Hashable] = set()
            for group in groups:
                needed = (
                    list(group.srcs)
                    if group.builder is not None
                    else [group.dst, *group.srcs]
                )
                for slot in needed:
                    self._pack_sync(worker_id, slot, sync, synced)
                ordinal = group.indices[0] if group.builder is not None else None
                items.append((group.dst, list(group.srcs), ordinal))
            assignments[worker_id] = ("merge", items, sync)
        results, crashed = self._runtime.dispatch(assignments)
        for worker_id, rows in results.items():
            for group, (slot, descriptor, size) in zip(by_worker[worker_id], rows):
                self._finish_resident_group(group, worker_id, descriptor, size)
        for worker_id in crashed:
            self._handle_crash(worker_id)
        for worker_id in crashed:
            for group in by_worker[worker_id]:
                self._local_group(group)
        if self._runtime is not None and not self._runtime.live:
            self._deactivate_runtime()
        self.report.waves += 1
        self.report.groups += len(wave)
        self._emit_event("wave", groups=len(wave))

    # -- scalar merge path ------------------------------------------------

    def run_scalar(self, steps: List[MergeStep], first_index: int) -> None:
        # hot path: merge_all and compaction run every step through this
        # loop, so frequently-read attributes are hoisted to locals
        slots = self.slots
        serialize = self.serialize
        dup_p = self.duplicate_probability
        accounting = self.accounting
        report = self.report
        status = report.step_status
        instrument = self.instrument
        for offset, step in enumerate(steps):
            index = first_index + offset
            srcs = step.srcs
            missing = False
            for src in srcs:
                if src not in slots:
                    missing = True
                    break
            if missing:
                status[index] = STEP_SKIPPED
                continue
            if step.builder is None:
                agent = slots[step.slot]
                if len(srcs) == 1:
                    agent.absorb(
                        slots[srcs[0]].emit(serialize=serialize),
                        serialized=serialize,
                    )
                else:
                    agent.absorb_many(
                        [slots[src].emit(serialize=serialize) for src in srcs],
                        serialized=serialize,
                    )
            else:
                payloads = [slots[src].emit(serialize=serialize) for src in srcs]
                first = decode_summary(payloads[0]) if serialize else payloads[0]
                agent = wrap_slot(step.builder(first))
                agent.absorb_many(payloads[1:], serialized=serialize)
                self._install(step.slot, agent)
            if dup_p:
                for src in srcs:
                    if float(self.dup_rng.random()) < dup_p:
                        dup = slots[src].emit(serialize=serialize)
                        agent.absorb(dup, serialized=serialize)
                        report.duplicated_deliveries += 1
            if accounting:
                for src in srcs:
                    report.covered[step.slot] |= report.covered[src]
                self._observe_size(agent)
            report.merges += len(srcs)
            status[index] = STEP_DONE
            if instrument is not None:
                self._emit_event(
                    "step", index=index, dst=step.slot, fan_in=len(srcs)
                )

    # -- wave merge path --------------------------------------------------

    def run_waves(self, steps: List[MergeStep], first_index: int) -> None:
        waves = plan_step_waves(steps, first_index, fuse=self.plan.fuse_fanin)
        for wave in waves:
            # a runtime can die mid-run (all workers crashed); remaining
            # waves continue on the legacy per-wave pool transparently
            if self._resident_active:
                self._wave_resident(wave)
            else:
                self._wave_legacy(wave)

    def _wave_legacy(self, wave: List[StepGroup]) -> None:
        tasks: List[Tuple[Any, List[Any], bool, bool]] = []
        for group in wave:
            payloads = [
                self.slots[src].emit(serialize=self.serialize)
                for src in group.srcs
            ]
            if group.builder is not None:
                tasks.append((group.builder, payloads, self.serialize, True))
            else:
                target = slot_value(self.slots[group.dst])
                tasks.append((target, payloads, self.serialize, False))
        merged = self.pool.map(_execute_group, tasks)
        for group, value in zip(wave, merged):
            self._finish_group(group, value)
        self.report.waves += 1
        self.report.groups += len(wave)
        self._emit_event("wave", groups=len(wave))

    def _finish_group(self, group: StepGroup, value: Any) -> None:
        if group.builder is not None:
            agent = wrap_slot(value)
            self._install(group.dst, agent)
        else:
            agent = self.slots[group.dst]
            set_slot_value(agent, value)
        if hasattr(agent, "merges_performed"):
            agent.merges_performed += len(group.srcs)
        if self.accounting:
            for src in group.srcs:
                self.report.covered[group.dst] |= self.report.covered[src]
            self._observe_size(agent)
        for index in group.indices:
            self.report.step_status[index] = STEP_DONE
        self.report.merges += len(group.srcs)

    # -- fault merge path -------------------------------------------------

    def _draw_crashes(self, candidates: Tuple[Hashable, ...]) -> None:
        stats = self.report.fault_stats
        for slot in candidates:
            if (
                slot in self.slots
                and slot not in self.report.crashed
                and slot not in self.plan.protected
                and self.faults.draw_crash()
            ):
                self.report.crashed.add(slot)
                stats.nodes_crashed += 1
                stats.crashed_nodes.append(slot)

    def _deliver_with_retries(
        self,
        src: Hashable,
        dst_agent: Optional[Any],
        builder: Optional[Callable[..., Any]],
        delivery_id: str,
    ) -> Tuple[bool, Optional[Any]]:
        """One delivery through the lossy fabric.

        Returns ``(landed, agent)`` — ``agent`` is the freshly seeded
        destination when ``builder`` consumed this delivery, else
        ``dst_agent`` unchanged.
        """
        stats = self.report.fault_stats
        src_agent = self.slots[src]
        for attempt in self.policy.attempts():
            stats.attempts += 1
            if attempt > 1:
                stats.retries += 1
                stats.backoff_seconds += self.policy.delay_before(attempt)
            payload = src_agent.emit(serialize=self.serialize)
            if self.faults.draw_loss():
                stats.messages_lost += 1
                continue
            if self.serialize and self.faults.draw_corruption():
                payload = self.faults.corrupt(payload)
                stats.corrupted_payloads += 1
            try:
                if dst_agent is None:
                    child = decode_summary(payload) if self.serialize else payload
                    dst_agent = wrap_slot(builder(child))
                    if self.ledger_factory is not None:
                        dst_agent.ledger = self.ledger_factory()
                        dst_agent.ledger.witness(delivery_id)
                else:
                    dst_agent.absorb(
                        payload, serialized=self.serialize, delivery_id=delivery_id
                    )
            except SerializationError:
                stats.corruption_detected += 1
                continue
            # a late retransmission can still arrive after the ACKed original
            if self.faults.draw_duplicate():
                stats.duplicates_delivered += 1
                dup = src_agent.emit(serialize=self.serialize)
                if dst_agent.absorb(
                    dup, serialized=self.serialize, delivery_id=delivery_id
                ):
                    stats.duplicates_merged += 1
                else:
                    stats.duplicates_suppressed += 1
            return True, dst_agent
        stats.deliveries_failed += 1
        return False, dst_agent

    def run_faulty(self, steps: List[MergeStep], first_index: int) -> None:
        for offset, step in enumerate(steps):
            index = first_index + offset
            dst = step.slot
            fresh = step.builder is not None
            agent = None if fresh else self.slots.get(dst)
            delivered: List[Hashable] = []
            attempted = False
            for src in step.srcs:
                if src not in self.slots:
                    continue  # lost upstream: no surviving route
                self._draw_crashes((src, dst))
                if src in self.report.crashed or dst in self.report.crashed:
                    continue
                attempted = True
                delivery_id = f"step{index}:{src}->{dst}"
                landed, agent = self._deliver_with_retries(
                    src, agent, step.builder, delivery_id
                )
                if landed:
                    delivered.append(src)
                    if not fresh:
                        self.report.covered[dst] |= self.report.covered[src]
                        self.report.merges += 1
                        self._observe_size(agent)
            if fresh:
                if agent is not None and len(delivered) == len(step.srcs):
                    # exactly-once or nothing: a partially delivered
                    # roll-up is discarded so dependents fall back to
                    # the children instead of serving partial data
                    self._install(dst, agent)
                    for src in delivered:
                        self.report.covered[dst] |= self.report.covered[src]
                    self.report.merges += len(delivered)
                    self._observe_size(agent)
                    self.report.step_status[index] = STEP_DONE
                else:
                    self.report.step_status[index] = (
                        STEP_FAILED if attempted else STEP_SKIPPED
                    )
            elif len(delivered) == len(step.srcs):
                self.report.step_status[index] = STEP_DONE
            else:
                self.report.step_status[index] = (
                    STEP_FAILED if attempted else STEP_SKIPPED
                )
            self._emit_event(
                "step", index=index, dst=dst, fan_in=len(step.srcs),
                delivered=len(delivered),
            )

    # -- driver -----------------------------------------------------------

    def execute(self) -> ExecutionResult:
        steps = self.plan.steps
        merge_index = 0
        if self.use_waves:
            self._maybe_start_runtime()
        try:
            i = 0
            while i < len(steps):
                op = steps[i].op
                j = i
                while j < len(steps) and steps[j].op == op:
                    j += 1
                run = list(steps[i:j])
                if op == "build":
                    if self._resident_active:
                        self.run_builds_resident(run)
                    else:
                        self.run_builds(run)
                elif op == "merge":
                    t0 = time.perf_counter()
                    if self.faults is not None:
                        self.run_faulty(run, merge_index)
                    elif self.use_waves:
                        self.run_waves(run, merge_index)
                    else:
                        self.run_scalar(run, merge_index)
                    merge_index += len(run)
                    self.report.merge_seconds += time.perf_counter() - t0
                else:
                    for step in run:
                        if self._runtime is not None:
                            self._materialize(step.slot)
                        if step.slot in self.slots:
                            self.outputs[step.slot] = slot_value(
                                self.slots[step.slot]
                            )
                i = j
            if self._runtime is not None:
                self._deactivate_runtime()
        finally:
            if self._runtime is not None:  # exception path: just release
                self.report.runtime_stats = dict(self._runtime.stats)
                self._runtime.close()
                self._runtime = None
        if self.pool is not None:
            events = self.pool.degradation_events
            self.report.degradation_events = list(events)
            self.report.degraded_to_serial = self.pool.max_workers > 1 and (
                len(events) > self._events_baseline or self.pool.degraded
            )
        if self.accounting:
            self.report.bytes_shipped = sum(
                getattr(a, "bytes_sent", 0) for a in self.slots.values()
            )
            self.report.bytes_retransmitted = sum(
                getattr(a, "bytes_retransmitted", 0) for a in self.slots.values()
            )
        self._emit_event(
            "done", merges=self.report.merges, waves=self.report.waves,
            max_size=self.report.max_size,
        )
        return ExecutionResult(
            outputs=self.outputs, report=self.report, agents=self.slots
        )


def execute_plan(
    plan: MergePlan,
    inputs: Mapping[Hashable, Any],
    *,
    executor: ExecutorLike = None,
    serialize: bool = False,
    duplicate_probability: float = 0.0,
    rng: RngLike = None,
    fault_model: Optional[FaultModel] = None,
    retry_policy: Optional[RetryPolicy] = None,
    ledger_factory: Optional[Callable[[], Any]] = None,
    instrument: Optional[Callable[[str, Dict[str, Any]], None]] = None,
    accounting: bool = True,
) -> ExecutionResult:
    """Execute ``plan`` over ``inputs`` and return outputs plus report.

    ``inputs`` maps slot names to values (summaries, store segments) or
    ready-made agents (the simulator's ``Node`` objects).  ``executor``
    opts into parallel dispatch (builds always; merges only for
    ``groupable`` fault-free plans).  ``serialize`` round-trips every
    emitted summary through the wire codec.  ``duplicate_probability``
    is the legacy bare at-least-once knob (each delivery is, with that
    probability, merged twice); ``rng`` seeds its draws.

    ``fault_model`` switches the merge phase to the retry runtime:
    deliveries retry per ``retry_policy`` against injected loss,
    corruption, crashes and duplicates; when ``ledger_factory`` is also
    given, every destination gets a merge ledger and redeliveries merge
    exactly once.  The report's ``covered``/``crashed``/``fault_stats``
    then carry the degradation accounting.

    ``instrument`` is called as ``instrument(event, info)`` at build
    waves, merge waves or steps, and completion — a hook for benchmarks
    and progress displays, never for semantics.

    ``accounting=False`` skips the per-step size and coverage tracking
    (``report.max_size`` stays 0, ``report.covered`` stays empty) for
    hot paths that discard the report — ``merge_all`` folds, fault-free
    compactions.  It is forced back on whenever ``fault_model`` is
    given, because the fault runtime's degradation accounting *is* the
    product there.
    """
    if not 0.0 <= duplicate_probability <= 1.0:
        raise ParameterError(
            f"duplicate_probability must be in [0, 1], got {duplicate_probability!r}"
        )
    if fault_model is not None and duplicate_probability:
        raise ParameterError(
            "pass duplicates via FaultModel(duplicate=...) when fault_model "
            "is given; duplicate_probability is the legacy knob"
        )
    if fault_model is not None and fault_model.corruption and not serialize:
        raise ParameterError(
            "corruption injection garbles wire payloads; it requires serialize=True"
        )
    plan.validate(inputs.keys())
    run = _Run(
        plan,
        inputs,
        resolve_executor(executor),
        serialize,
        duplicate_probability,
        rng,
        fault_model,
        retry_policy,
        ledger_factory,
        instrument,
        accounting,
    )
    return run.execute()
