"""``execute_plan``: the one runner every merge in the library goes through.

The paper's mergeability guarantee is about *what* gets merged; this
module owns *how*, once, for every call site: ``merge_all`` folds, the
distributed simulator's schedules, and the store's dyadic compactions
all compile to :class:`~repro.engine.plan.MergePlan` and run here.
Three execution regimes cover the plan space:

- **scalar** — steps run one by one in plan order, each source emitted
  and absorbed by its destination (the legacy step-by-step semantics;
  also carries the bare ``duplicate_probability`` at-least-once knob);
- **wave** — with a parallel executor and a ``groupable`` plan,
  consecutive merges are grouped into k-way fan-ins, packed into
  slot-disjoint waves (:mod:`repro.engine.waves`), and dispatched
  through :class:`~repro.core.parallel.ParallelExecutor`; emission and
  counter updates stay in the calling process so worker forks never
  double-account;
- **fault** — with a :class:`~repro.engine.faults.FaultModel`, every
  delivery runs a retry-with-backoff loop against injected loss,
  corruption, crashes and duplicates, parents dedup via per-slot
  :class:`~repro.engine.faults.MergeLedger` (exactly-once merges), and
  the report carries coverage/degradation accounting.

Build steps fan out across the executor in all three regimes (leaf
ingestion is embarrassingly parallel even on an unreliable fabric);
only the merge phase is forced scalar under faults, because retries are
inherently sequential.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Mapping, Optional, Set, Tuple

from ..core.codecs import decode_summary
from ..core.exceptions import ParameterError, SerializationError
from ..core.parallel import ExecutorLike, ParallelExecutor, resolve_executor
from ..core.rng import RngLike, resolve_rng
from .agents import (
    is_segment,
    merge_segment_into,
    set_slot_value,
    slot_size,
    slot_value,
    wrap_slot,
)
from .faults import FaultModel, FaultStats, RetryPolicy
from .plan import MergePlan, MergeStep
from .waves import StepGroup, plan_step_waves

__all__ = ["ExecutionReport", "ExecutionResult", "execute_plan"]

#: per-merge-step outcomes recorded in :attr:`ExecutionReport.step_status`
STEP_DONE = "done"
STEP_FAILED = "failed"
STEP_SKIPPED = "skipped"


@dataclass
class ExecutionReport:
    """What one :func:`execute_plan` run actually did."""

    plan: str
    #: fan-in actually delivered (source slots merged into destinations)
    merges: int = 0
    #: build steps executed
    builds: int = 0
    #: parallel rounds: consecutive builds dispatched together
    build_waves: int = 0
    #: merge waves dispatched on the wave path (0 on scalar/fault paths)
    waves: int = 0
    #: k-way groups executed on the wave path
    groups: int = 0
    #: largest summary size observed at any slot during the run
    max_size: int = 0
    #: serialized payload bytes shipped (each generation counted once)
    bytes_shipped: int = 0
    #: bytes re-sent for already-serialized generations (retry overhead)
    bytes_retransmitted: int = 0
    #: merge steps delivered twice by the legacy at-least-once knob
    duplicated_deliveries: int = 0
    build_seconds: float = 0.0
    merge_seconds: float = 0.0
    #: merge-step index -> "done" | "failed" | "skipped"
    step_status: Dict[int, str] = field(default_factory=dict)
    #: slot -> set of slots whose data that slot's value now covers
    covered: Dict[Hashable, Set[Hashable]] = field(default_factory=dict)
    #: slots lost to crash injection
    crashed: Set[Hashable] = field(default_factory=set)
    #: fault-injection accounting (None for fault-free runs)
    fault_stats: Optional[FaultStats] = None

    @property
    def steps_done(self) -> int:
        return sum(1 for s in self.step_status.values() if s == STEP_DONE)

    @property
    def steps_failed(self) -> int:
        return sum(1 for s in self.step_status.values() if s == STEP_FAILED)

    @property
    def steps_skipped(self) -> int:
        return sum(1 for s in self.step_status.values() if s == STEP_SKIPPED)


@dataclass
class ExecutionResult:
    """Outputs plus report plus the live agents of one plan execution.

    ``outputs`` maps every *reachable* emitted slot to its final value;
    slots lost to faults (a roll-up whose every retry failed) are
    absent, so callers can distinguish "empty" from "gone".
    """

    outputs: Dict[Hashable, Any]
    report: ExecutionReport
    agents: Dict[Hashable, Any]

    @property
    def value(self) -> Any:
        """The single output of a one-output plan."""
        if len(self.outputs) != 1:
            raise ParameterError(
                f"plan produced {len(self.outputs)} outputs; use .outputs"
            )
        return next(iter(self.outputs.values()))


# ---------------------------------------------------------------------------
# Worker functions (run inside ParallelExecutor forks — must not touch
# agent counters, which live in the calling process)
# ---------------------------------------------------------------------------


def _run_build(builder: Callable[..., Any], agent: Any) -> Any:
    return builder(agent) if agent is not None else builder()


def _combine_values(target: Any, children: List[Any]) -> Any:
    if is_segment(target):
        return merge_segment_into(target, children)
    if not children:
        return target
    if len(children) == 1:
        return target.merge(children[0])
    return target.merge_many(children)


def _execute_group(
    target: Any, payloads: List[Any], serialized: bool, fresh: bool
) -> Any:
    """One k-way group: decode children, then merge (or seed-and-merge)."""
    children = [decode_summary(p) if serialized else p for p in payloads]
    if fresh:
        seed = target(children[0])
        if is_segment(seed):
            # merged_segment semantics: one member-wise merge_many over
            # the remaining parts, issued even when the group had one part
            return merge_segment_into(seed, children[1:])
        return _combine_values(seed, children[1:])
    return _combine_values(target, children)


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------


class _Run:
    """Mutable state of one plan execution."""

    def __init__(
        self,
        plan: MergePlan,
        inputs: Mapping[Hashable, Any],
        pool: Optional[ParallelExecutor],
        serialize: bool,
        duplicate_probability: float,
        rng: RngLike,
        fault_model: Optional[FaultModel],
        retry_policy: Optional[RetryPolicy],
        ledger_factory: Optional[Callable[[], Any]],
        instrument: Optional[Callable[[str, Dict[str, Any]], None]],
        accounting: bool,
    ) -> None:
        self.plan = plan
        self.pool = pool
        self.serialize = serialize
        self.duplicate_probability = duplicate_probability
        # entropy is only drawn when the duplicate knob is actually live
        self.dup_rng = resolve_rng(rng) if duplicate_probability else None
        self.faults = fault_model
        self.policy = retry_policy or RetryPolicy()
        self.ledger_factory = ledger_factory
        self.instrument = instrument
        # the fault runtime's skip/coverage logic reads these structures
        self.accounting = accounting or fault_model is not None
        self.report = ExecutionReport(plan=plan.name)
        if fault_model is not None:
            self.report.fault_stats = FaultStats()
        self.slots: Dict[Hashable, Any] = {}
        self.outputs: Dict[Hashable, Any] = {}
        for slot, value in inputs.items():
            self._install(slot, wrap_slot(value))
        #: wave path applies only to fault-free, knob-free groupable runs
        self.use_waves = (
            pool is not None
            and plan.groupable
            and fault_model is None
            and not duplicate_probability
        )

    # -- bookkeeping ------------------------------------------------------

    def _install(self, slot: Hashable, agent: Any) -> None:
        if (
            self.faults is not None
            and self.ledger_factory is not None
            and getattr(agent, "ledger", None) is None
        ):
            agent.ledger = self.ledger_factory()
        self.slots[slot] = agent
        if self.accounting:
            self.report.covered.setdefault(slot, {slot})
            self._observe_size(agent)

    def _observe_size(self, agent: Any) -> None:
        self.report.max_size = max(self.report.max_size, slot_size(agent))

    def _emit_event(self, event: str, **info: Any) -> None:
        if self.instrument is not None:
            self.instrument(event, info)

    # -- build phase ------------------------------------------------------

    def run_builds(self, steps: List[MergeStep]) -> None:
        t0 = time.perf_counter()
        agents = [self.slots.get(step.slot) for step in steps]
        tasks = [(step.builder, agent) for step, agent in zip(steps, agents)]
        if self.pool is not None:
            values = self.pool.map(_run_build, tasks)
        else:
            values = [_run_build(builder, agent) for builder, agent in tasks]
        for step, agent, value in zip(steps, agents, values):
            if agent is None:
                self._install(step.slot, wrap_slot(value))
            elif self.accounting:
                set_slot_value(agent, value)
                self.report.covered.setdefault(step.slot, {step.slot})
                self._observe_size(agent)
            else:
                set_slot_value(agent, value)
        self.report.builds += len(steps)
        self.report.build_waves += 1
        self.report.build_seconds += time.perf_counter() - t0
        self._emit_event("build_wave", builds=len(steps))

    # -- scalar merge path ------------------------------------------------

    def run_scalar(self, steps: List[MergeStep], first_index: int) -> None:
        # hot path: merge_all and compaction run every step through this
        # loop, so frequently-read attributes are hoisted to locals
        slots = self.slots
        serialize = self.serialize
        dup_p = self.duplicate_probability
        accounting = self.accounting
        report = self.report
        status = report.step_status
        instrument = self.instrument
        for offset, step in enumerate(steps):
            index = first_index + offset
            srcs = step.srcs
            missing = False
            for src in srcs:
                if src not in slots:
                    missing = True
                    break
            if missing:
                status[index] = STEP_SKIPPED
                continue
            if step.builder is None:
                agent = slots[step.slot]
                if len(srcs) == 1:
                    agent.absorb(
                        slots[srcs[0]].emit(serialize=serialize),
                        serialized=serialize,
                    )
                else:
                    agent.absorb_many(
                        [slots[src].emit(serialize=serialize) for src in srcs],
                        serialized=serialize,
                    )
            else:
                payloads = [slots[src].emit(serialize=serialize) for src in srcs]
                first = decode_summary(payloads[0]) if serialize else payloads[0]
                agent = wrap_slot(step.builder(first))
                agent.absorb_many(payloads[1:], serialized=serialize)
                self._install(step.slot, agent)
            if dup_p:
                for src in srcs:
                    if float(self.dup_rng.random()) < dup_p:
                        dup = slots[src].emit(serialize=serialize)
                        agent.absorb(dup, serialized=serialize)
                        report.duplicated_deliveries += 1
            if accounting:
                for src in srcs:
                    report.covered[step.slot] |= report.covered[src]
                self._observe_size(agent)
            report.merges += len(srcs)
            status[index] = STEP_DONE
            if instrument is not None:
                self._emit_event(
                    "step", index=index, dst=step.slot, fan_in=len(srcs)
                )

    # -- wave merge path --------------------------------------------------

    def run_waves(self, steps: List[MergeStep], first_index: int) -> None:
        waves = plan_step_waves(steps, first_index, fuse=self.plan.fuse_fanin)
        for wave in waves:
            tasks: List[Tuple[Any, List[Any], bool, bool]] = []
            for group in wave:
                payloads = [
                    self.slots[src].emit(serialize=self.serialize)
                    for src in group.srcs
                ]
                if group.builder is not None:
                    tasks.append((group.builder, payloads, self.serialize, True))
                else:
                    target = slot_value(self.slots[group.dst])
                    tasks.append((target, payloads, self.serialize, False))
            merged = self.pool.map(_execute_group, tasks)
            for group, value in zip(wave, merged):
                self._finish_group(group, value)
            self.report.waves += 1
            self.report.groups += len(wave)
            self._emit_event("wave", groups=len(wave))

    def _finish_group(self, group: StepGroup, value: Any) -> None:
        if group.builder is not None:
            agent = wrap_slot(value)
            self._install(group.dst, agent)
        else:
            agent = self.slots[group.dst]
            set_slot_value(agent, value)
        if hasattr(agent, "merges_performed"):
            agent.merges_performed += len(group.srcs)
        if self.accounting:
            for src in group.srcs:
                self.report.covered[group.dst] |= self.report.covered[src]
            self._observe_size(agent)
        for index in group.indices:
            self.report.step_status[index] = STEP_DONE
        self.report.merges += len(group.srcs)

    # -- fault merge path -------------------------------------------------

    def _draw_crashes(self, candidates: Tuple[Hashable, ...]) -> None:
        stats = self.report.fault_stats
        for slot in candidates:
            if (
                slot in self.slots
                and slot not in self.report.crashed
                and slot not in self.plan.protected
                and self.faults.draw_crash()
            ):
                self.report.crashed.add(slot)
                stats.nodes_crashed += 1
                stats.crashed_nodes.append(slot)

    def _deliver_with_retries(
        self,
        src: Hashable,
        dst_agent: Optional[Any],
        builder: Optional[Callable[..., Any]],
        delivery_id: str,
    ) -> Tuple[bool, Optional[Any]]:
        """One delivery through the lossy fabric.

        Returns ``(landed, agent)`` — ``agent`` is the freshly seeded
        destination when ``builder`` consumed this delivery, else
        ``dst_agent`` unchanged.
        """
        stats = self.report.fault_stats
        src_agent = self.slots[src]
        for attempt in self.policy.attempts():
            stats.attempts += 1
            if attempt > 1:
                stats.retries += 1
                stats.backoff_seconds += self.policy.delay_before(attempt)
            payload = src_agent.emit(serialize=self.serialize)
            if self.faults.draw_loss():
                stats.messages_lost += 1
                continue
            if self.serialize and self.faults.draw_corruption():
                payload = self.faults.corrupt(payload)
                stats.corrupted_payloads += 1
            try:
                if dst_agent is None:
                    child = decode_summary(payload) if self.serialize else payload
                    dst_agent = wrap_slot(builder(child))
                    if self.ledger_factory is not None:
                        dst_agent.ledger = self.ledger_factory()
                        dst_agent.ledger.witness(delivery_id)
                else:
                    dst_agent.absorb(
                        payload, serialized=self.serialize, delivery_id=delivery_id
                    )
            except SerializationError:
                stats.corruption_detected += 1
                continue
            # a late retransmission can still arrive after the ACKed original
            if self.faults.draw_duplicate():
                stats.duplicates_delivered += 1
                dup = src_agent.emit(serialize=self.serialize)
                if dst_agent.absorb(
                    dup, serialized=self.serialize, delivery_id=delivery_id
                ):
                    stats.duplicates_merged += 1
                else:
                    stats.duplicates_suppressed += 1
            return True, dst_agent
        stats.deliveries_failed += 1
        return False, dst_agent

    def run_faulty(self, steps: List[MergeStep], first_index: int) -> None:
        for offset, step in enumerate(steps):
            index = first_index + offset
            dst = step.slot
            fresh = step.builder is not None
            agent = None if fresh else self.slots.get(dst)
            delivered: List[Hashable] = []
            attempted = False
            for src in step.srcs:
                if src not in self.slots:
                    continue  # lost upstream: no surviving route
                self._draw_crashes((src, dst))
                if src in self.report.crashed or dst in self.report.crashed:
                    continue
                attempted = True
                delivery_id = f"step{index}:{src}->{dst}"
                landed, agent = self._deliver_with_retries(
                    src, agent, step.builder, delivery_id
                )
                if landed:
                    delivered.append(src)
                    if not fresh:
                        self.report.covered[dst] |= self.report.covered[src]
                        self.report.merges += 1
                        self._observe_size(agent)
            if fresh:
                if agent is not None and len(delivered) == len(step.srcs):
                    # exactly-once or nothing: a partially delivered
                    # roll-up is discarded so dependents fall back to
                    # the children instead of serving partial data
                    self._install(dst, agent)
                    for src in delivered:
                        self.report.covered[dst] |= self.report.covered[src]
                    self.report.merges += len(delivered)
                    self._observe_size(agent)
                    self.report.step_status[index] = STEP_DONE
                else:
                    self.report.step_status[index] = (
                        STEP_FAILED if attempted else STEP_SKIPPED
                    )
            elif len(delivered) == len(step.srcs):
                self.report.step_status[index] = STEP_DONE
            else:
                self.report.step_status[index] = (
                    STEP_FAILED if attempted else STEP_SKIPPED
                )
            self._emit_event(
                "step", index=index, dst=dst, fan_in=len(step.srcs),
                delivered=len(delivered),
            )

    # -- driver -----------------------------------------------------------

    def execute(self) -> ExecutionResult:
        steps = self.plan.steps
        merge_index = 0
        i = 0
        while i < len(steps):
            op = steps[i].op
            j = i
            while j < len(steps) and steps[j].op == op:
                j += 1
            run = list(steps[i:j])
            if op == "build":
                self.run_builds(run)
            elif op == "merge":
                t0 = time.perf_counter()
                if self.faults is not None:
                    self.run_faulty(run, merge_index)
                elif self.use_waves:
                    self.run_waves(run, merge_index)
                else:
                    self.run_scalar(run, merge_index)
                merge_index += len(run)
                self.report.merge_seconds += time.perf_counter() - t0
            else:
                for step in run:
                    if step.slot in self.slots:
                        self.outputs[step.slot] = slot_value(self.slots[step.slot])
            i = j
        if self.accounting:
            self.report.bytes_shipped = sum(
                getattr(a, "bytes_sent", 0) for a in self.slots.values()
            )
            self.report.bytes_retransmitted = sum(
                getattr(a, "bytes_retransmitted", 0) for a in self.slots.values()
            )
        self._emit_event(
            "done", merges=self.report.merges, waves=self.report.waves,
            max_size=self.report.max_size,
        )
        return ExecutionResult(
            outputs=self.outputs, report=self.report, agents=self.slots
        )


def execute_plan(
    plan: MergePlan,
    inputs: Mapping[Hashable, Any],
    *,
    executor: ExecutorLike = None,
    serialize: bool = False,
    duplicate_probability: float = 0.0,
    rng: RngLike = None,
    fault_model: Optional[FaultModel] = None,
    retry_policy: Optional[RetryPolicy] = None,
    ledger_factory: Optional[Callable[[], Any]] = None,
    instrument: Optional[Callable[[str, Dict[str, Any]], None]] = None,
    accounting: bool = True,
) -> ExecutionResult:
    """Execute ``plan`` over ``inputs`` and return outputs plus report.

    ``inputs`` maps slot names to values (summaries, store segments) or
    ready-made agents (the simulator's ``Node`` objects).  ``executor``
    opts into parallel dispatch (builds always; merges only for
    ``groupable`` fault-free plans).  ``serialize`` round-trips every
    emitted summary through the wire codec.  ``duplicate_probability``
    is the legacy bare at-least-once knob (each delivery is, with that
    probability, merged twice); ``rng`` seeds its draws.

    ``fault_model`` switches the merge phase to the retry runtime:
    deliveries retry per ``retry_policy`` against injected loss,
    corruption, crashes and duplicates; when ``ledger_factory`` is also
    given, every destination gets a merge ledger and redeliveries merge
    exactly once.  The report's ``covered``/``crashed``/``fault_stats``
    then carry the degradation accounting.

    ``instrument`` is called as ``instrument(event, info)`` at build
    waves, merge waves or steps, and completion — a hook for benchmarks
    and progress displays, never for semantics.

    ``accounting=False`` skips the per-step size and coverage tracking
    (``report.max_size`` stays 0, ``report.covered`` stays empty) for
    hot paths that discard the report — ``merge_all`` folds, fault-free
    compactions.  It is forced back on whenever ``fault_model`` is
    given, because the fault runtime's degradation accounting *is* the
    product there.
    """
    if not 0.0 <= duplicate_probability <= 1.0:
        raise ParameterError(
            f"duplicate_probability must be in [0, 1], got {duplicate_probability!r}"
        )
    if fault_model is not None and duplicate_probability:
        raise ParameterError(
            "pass duplicates via FaultModel(duplicate=...) when fault_model "
            "is given; duplicate_probability is the legacy knob"
        )
    if fault_model is not None and fault_model.corruption and not serialize:
        raise ParameterError(
            "corruption injection garbles wire payloads; it requires serialize=True"
        )
    plan.validate(inputs.keys())
    run = _Run(
        plan,
        inputs,
        resolve_executor(executor),
        serialize,
        duplicate_probability,
        rng,
        fault_model,
        retry_policy,
        ledger_factory,
        instrument,
        accounting,
    )
    return run.execute()
