"""Wave planning: pack independent merges into concurrent rounds.

Given an ordered list of merge operations, two transformations prepare
them for parallel dispatch:

1. **Grouping** — consecutive operations sharing a destination collapse
   into one ``(dst, [srcs])`` group, a single k-way ``merge_many``
   fan-in (one combine/compaction pass for the whole group).
2. **Wave packing** — groups are packed greedily, in order, into
   *waves*: a wave takes groups until one touches a slot an earlier
   group in the wave already used, at which point the wave is flushed.
   Groups within a wave touch disjoint slot sets, so they commute and
   may run concurrently; groups in later waves see every earlier wave's
   effects, preserving the sequential semantics of the input order.

:func:`plan_merge_waves` is the historical public entry point over
``(dst, src)`` schedule pairs (re-exported by
:mod:`repro.distributed.simulator`); :func:`plan_step_waves` is the
engine-internal variant over :class:`~repro.engine.plan.MergeStep` runs,
which additionally understands multi-source steps, copy-on-write
destinations, and plans that forbid fan-in fusion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Set, Tuple

from .plan import MergeStep

__all__ = ["plan_merge_waves", "plan_step_waves", "assign_groups", "StepGroup"]


def plan_merge_waves(
    steps: Sequence[Tuple[int, int]],
) -> List[List[Tuple[int, List[int]]]]:
    """Group schedule steps into parallel waves of k-way fan-ins.

    Consecutive steps sharing a destination collapse into one
    ``(dst, [srcs])`` group — a single ``merge_many`` fan-in.  Groups
    are then packed greedily into *waves*: a wave takes groups in
    schedule order until a group touches a node some earlier group in
    the wave already used, at which point the wave is flushed.  Groups
    within a wave touch disjoint node sets, so they commute and may run
    concurrently; groups in later waves see every earlier wave's
    effects, preserving the schedule's sequential semantics.
    """
    groups: List[Tuple[int, List[int]]] = []
    for dst, src in steps:
        if groups and groups[-1][0] == dst:
            groups[-1][1].append(src)
        else:
            groups.append((dst, [src]))
    waves: List[List[Tuple[int, List[int]]]] = []
    wave: List[Tuple[int, List[int]]] = []
    used: Set[int] = set()
    for dst, srcs in groups:
        touched = {dst, *srcs}
        if wave and (touched & used):
            waves.append(wave)
            wave, used = [], set()
        wave.append((dst, srcs))
        used |= touched
    if wave:
        waves.append(wave)
    return waves


@dataclass
class StepGroup:
    """One k-way fan-in of the wave runtime: ``srcs`` merged into ``dst``.

    ``indices`` are the plan-wide merge-step indices fused into the
    group (one per source, aligned), so the executor can report per-step
    status even after fusion.  ``builder`` is non-None for copy-on-write
    destinations (the first source is copied through it).
    """

    dst: Hashable
    srcs: List[Hashable] = field(default_factory=list)
    indices: List[int] = field(default_factory=list)
    builder: object = None

    @property
    def touched(self) -> Set[Hashable]:
        return {self.dst, *self.srcs}


def plan_step_waves(
    steps: Sequence[MergeStep],
    first_index: int = 0,
    fuse: bool = True,
) -> List[List[StepGroup]]:
    """Pack a run of merge steps into waves of disjoint :class:`StepGroup`.

    ``first_index`` is the plan-wide index of ``steps[0]`` (used to
    label groups for status reporting).  With ``fuse=True`` consecutive
    in-place single-source steps sharing a destination collapse into one
    k-way group, exactly like :func:`plan_merge_waves`; ``fuse=False``
    keeps every step its own group — required by plans whose
    step-by-step merge shape is the contract (the balanced-tree fold
    merges pairwise per level, never k-way).  Copy-on-write steps
    (``builder`` set) and multi-source steps never fuse with neighbours.
    """
    groups: List[StepGroup] = []
    for offset, step in enumerate(steps):
        index = first_index + offset
        fusable = (
            fuse
            and step.builder is None
            and len(step.srcs) == 1
            and groups
            and groups[-1].builder is None
            and groups[-1].dst == step.slot
        )
        if fusable:
            groups[-1].srcs.append(step.srcs[0])
            groups[-1].indices.append(index)
        else:
            groups.append(
                StepGroup(
                    dst=step.slot,
                    srcs=list(step.srcs),
                    indices=[index] * len(step.srcs) or [index],
                    builder=step.builder,
                )
            )
    waves: List[List[StepGroup]] = []
    wave: List[StepGroup] = []
    used: Set[Hashable] = set()
    for group in groups:
        if wave and (group.touched & used):
            waves.append(wave)
            wave, used = [], set()
        wave.append(group)
        used |= group.touched
    if wave:
        waves.append(wave)
    return waves


def assign_groups(
    groups: Sequence[StepGroup],
    workers: Sequence[int],
    freshness: Callable[[Hashable], Optional[Set[int]]],
) -> Dict[int, List[StepGroup]]:
    """Assign one wave's groups to persistent workers, by slot affinity.

    ``freshness(slot)`` returns the set of worker ids currently holding
    the slot's latest value, or ``None`` when every worker does (the
    fork-time snapshot).  Each group goes to the worker already holding
    the most of the group's touched slots — those need no state sync at
    all — with ties broken toward the least-loaded, then lowest-id,
    worker.  The result is deterministic for a given wave and fleet,
    which keeps runs reproducible (assignment never affects *values*,
    only where they are computed, but determinism keeps the dispatch
    accounting stable too).
    """
    assignments: Dict[int, List[StepGroup]] = {w: [] for w in workers}
    loads: Dict[int, int] = {w: 0 for w in workers}
    for group in groups:
        best = None
        best_key = None
        for w in workers:
            overlap = 0
            for slot in group.touched:
                fresh = freshness(slot)
                if fresh is None or w in fresh:
                    overlap += 1
            key = (overlap, -loads[w], -w)
            if best_key is None or key > best_key:
                best, best_key = w, key
        assignments[best].append(group)
        loads[best] += max(1, len(group.srcs))
    return assignments
