"""Slot agents: the uniform participant protocol the executor speaks.

:func:`~repro.engine.execute_plan` never merges values directly — every
slot is held by an *agent* exposing the protocol the distributed
:class:`~repro.distributed.node.Node` pioneered:

- ``emit(serialize)`` — ship the slot's value (optionally through the
  wire codec, with per-generation payload caching so retransmissions
  charge ``bytes_retransmitted`` instead of re-serializing);
- ``absorb(payload, serialized, delivery_id)`` / ``absorb_many(...)`` —
  merge one child or a k-way fan-in, deduplicating via the optional
  :class:`~repro.engine.faults.MergeLedger`;
- ``merges_performed`` / ``bytes_sent`` / ``bytes_retransmitted`` —
  the counters the execution report aggregates.

:func:`wrap_slot` adapts whatever the caller passed as an input:
anything already agent-shaped (a ``Node``) passes through; a
:class:`~repro.core.base.Summary` gets a :class:`SummarySlot`; a store
segment (duck-typed on ``members``/``segment_id``, so this module never
imports :mod:`repro.store`) gets a :class:`SegmentSlot` whose merges
mirror :func:`repro.store.segment.merged_segment` member for member.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from ..core.base import Summary
from ..core.codecs import DEFAULT_CODEC, decode_summary, encode_summary
from ..core.exceptions import ParameterError
from .faults import MergeLedger

__all__ = [
    "SummarySlot",
    "SegmentSlot",
    "wrap_slot",
    "slot_value",
    "set_slot_value",
    "slot_size",
    "is_segment",
]


def is_segment(value: Any) -> bool:
    """Duck-typed store-segment check (no :mod:`repro.store` import)."""
    return hasattr(value, "members") and hasattr(value, "segment_id")


class SummarySlot:
    """Agent wrapping a bare :class:`~repro.core.base.Summary`.

    Mirrors ``Node``'s emit/absorb bookkeeping (payload cache keyed on
    the merge generation, bytes split into payload vs retransmission,
    ledger dedup) minus the shard/build machinery — a fold input has no
    data of its own to ingest.
    """

    __slots__ = (
        "summary",
        "codec",
        "ledger",
        "bytes_sent",
        "bytes_retransmitted",
        "merges_performed",
        "duplicates_ignored",
        "_payload_cache",
    )

    def __init__(
        self,
        summary: Summary,
        codec: str = DEFAULT_CODEC,
        ledger: Optional[MergeLedger] = None,
    ) -> None:
        self.summary = summary
        self.codec = codec
        self.ledger = ledger
        self.bytes_sent = 0
        self.bytes_retransmitted = 0
        self.merges_performed = 0
        self.duplicates_ignored = 0
        self._payload_cache: Optional[Tuple[int, Any]] = None

    @property
    def value(self) -> Summary:
        return self.summary

    def set_value(self, value: Summary) -> None:
        self.summary = value

    def emit(self, serialize: bool = True) -> Any:
        if not serialize:
            return self.summary
        generation = self.merges_performed
        cached = self._payload_cache
        if cached is not None and cached[0] == generation:
            self.bytes_retransmitted += len(cached[1])
            return cached[1]
        payload = encode_summary(self.summary, self.codec)
        self._payload_cache = (generation, payload)
        self.bytes_sent += len(payload)
        return payload

    def absorb(
        self,
        payload: Any,
        serialized: bool = True,
        delivery_id: Optional[str] = None,
    ) -> bool:
        child = decode_summary(payload) if serialized else payload
        if delivery_id is not None and self.ledger is not None:
            if delivery_id in self.ledger:
                self.duplicates_ignored += 1
                return False
        self.summary.merge(child)
        self.merges_performed += 1
        if delivery_id is not None and self.ledger is not None:
            self.ledger.witness(delivery_id)
        return True

    def absorb_many(
        self,
        payloads: Sequence[Any],
        serialized: bool = True,
        delivery_ids: Optional[Sequence[str]] = None,
    ) -> int:
        if delivery_ids is None or self.ledger is None:
            # fast path: no dedup bookkeeping to thread through
            children = (
                [decode_summary(p) for p in payloads]
                if serialized
                else list(payloads)
            )
            if children:
                self.summary.merge_many(children)
                self.merges_performed += len(children)
            return len(children)
        children: List[Summary] = []
        fresh_ids: List[str] = []
        for i, payload in enumerate(payloads):
            child = decode_summary(payload) if serialized else payload
            delivery_id = delivery_ids[i]
            if delivery_id is not None:
                if delivery_id in self.ledger:
                    self.duplicates_ignored += 1
                    continue
                fresh_ids.append(delivery_id)
            children.append(child)
        if children:
            self.summary.merge_many(children)
            self.merges_performed += len(children)
        for delivery_id in fresh_ids:
            self.ledger.witness(delivery_id)
        return len(children)


class SegmentSlot:
    """Agent wrapping a store segment (one summary per member).

    Every merge goes member-wise through ``merge_many`` — including
    single-child fan-ins — because that is exactly what
    :func:`repro.store.segment.merged_segment` does, and compaction
    results must stay byte-identical to it.  Segments never cross the
    wire inside a compaction, so serialized emission is a usage error.
    """

    __slots__ = (
        "segment",
        "ledger",
        "bytes_sent",
        "bytes_retransmitted",
        "merges_performed",
        "duplicates_ignored",
    )

    def __init__(self, segment: Any, ledger: Optional[MergeLedger] = None) -> None:
        self.segment = segment
        self.ledger = ledger
        self.bytes_sent = 0
        self.bytes_retransmitted = 0
        self.merges_performed = 0
        self.duplicates_ignored = 0

    @property
    def value(self) -> Any:
        return self.segment

    def set_value(self, value: Any) -> None:
        self.segment = value

    def emit(self, serialize: bool = True) -> Any:
        if serialize:
            raise ParameterError(
                "segments do not serialize through the engine wire path; "
                "execute segment plans with serialize=False"
            )
        return self.segment

    def absorb(
        self,
        payload: Any,
        serialized: bool = False,
        delivery_id: Optional[str] = None,
    ) -> bool:
        if serialized:
            raise ParameterError("segment slots absorb segment objects only")
        if delivery_id is not None and self.ledger is not None:
            if delivery_id in self.ledger:
                self.duplicates_ignored += 1
                return False
        merge_segment_into(self.segment, [payload])
        self.merges_performed += 1
        if delivery_id is not None and self.ledger is not None:
            self.ledger.witness(delivery_id)
        return True

    def absorb_many(
        self,
        payloads: Sequence[Any],
        serialized: bool = False,
        delivery_ids: Optional[Sequence[str]] = None,
    ) -> int:
        if serialized:
            raise ParameterError("segment slots absorb segment objects only")
        if delivery_ids is None or self.ledger is None:
            children = list(payloads)
            fresh_ids: List[str] = []
        else:
            children = []
            fresh_ids = []
            for i, payload in enumerate(payloads):
                delivery_id = delivery_ids[i]
                if delivery_id is not None:
                    if delivery_id in self.ledger:
                        self.duplicates_ignored += 1
                        continue
                    fresh_ids.append(delivery_id)
                children.append(payload)
        # merged_segment calls merge_many(parts[1:]) unconditionally, so a
        # seeded roll-up with no remaining parts still makes the (empty)
        # member-wise merge_many calls — keep that byte-for-byte
        merge_segment_into(self.segment, children)
        self.merges_performed += len(children)
        for delivery_id in fresh_ids:
            self.ledger.witness(delivery_id)
        return len(children)


def merge_segment_into(segment: Any, parts: Sequence[Any]) -> Any:
    """K-way merge ``parts`` into ``segment``, member for member.

    One ``merge_many`` per member for the whole group, mirroring
    :func:`repro.store.segment.merged_segment` (which also issues the
    call for empty groups — some summaries normalize state on any
    merge pass, and roll-ups must not depend on group size).
    """
    for name in segment.members:
        segment.members[name].merge_many([p.members[name] for p in parts])
    segment.count += sum(p.count for p in parts)
    return segment


def wrap_slot(value: Any) -> Any:
    """Adapt an input value to the agent protocol.

    Agent-shaped objects (``emit`` + ``absorb``) pass through — this is
    how the simulator's ``Node`` list plugs in with its shard/byte
    bookkeeping intact.
    """
    if isinstance(value, Summary):  # the common case, checked first
        return SummarySlot(value)
    if hasattr(value, "emit") and hasattr(value, "absorb"):
        return value
    if is_segment(value):
        return SegmentSlot(value)
    if hasattr(value, "merge") and hasattr(value, "merge_many"):
        return SummarySlot(value)
    raise ParameterError(
        f"cannot execute over slot value of type {type(value).__name__}: "
        "expected a Summary, a store segment, or an agent with emit/absorb"
    )


def slot_value(agent: Any) -> Any:
    """The value currently held by an agent (``None`` before build)."""
    if isinstance(agent, (SummarySlot, SegmentSlot)):
        return agent.value
    return agent.summary


def set_slot_value(agent: Any, value: Any) -> None:
    """Install a (worker-produced) value into an agent."""
    if isinstance(agent, (SummarySlot, SegmentSlot)):
        agent.set_value(value)
    else:
        agent.summary = value


def slot_size(agent: Any) -> int:
    """Summary size of a slot (summed over members for segments)."""
    value = slot_value(agent)
    if value is None:
        return 0
    if is_segment(value):
        return sum(member.size() for member in value.members.values())
    return value.size()
