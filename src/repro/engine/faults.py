"""Fault injection for distributed aggregation: loss, crash, dup, corruption.

The paper guarantees that merge *order* cannot degrade a mergeable
summary; a real deployment additionally faces an unreliable transport.
This module models the four classic failure modes of an aggregation
fabric, each with an independent probability drawn from one seeded RNG:

- **message loss** — an emitted summary never arrives (dropped packet,
  transient partition);
- **node crash** — a node dies and its accumulated subtree is gone;
- **duplicate delivery** — a retransmission arrives after the original
  was already merged (the at-least-once hazard);
- **payload corruption** — bits flip in transit; detected end-to-end by
  the CRC32 checksum in the wire envelope.

Retries upgrade loss to at-least-once delivery; the :class:`MergeLedger`
(delivery IDs witnessed at each parent) upgrades at-least-once delivery
to **exactly-once merge** semantics, which is what additive summaries
(MG, CountMin, quantiles) need — lattice summaries get it for free from
idempotence.  :class:`RetryPolicy` models the exponential-backoff loop;
delays are *accounted*, never slept, so simulations stay fast.

These primitives live in :mod:`repro.engine` because the merge engine's
:func:`~repro.engine.execute_plan` is the one place that runs the
retry/ledger loop — any compiled plan (a ``merge_all`` fold, a
simulator schedule, a store compaction) can be executed over the same
unreliable fabric.  :mod:`repro.distributed.faults` re-exports them for
backward compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Set

from ..core.exceptions import ParameterError
from ..core.rng import RngLike, resolve_rng

__all__ = [
    "FaultModel",
    "FaultStats",
    "MergeLedger",
    "RetryPolicy",
    "corrupt_payload",
]


def corrupt_payload(payload: str, rng) -> str:
    """Flip one digit of a wire payload to a different digit.

    Mutating a digit guarantees detection: it lands either in the state
    (checksum mismatch), in the checksum itself (mismatch), or in the
    format version (unsupported version) — every case surfaces as
    :class:`~repro.core.exceptions.SerializationError` at the receiver.
    """
    positions = [i for i, c in enumerate(payload) if c.isdigit()]
    if not positions:  # no digits to flip: truncate instead
        return payload[: max(1, len(payload) // 2)]
    i = int(positions[int(rng.integers(len(positions)))])
    old = int(payload[i])
    new = (old + 1 + int(rng.integers(9))) % 10  # never equals old
    return payload[:i] + str(new) + payload[i + 1 :]


@dataclass
class FaultModel:
    """Independent fault probabilities plus the RNG that drives them.

    Each ``draw_*`` method consumes randomness only when its probability
    is non-zero, so a model with a single active fault is reproducible
    regardless of the other knobs.
    """

    loss: float = 0.0
    crash: float = 0.0
    duplicate: float = 0.0
    corruption: float = 0.0
    #: probability, per merged delta, that the *coordinator* dies
    #: mid-epoch (continuous aggregation only; recovered via checkpoint)
    coordinator_crash: float = 0.0
    rng: RngLike = None

    def __post_init__(self) -> None:
        for name in ("loss", "crash", "duplicate", "corruption", "coordinator_crash"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ParameterError(f"{name} must be in [0, 1], got {value!r}")
        self._rng = resolve_rng(self.rng)

    def _draw(self, probability: float) -> bool:
        return probability > 0.0 and float(self._rng.random()) < probability

    def draw_loss(self) -> bool:
        return self._draw(self.loss)

    def draw_crash(self) -> bool:
        return self._draw(self.crash)

    def draw_duplicate(self) -> bool:
        return self._draw(self.duplicate)

    def draw_corruption(self) -> bool:
        return self._draw(self.corruption)

    def draw_coordinator_crash(self) -> bool:
        return self._draw(self.coordinator_crash)

    def corrupt(self, payload: str) -> str:
        """Corrupt ``payload`` using this model's RNG."""
        return corrupt_payload(payload, self._rng)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff retry loop for one summary delivery.

    Attempt 1 is immediate; attempt ``k`` waits
    ``min(max_delay, base_delay * factor**(k-2))``.  The simulator adds
    the waits to :attr:`FaultStats.backoff_seconds` instead of sleeping.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    factor: float = 2.0
    max_delay: float = 5.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ParameterError(
                f"max_attempts must be >= 1, got {self.max_attempts!r}"
            )
        if self.base_delay < 0:
            raise ParameterError(f"base_delay must be >= 0, got {self.base_delay!r}")
        if self.factor < 1.0:
            raise ParameterError(f"factor must be >= 1, got {self.factor!r}")

    def delay_before(self, attempt: int) -> float:
        """Backoff before the given 1-based attempt (0 for the first)."""
        if attempt <= 1:
            return 0.0
        return min(self.max_delay, self.base_delay * self.factor ** (attempt - 2))

    def attempts(self) -> Iterator[int]:
        return iter(range(1, self.max_attempts + 1))


class MergeLedger:
    """Delivery IDs already merged at one parent (exactly-once bookkeeping).

    A retransmitted summary carries the same delivery ID as the
    original; :meth:`witness` returns ``False`` for it and the parent
    skips the merge.  The ledger serializes alongside the coordinator
    summary in a checkpoint so dedup state survives recovery.
    """

    def __init__(self, ids: Iterable[str] = ()) -> None:
        self._seen: Set[str] = set(ids)

    def __contains__(self, delivery_id: str) -> bool:
        return delivery_id in self._seen

    def __len__(self) -> int:
        return len(self._seen)

    def witness(self, delivery_id: str) -> bool:
        """Record ``delivery_id``; return True iff it was new."""
        if delivery_id in self._seen:
            return False
        self._seen.add(delivery_id)
        return True

    def to_list(self) -> List[str]:
        return sorted(self._seen)

    @classmethod
    def from_list(cls, ids: Iterable[str]) -> "MergeLedger":
        return cls(ids)


@dataclass
class FaultStats:
    """What the fault injector actually did during one run."""

    attempts: int = 0
    retries: int = 0
    messages_lost: int = 0
    corrupted_payloads: int = 0
    corruption_detected: int = 0
    duplicates_delivered: int = 0
    #: duplicate actually merged twice (only possible with the ledger off)
    duplicates_merged: int = 0
    #: duplicate suppressed by the merge ledger
    duplicates_suppressed: int = 0
    #: deliveries abandoned after the retry budget ran out
    deliveries_failed: int = 0
    nodes_crashed: int = 0
    #: accounted (not slept) exponential-backoff time
    backoff_seconds: float = 0.0
    crashed_nodes: List[int] = field(default_factory=list)
