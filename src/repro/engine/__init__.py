"""The merge engine: one plan IR and one executor for every merge DAG.

The paper proves that mergeable summaries survive *arbitrary* merge
sequences; this package makes the sequence a first-class value.  A
:class:`MergePlan` (of :class:`MergeStep` build/merge/emit ops over
named slots) says *what* to merge; :func:`execute_plan` is the single
runner that decides *how* — scalar step-by-step, packed into parallel
waves of k-way fan-ins, or through the retry/ledger fault runtime —
and reports what happened (:class:`ExecutionReport`).

Call sites compile to the IR instead of hand-rolling loops:
``repro.core.merge`` compiles its fold strategies
(:data:`MERGE_STRATEGIES`), the distributed simulator compiles its
:class:`~repro.distributed.topology.MergeSchedule` objects
(:func:`compile_aggregation`), and
:meth:`repro.store.store.SegmentStore.compact` compiles its dyadic
roll-up — which is how the store gets fault injection and exactly-once
compaction without any code of its own.

Fault primitives (:class:`FaultModel`, :class:`RetryPolicy`,
:class:`MergeLedger`, :class:`FaultStats`) live here too, because the
engine's executor is the one place that runs the retry/ledger loop;
:mod:`repro.distributed.faults` re-exports them for compatibility.
"""

from .agents import SegmentSlot, SummarySlot, wrap_slot
from .compilers import (
    MERGE_STRATEGIES,
    MergeStrategy,
    compile_aggregation,
    compile_fold,
    fold_slots,
)
from .executor import ExecutionReport, ExecutionResult, execute_plan
from .faults import FaultModel, FaultStats, MergeLedger, RetryPolicy, corrupt_payload
from .plan import MergePlan, MergeStep
from .waves import plan_merge_waves, plan_step_waves

__all__ = [
    "MergePlan",
    "MergeStep",
    "execute_plan",
    "ExecutionReport",
    "ExecutionResult",
    "MergeStrategy",
    "MERGE_STRATEGIES",
    "compile_fold",
    "compile_aggregation",
    "fold_slots",
    "plan_merge_waves",
    "plan_step_waves",
    "SummarySlot",
    "SegmentSlot",
    "wrap_slot",
    "FaultModel",
    "FaultStats",
    "MergeLedger",
    "RetryPolicy",
    "corrupt_payload",
]
