"""Exponential-histogram bucket machinery for :class:`WindowedSummary`.

Datar et al.'s exponential histogram keeps dyadic *buckets* over a
stream suffix: level-``L`` buckets carry roughly ``2**L`` granules of
mass, at most ``cap`` buckets live per level, and when a level
overflows its two oldest buckets merge into one bucket one level up.
Total space is ``O(cap * log(W))`` buckets for a window of mass ``W``,
and the only uncertainty in a window count is the single straddling
oldest bucket — at most a ``1/(cap - 1)`` fraction of the window, so
``cap = ceil(1/eps) + 1`` yields the ``(1 + eps)`` envelope.

Here every bucket carries a mergeable *sub-summary* instead of a bare
counter, so the same cascade lifts any summary type to sliding-window
semantics: bucket merges are summary merges, and mergeability
guarantees the merged bucket keeps the summary's own error bound.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, List

__all__ = ["Bucket", "canonicalize", "sorted_union"]


class Bucket:
    """One EH bucket: a sub-summary plus its mass and stream span.

    ``count`` is the bucket's window *mass* (total update weight routed
    into it — distinct from the sub-summary's own ``n``, whose
    semantics belong to the base type).  ``start``/``end`` delimit the
    bucket's span: clock positions ``(start, end]`` in count mode,
    event timestamps in time mode.  ``level`` is the EH level assigned
    at seal time (0) and incremented by each cascade merge.
    """

    __slots__ = ("summary", "count", "level", "start", "end")

    def __init__(self, summary: Any, count, level: int, start, end) -> None:
        self.summary = summary
        self.count = count
        self.level = level
        self.start = start
        self.end = end

    def clone(self, offset=0) -> "Bucket":
        """Deep, side-effect-free copy (optionally shifted by ``offset``).

        ``copy.deepcopy`` preserves the sub-summary's RNG state exactly,
        so cloning never perturbs determinism the way a
        ``to_dict``/``from_dict`` round trip (which draws a re-seed)
        would.
        """
        return Bucket(
            copy.deepcopy(self.summary),
            self.count,
            self.level,
            self.start + offset,
            self.end + offset,
        )

    def absorb(self, other: "Bucket") -> None:
        """Cascade-merge ``other`` into this bucket, one level up."""
        self.summary.merge(other.summary)
        self.count += other.count
        self.level += 1
        self.start = min(self.start, other.start)
        self.end = max(self.end, other.end)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "level": self.level,
            "count": self.count,
            "start": self.start,
            "end": self.end,
            "state": self.summary.to_dict(),
        }


def canonicalize(buckets: List[Bucket], cap: int) -> None:
    """Restore the k-per-level invariant in place.

    Processes levels from 0 upward: while a level holds more than
    ``cap`` buckets, its two oldest (list order is oldest -> newest)
    merge into one bucket a level up, cascading overflow toward coarser
    levels.  Deterministic: the merge order is a pure function of the
    bucket list.
    """
    level = 0
    while True:
        positions = [i for i, b in enumerate(buckets) if b.level == level]
        while len(positions) > cap:
            first, second = positions[0], positions[1]
            buckets[first].absorb(buckets[second])
            del buckets[second]
            positions = [i for i, b in enumerate(buckets) if b.level == level]
        if not any(b.level > level for b in buckets):
            return
        level += 1


def sorted_union(mine: List[Bucket], theirs: List[Bucket]) -> List[Bucket]:
    """Stable merge of two span-ordered bucket lists by ``(start, end)``.

    Both inputs are already internally ordered; ties break toward
    ``mine`` (stable), so the union is deterministic.
    """
    out: List[Bucket] = []
    i = j = 0
    while i < len(mine) and j < len(theirs):
        a, b = mine[i], theirs[j]
        if (b.start, b.end) < (a.start, a.end):
            out.append(b)
            j += 1
        else:
            out.append(a)
            i += 1
    out.extend(mine[i:])
    out.extend(theirs[j:])
    return out
