"""Bucket-aware engine folds over windowed summaries.

A :class:`~repro.windows.WindowedSummary` is itself mergeable, so the
generic fold strategies (``merge_all``) already work on windowed
operands.  This module compiles the *bucket-aware* alternative: instead
of treating each operand as opaque, the plan slices every operand into
pre-aligned per-level partials (:meth:`~WindowedSummary.level_slice`),
k-way merges each level's slices in slot-disjoint waves, and stitches
the level results into a fresh accumulator whose final merge performs
the one cascade/expiry pass.  Pre-aligned partials defer
canonicalization, so the parallel waves are pure bucket unions —
cheap, commutation-free, and deterministic.

The compiled plan is ordinary engine IR: it runs through
:func:`repro.engine.execute_plan` unchanged, which means windowed
folds inherit the persistent worker runtime, the wave scheduler, the
fault/retry/ledger machinery and the execution report for free — the
point of ISSUE layer 2.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.exceptions import MergeError
from ..engine.plan import MergePlan, MergeStep

__all__ = ["compile_windowed_fold", "windowed_merge_all"]


def _take_first(first):
    """Copy-on-write seed for per-level unions: adopt the first slice.

    Level slices are plan-private objects built by this very plan, so
    adopting (and mutating) the first one is safe and skips a deep
    copy.
    """
    return first


def _stitch_seed(first):
    """Seed the final accumulator: fresh, *not* pre-aligned.

    Merging the pre-aligned level partials into a non-pre-aligned twin
    is what triggers the single canonicalization/expiry pass.
    """
    acc = first._spawn_like()
    return acc.merge(first)


def compile_windowed_fold(summaries: Sequence) -> MergePlan:
    """Compile a bucket-aware fold plan over windowed operands.

    Build steps slice each operand into per-level pre-aligned partials
    (plus one pending-bucket slice per operand), rebased into the
    global stream frame (count mode: each operand's buckets shift by
    the total mass of the operands before it — operand order *is*
    stream order, exactly like a plain windowed chain merge).  Each
    level's slices then k-way merge as lazy bucket unions — the plan is
    ``groupable``, so a parallel executor runs the levels concurrently
    in slot-disjoint waves — and a final fan-in stitches level results
    oldest-level-first into a fresh accumulator, whose non-pre-aligned
    merge path performs the one EH cascade and expiry sweep.

    The operands themselves are never mutated (slices are clones).
    """
    if not summaries:
        raise MergeError("cannot merge an empty list of windowed summaries")
    first = summaries[0]
    for other in summaries[1:]:
        if type(other) is not type(first):
            raise MergeError(
                f"cannot merge {type(first).__name__} with "
                f"{type(other).__name__}; mergeability requires identical "
                "summary types"
            )
        problem = first.compatible_with(other)
        if problem is not None:
            raise MergeError(
                f"incompatible {type(first).__name__} operands: {problem}"
            )
    # count mode: operand order is stream order, so operand i's spans
    # shift by the total mass of operands 0..i-1; time mode: spans are
    # already absolute event timestamps
    offsets: List = []
    position = 0
    for summary in summaries:
        offsets.append(position)
        if summary.mode == "count":
            position += summary._clock
    levels = sorted({b.level for s in summaries for b in s._buckets})
    steps: List[MergeStep] = []
    level_slots: List[str] = []
    for level in levels:
        slice_slots = []
        for i, summary in enumerate(summaries):
            if not any(b.level == level for b in summary._buckets):
                continue
            slot = f"L{level}:{i}"
            steps.append(
                MergeStep(
                    "build",
                    slot,
                    builder=(
                        lambda s=summary, lv=level, off=offsets[i]: (
                            s.level_slice(lv, off)
                        )
                    ),
                )
            )
            slice_slots.append(slot)
        if len(slice_slots) == 1:
            level_slots.append(slice_slots[0])
            continue
        dst = f"L{level}"
        steps.append(
            MergeStep("merge", dst, tuple(slice_slots), builder=_take_first)
        )
        level_slots.append(dst)
    pending_slots: List[str] = []
    for i, summary in enumerate(summaries):
        if summary._pending is None:
            continue
        slot = f"pend:{i}"
        steps.append(
            MergeStep(
                "build",
                slot,
                builder=lambda s=summary, off=offsets[i]: s.pending_slice(off),
            )
        )
        pending_slots.append(slot)
    # oldest (finest) levels first, then the open pending buckets in
    # operand order — the order a plain chain merge would see them
    stitch_srcs = tuple(level_slots + pending_slots)
    if stitch_srcs:
        steps.append(MergeStep("merge", "out", stitch_srcs, builder=_stitch_seed))
    else:
        # every operand is empty: build the empty accumulator directly
        steps.append(
            MergeStep("build", "out", builder=lambda s=first: s._spawn_like())
        )
    steps.append(MergeStep("emit", "out"))
    return MergePlan(
        name=f"fold:windowed[{len(summaries)}x{len(levels)}lvl]",
        steps=steps,
        groupable=True,
        protected=frozenset({"out"}),
    )


def windowed_merge_all(
    parts: Sequence,
    *,
    executor=None,
    serialize: bool = False,
    fault_model=None,
    retry_policy=None,
    ledger_factory=None,
):
    """Merge windowed summaries through the bucket-aware engine fold.

    Compiles :func:`compile_windowed_fold` and runs it through
    :func:`repro.engine.execute_plan`, so the merge rides whatever
    runtime the knobs select: the scalar loop, the wave scheduler and
    persistent worker runtime (``executor``), or the fault/retry path
    (``fault_model``/``retry_policy``/``ledger_factory``).  Returns a
    *new* accumulator; ``parts`` are left untouched.
    """
    from ..engine.executor import execute_plan

    plan = compile_windowed_fold(parts)
    result = execute_plan(
        plan,
        {},
        executor=executor,
        serialize=serialize,
        fault_model=fault_model,
        retry_policy=retry_policy,
        ledger_factory=ledger_factory,
        accounting=False,
    )
    return result.value
