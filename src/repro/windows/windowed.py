"""The :class:`WindowedSummary` combinator and its derived registry.

``WindowedSummary`` lifts a base mergeable summary type to sliding
windows: updates land in an open *pending* bucket that seals every
``granularity`` units of mass (count mode) or event time (time mode);
sealed buckets live in an exponential histogram (:mod:`.eh`) whose
cascade keeps ``O(cap * log W)`` sub-summaries; expired buckets drop
wholesale as the window slides.  A window query merges the covering
buckets' sub-summaries — mergeability makes the merged answer carry
the base type's own guarantee over the covered span — and reports the
``(1 + eps)`` mass envelope whose only slack is the straddling oldest
bucket.

Merging two windowed summaries is bucket-wise union followed by
re-canonicalization under the k-per-level invariant: count mode
concatenates (the right operand's stream is taken to follow the
left's, clocks rebased), time mode interleaves buckets by span.  Both
are deterministic, so engine folds over windowed summaries stay
byte-identical between serial and parallel execution.

A registration hook derives one concrete subclass per windowable base
type and registers it as ``windowed.<name>``, giving every variant a
stable envelope identity for the codec stack, the stores and the CLI.
"""

from __future__ import annotations

import copy
import json
import math
from typing import Any, Dict, List, NamedTuple, Optional, Type

from ..core.base import Summary
from ..core.exceptions import ParameterError, QueryError
from ..core.registry import (
    add_registration_hook,
    get_summary_class,
    register_summary,
)
from .eh import Bucket, canonicalize, sorted_union

__all__ = [
    "WindowedSummary",
    "WindowView",
    "windowed_class",
    "windowed_names",
]


class WindowBounds(NamedTuple):
    """Mass of the queried window: certain core, envelope, midpoint."""

    lower: float
    estimate: float
    upper: float


class WindowView:
    """Outcome of a sliding-window query.

    ``summary`` merges the sub-summaries of every bucket that overlaps
    the window, so its answers carry the base type's guarantee over the
    covered span ``[covered_start, covered_end]`` — which contains the
    requested window and exceeds it by at most the straddling bucket.
    """

    def __init__(
        self,
        summary: Summary,
        bounds: WindowBounds,
        buckets_covered: int,
        covered_start,
        covered_end,
    ) -> None:
        self.summary = summary
        self.bounds = bounds
        self.buckets_covered = buckets_covered
        self.covered_start = covered_start
        self.covered_end = covered_end

    @property
    def n(self) -> int:
        return self.summary.n

    @property
    def lower(self) -> float:
        return self.bounds.lower

    @property
    def estimate(self) -> float:
        return self.bounds.estimate

    @property
    def upper(self) -> float:
        return self.bounds.upper


class WindowedSummary(Summary):
    """Generic EH lifting of a base summary type to sliding windows.

    Abstract over its base type: concrete subclasses (one per
    registered base summary, created by the registration hook and
    registered as ``windowed.<name>``) pin ``base_cls``/``base_name``.

    Parameters
    ----------
    eps:
        Window-mass accuracy: per-level bucket cap is
        ``ceil(1/eps) + 1``, so a window-count query is exact up to the
        straddling oldest bucket — a ``<= eps`` fraction of the window
        under sealed-granularity ingest.
    window:
        Retained horizon — mass units in count mode, time units in time
        mode.  ``None`` disables expiry (the structure still buckets,
        so sub-window queries work over the whole history).
    mode:
        ``"count"`` slides over total update weight; ``"time"`` slides
        over event timestamps fed through :meth:`observe`
        (out-of-order tolerant).
    granularity:
        Mass (count mode) or time span (time mode) sealed into one
        level-0 bucket — the resolution of the window edge.
    **base_kwargs:
        Forwarded to the base type's constructor to build the empty
        *prototype* from which every bucket sub-summary is spawned.
    """

    #: pinned by the derived concrete subclasses
    base_cls: Optional[Type[Summary]] = None
    base_name: Optional[str] = None

    summary_kind = "windowed"
    #: window-of-window semantics is ill-defined (inner expiry races
    #: outer expiry), so windowed variants are not themselves windowable
    windowable = False

    def __init__(
        self,
        eps: float = 0.25,
        window: Optional[float] = None,
        mode: str = "count",
        granularity: float = 1,
        **base_kwargs: Any,
    ) -> None:
        cls = type(self)
        if cls.base_cls is None:
            raise ParameterError(
                "WindowedSummary is abstract; construct a registered "
                "windowed.<name> variant, or use Summary.windowed() / "
                "WindowedSummary.from_prototype()"
            )
        proto = cls.base_cls(**base_kwargs)
        self._configure(proto.to_dict(), eps, window, mode, granularity)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _configure(
        self,
        proto_state: Dict[str, Any],
        eps: float,
        window: Optional[float],
        mode: str,
        granularity: float,
    ) -> None:
        Summary.__init__(self)
        if not 0 < eps <= 1:
            raise ParameterError(f"eps must be in (0, 1], got {eps!r}")
        if window is not None and window <= 0:
            raise ParameterError(f"window must be positive, got {window!r}")
        if mode not in ("count", "time"):
            raise ParameterError(
                f"mode must be 'count' or 'time', got {mode!r}"
            )
        if granularity <= 0:
            raise ParameterError(
                f"granularity must be positive, got {granularity!r}"
            )
        self.eps = float(eps)
        self.window = window
        self.mode = mode
        self.granularity = granularity
        #: per-level bucket cap: straddler <= 1/(cap-1) of the window
        self.cap = max(2, math.ceil(1.0 / self.eps) + 1)
        self._proto_json = json.dumps(proto_state, sort_keys=True)
        self._buckets: List[Bucket] = []
        self._pending: Optional[Bucket] = None
        #: count mode: total mass ever ingested; time mode: watermark
        #: (max event timestamp seen), ``None`` until the first event
        self._clock = 0 if mode == "count" else None
        #: furthest span end among expired buckets (query horizon)
        self._expired_end = None
        #: engine-slice flag: a pre-aligned partial defers cascade and
        #: expiry to the stitching merge (see repro.windows.fold)
        self._prealigned = False

    @classmethod
    def from_prototype(
        cls,
        proto: Summary,
        eps: float = 0.25,
        window: Optional[float] = None,
        mode: str = "count",
        granularity: float = 1,
    ) -> "WindowedSummary":
        """Lift an *empty* base summary (the prototype) to a window.

        Callable on a concrete variant or on :class:`WindowedSummary`
        itself, which dispatches through the registry on the
        prototype's type.
        """
        if cls.base_cls is None:
            cls = windowed_class(type(proto))
        if type(proto) is not cls.base_cls:
            raise ParameterError(
                f"{cls.__name__} expects a {cls.base_cls.__name__} "
                f"prototype, got {type(proto).__name__}"
            )
        if not proto.is_empty:
            raise ParameterError(
                "window prototype must be empty: it defines the base "
                "parameters, not data"
            )
        self = cls.__new__(cls)
        self._configure(proto.to_dict(), eps, window, mode, granularity)
        return self

    def _spawn(self) -> Summary:
        """A fresh sub-summary cloned from the prototype state."""
        return type(self).base_cls.from_dict(json.loads(self._proto_json))

    def _spawn_like(self) -> "WindowedSummary":
        """An empty windowed summary with identical configuration."""
        twin = type(self).__new__(type(self))
        twin._configure(
            json.loads(self._proto_json),
            self.eps,
            self.window,
            self.mode,
            self.granularity,
        )
        return twin

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def update(self, item: Any, weight: int = 1) -> None:
        """Fold ``weight`` occurrences of ``item`` into the window.

        Count mode advances the mass clock by ``weight``; time mode
        stamps the item at the current watermark (use :meth:`observe`
        for explicit event times).
        """
        if weight <= 0:
            raise ParameterError(f"weight must be positive, got {weight!r}")
        if self.mode == "time":
            self.observe(item, self._clock if self._clock is not None else 0.0, weight)
            return
        if self._pending is None:
            self._pending = Bucket(self._spawn(), 0, 0, self._clock, self._clock)
        bucket = self._pending
        before = bucket.summary.n
        bucket.summary.update(item, weight)
        self._n += bucket.summary.n - before
        bucket.count += weight
        self._clock += weight
        bucket.end = self._clock
        if bucket.count >= self.granularity:
            self._seal()

    def observe(self, item: Any, timestamp: float, weight: int = 1) -> None:
        """Record ``weight`` occurrences of ``item`` at ``timestamp``.

        Time mode only.  Out-of-order events are tolerated: a late item
        folds into the sealed bucket whose span covers it (or the
        oldest live bucket when it predates everything retained), at
        the cost of that bucket's span widening to admit it.
        """
        if self.mode != "time":
            raise ParameterError(
                "observe() requires mode='time'; count-mode windows "
                "advance by update weight"
            )
        if weight <= 0:
            raise ParameterError(f"weight must be positive, got {weight!r}")
        timestamp = float(timestamp)
        if not math.isfinite(timestamp):
            raise ParameterError(f"timestamp must be finite, got {timestamp!r}")
        target = self._time_target(timestamp)
        before = target.summary.n
        target.summary.update(item, weight)
        self._n += target.summary.n - before
        target.count += weight
        target.start = min(target.start, timestamp)
        target.end = max(target.end, timestamp)
        if self._clock is None or timestamp > self._clock:
            self._clock = timestamp
        self._expire()

    def _time_target(self, timestamp: float) -> Bucket:
        """The bucket a timestamped event folds into (opening/sealing)."""
        grain = self.granularity
        pending = self._pending
        if pending is not None and timestamp >= pending.start:
            if timestamp < pending.start + grain:
                return pending
            self._seal()
            pending = None
        if pending is None:
            aligned = math.floor(timestamp / grain) * grain
            newest_end = self._buckets[-1].end if self._buckets else None
            if newest_end is None or timestamp >= newest_end:
                self._pending = Bucket(self._spawn(), 0, 0, aligned, aligned)
                return self._pending
        # late arrival: newest sealed bucket whose span starts at or
        # before the event; predating everything -> the oldest bucket
        for bucket in reversed(self._buckets):
            if bucket.start <= timestamp:
                return bucket
        if self._buckets:
            return self._buckets[0]
        self._pending = Bucket(
            self._spawn(),
            0,
            0,
            math.floor(timestamp / grain) * grain,
            timestamp,
        )
        return self._pending

    def _seal(self) -> None:
        """Close the pending bucket into the histogram and cascade."""
        if self._pending is None:
            return
        self._buckets.append(self._pending)
        self._pending = None
        canonicalize(self._buckets, self.cap)
        self._expire()

    def _expire(self) -> None:
        """Drop buckets wholly older than the window."""
        if self.window is None or self._prealigned or self._clock is None:
            return
        cutoff = self._clock - self.window
        kept: List[Bucket] = []
        for bucket in self._buckets:
            if bucket.end <= cutoff:
                self._n -= bucket.summary.n
                if self._expired_end is None or bucket.end > self._expired_end:
                    self._expired_end = bucket.end
            else:
                kept.append(bucket)
        self._buckets = kept
        pending = self._pending
        if pending is not None and pending.count and pending.end <= cutoff:
            self._n -= pending.summary.n
            if self._expired_end is None or pending.end > self._expired_end:
                self._expired_end = pending.end
            self._pending = None

    # ------------------------------------------------------------------
    # Merge
    # ------------------------------------------------------------------

    def compatible_with(self, other: "WindowedSummary") -> Optional[str]:
        mine = (self.eps, self.window, self.mode, self.granularity)
        theirs = (other.eps, other.window, other.mode, other.granularity)
        if mine != theirs:
            return f"window geometry mismatch: {mine} vs {theirs}"
        if _strip_seeds(json.loads(self._proto_json)) != _strip_seeds(
            json.loads(other._proto_json)
        ):
            return "window prototype parameters differ"
        return None

    def _merge_same_type(self, other: "WindowedSummary") -> None:
        if self._prealigned or other._prealigned or self.mode == "time":
            self._merge_aligned(other)
        else:
            self._merge_concat(other)

    def _merge_concat(self, other: "WindowedSummary") -> None:
        """Count-mode union: ``other``'s stream follows ``self``'s."""
        offset = self._clock
        if self._pending is not None:
            # self's open bucket predates everything in other
            self._buckets.append(self._pending)
            self._pending = None
        self._buckets.extend(b.clone(offset) for b in other._buckets)
        if other._pending is not None:
            self._pending = other._pending.clone(offset)
        self._clock += other._clock
        self._n += other._n
        if other._expired_end is not None:
            shifted = other._expired_end + offset
            if self._expired_end is None or shifted > self._expired_end:
                self._expired_end = shifted
        canonicalize(self._buckets, self.cap)
        self._expire()

    def _merge_aligned(self, other: "WindowedSummary") -> None:
        """Span-ordered union (time mode and engine slices)."""
        self._buckets = sorted_union(
            self._buckets, [b.clone() for b in other._buckets]
        )
        if other._pending is not None:
            theirs = other._pending.clone()
            if self._pending is None:
                self._pending = theirs
            else:
                # seal the older open bucket, keep the newer one open
                older, newer = (
                    (self._pending, theirs)
                    if self._pending.start <= theirs.start
                    else (theirs, self._pending)
                )
                self._buckets = sorted_union(self._buckets, [older])
                self._pending = newer
        if other._clock is not None and (
            self._clock is None or other._clock > self._clock
        ):
            self._clock = other._clock
        self._n += other._n
        if other._expired_end is not None and (
            self._expired_end is None
            or other._expired_end > self._expired_end
        ):
            self._expired_end = other._expired_end
        if not self._prealigned:
            canonicalize(self._buckets, self.cap)
            self._expire()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def num_buckets(self) -> int:
        """Live histogram buckets (excluding the open pending bucket)."""
        return len(self._buckets)

    @property
    def max_level(self) -> int:
        return max((b.level for b in self._buckets), default=0)

    def live_buckets(self) -> List[Dict[str, Any]]:
        """Span/level/mass of every live bucket (diagnostics)."""
        rows = [
            {
                "level": b.level,
                "count": b.count,
                "start": b.start,
                "end": b.end,
                "n": b.summary.n,
            }
            for b in self._buckets
        ]
        if self._pending is not None:
            p = self._pending
            rows.append(
                {
                    "level": -1,
                    "count": p.count,
                    "start": p.start,
                    "end": p.end,
                    "n": p.summary.n,
                }
            )
        return rows

    def _cutoff(self, window, end):
        if window is None:
            window = self.window  # default: the configured window
        if end is None:
            end = self._clock
        if end is None:  # no data yet (time mode)
            return None, None
        if window is None:
            return None, end
        return end - window, end

    def _covering(self, window=None, end=None):
        cutoff, end = self._cutoff(window, end)
        if (
            cutoff is not None
            and self._expired_end is not None
            and cutoff < self._expired_end
        ):
            raise QueryError(
                f"window reaches back to {cutoff}, but data through "
                f"{self._expired_end} has expired (window={self.window})"
            )
        covered = []
        for bucket in self._buckets:
            if cutoff is not None and bucket.end <= cutoff:
                continue
            if end is not None and bucket.start > end:
                continue
            covered.append(bucket)
        pending = self._pending
        if pending is not None and pending.count:
            if (cutoff is None or pending.end > cutoff) and (
                end is None or pending.start <= end
            ):
                covered.append(pending)
        return covered, cutoff, end

    def window_count_bounds(
        self, window: Optional[float] = None, end=None
    ) -> WindowBounds:
        """Mass envelope of the trailing window.

        ``lower`` counts buckets wholly inside the window; ``upper``
        adds every straddling bucket.  The true in-window mass lies in
        ``[lower, upper]``; under sealed sequential ingest the slack is
        a single straddler of at most an ``eps`` fraction of the
        window's mass.
        """
        covered, cutoff, _ = self._covering(window, end)
        upper = sum(b.count for b in covered)
        if cutoff is None:
            lower = upper
        else:
            lower = sum(b.count for b in covered if b.start >= cutoff)
        return WindowBounds(lower, (lower + upper) / 2.0, upper)

    def window_query(
        self, window: Optional[float] = None, end=None
    ) -> WindowView:
        """Merged base-summary view of the trailing window.

        Merges the sub-summaries of every bucket overlapping
        ``(end - window, end]`` (defaults: the configured window,
        ending now).  The merged summary covers the reported span —
        window queries are bucket-aligned, exceeding the request by at
        most the straddling bucket, which is what the ``(1 + eps)``
        envelope prices.
        """
        if window is not None and window <= 0:
            raise ParameterError(f"window must be positive, got {window!r}")
        covered, cutoff, end = self._covering(window, end)
        merged = self._spawn()
        merged.merge_many([b.summary for b in covered])
        upper = sum(b.count for b in covered)
        lower = (
            upper
            if cutoff is None
            else sum(b.count for b in covered if b.start >= cutoff)
        )
        return WindowView(
            merged,
            WindowBounds(lower, (lower + upper) / 2.0, upper),
            buckets_covered=len(covered),
            covered_start=min((b.start for b in covered), default=cutoff),
            covered_end=max((b.end for b in covered), default=end),
        )

    def size(self) -> int:
        total = sum(b.summary.size() for b in self._buckets)
        if self._pending is not None:
            total += self._pending.summary.size()
        return total

    # ------------------------------------------------------------------
    # Engine slices (see repro.windows.fold)
    # ------------------------------------------------------------------

    def level_slice(self, level: int, offset=0) -> "WindowedSummary":
        """A pre-aligned partial holding only this level's buckets.

        ``offset`` shifts the slice's spans into the global frame of a
        multi-source fold (count mode: the total mass of every earlier
        source).  Merging slices defers cascade and expiry until they
        are stitched into a non-pre-aligned accumulator.
        """
        piece = self._spawn_like()
        piece._prealigned = True
        piece._buckets = [
            b.clone(offset) for b in self._buckets if b.level == level
        ]
        piece._n = sum(b.summary.n for b in piece._buckets)
        piece._clock = (
            (self._clock + offset) if self.mode == "count" else self._clock
        )
        return piece

    def pending_slice(self, offset=0) -> "WindowedSummary":
        """A pre-aligned partial carrying only the open pending bucket."""
        piece = self._spawn_like()
        piece._prealigned = True
        if self._pending is not None:
            piece._pending = self._pending.clone(offset)
            piece._n = piece._pending.summary.n
        piece._clock = (
            (self._clock + offset) if self.mode == "count" else self._clock
        )
        return piece

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "eps": self.eps,
            "window": self.window,
            "mode": self.mode,
            "granularity": self.granularity,
            "proto": json.loads(self._proto_json),
            "clock": self._clock,
            "n": self._n,
            "expired_end": self._expired_end,
            "prealigned": self._prealigned,
            "buckets": [b.to_dict() for b in self._buckets],
            "pending": (
                self._pending.to_dict() if self._pending is not None else None
            ),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "WindowedSummary":
        if cls.base_cls is None:
            raise ParameterError(
                "WindowedSummary is abstract; deserialize through a "
                "registered windowed.<name> variant"
            )
        self = cls.__new__(cls)
        self._configure(
            payload["proto"],
            payload["eps"],
            payload["window"],
            payload["mode"],
            payload["granularity"],
        )

        def bucket(row: Dict[str, Any]) -> Bucket:
            return Bucket(
                cls.base_cls.from_dict(row["state"]),
                row["count"],
                row["level"],
                row["start"],
                row["end"],
            )

        self._buckets = [bucket(row) for row in payload["buckets"]]
        if payload.get("pending") is not None:
            self._pending = bucket(payload["pending"])
        self._clock = payload["clock"]
        self._n = payload["n"]
        self._expired_end = payload.get("expired_end")
        self._prealigned = bool(payload.get("prealigned", False))
        return self


def _strip_seeds(value: Any) -> Any:
    """Recursively drop volatile RNG re-seed fields for comparisons."""
    if isinstance(value, dict):
        return {k: _strip_seeds(v) for k, v in value.items() if k != "seed"}
    if isinstance(value, list):
        return [_strip_seeds(v) for v in value]
    return value


# ---------------------------------------------------------------------------
# Derived registry: one windowed.<name> variant per windowable base type
# ---------------------------------------------------------------------------

#: registered windowed variants: ``windowed.<base>`` -> subclass
_DERIVED: Dict[str, Type[WindowedSummary]] = {}


def windowed_class(base: Any) -> Type[WindowedSummary]:
    """The registered windowed variant for a base type, name or class."""
    if isinstance(base, str):
        name = base
    else:
        name = getattr(base, "registry_name", None)
        if name is None:
            raise ParameterError(
                f"{base!r} is not a registered summary type"
            )
    return get_summary_class(f"windowed.{name}")


def windowed_names() -> List[str]:
    """Sorted registered ``windowed.<name>`` variant names."""
    return sorted(_DERIVED)


def _derive_windowed(name: str, cls: Type[Summary]) -> None:
    """Registration hook: lift every windowable base registration."""
    if name.startswith("windowed."):
        return
    if getattr(cls, "summary_kind", "base") != "base":
        return
    if not getattr(cls, "windowable", True):
        return
    derived_name = f"windowed.{name}"
    if derived_name in _DERIVED:
        return
    attribute = f"Windowed_{name}"
    derived = type(
        attribute,
        (WindowedSummary,),
        {
            "base_cls": cls,
            "base_name": name,
            "__module__": __name__,
            "__doc__": (
                f"Sliding-window lifting of :class:`{cls.__name__}` "
                f"(registered as ``{derived_name}``); see "
                ":class:`WindowedSummary`."
            ),
        },
    )
    # module attribute so pickling by reference works across processes
    globals()[attribute] = derived
    _DERIVED[derived_name] = derived
    register_summary(derived_name)(derived)


add_registration_hook(_derive_windowed)
