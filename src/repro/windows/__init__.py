"""Sliding-window mergeability: lift any summary to windowed semantics.

The paper's mergeability guarantee composes summaries across *space*
(arbitrary merge trees over data partitions); this package adds the
missing composition across *time*.  :class:`WindowedSummary` lifts any
registered mergeable summary to count-based and time-based sliding
windows by maintaining exponential-histogram (Datar et al.) dyadic
buckets of sub-summaries: at most ``ceil(1/eps) + 1`` buckets per
level, two oldest same-level buckets merge on overflow, closed buckets
expire as the window slides, and only the straddling oldest bucket is
uncertain — a ``(1 + eps)`` window-count error envelope.

A registration hook derives a ``windowed.<name>`` variant for every
windowable registered summary type, so the codec stack, the engine
runtime, the stores and the conformance suites cover windowed variants
with zero per-type code.
"""

from .windowed import (
    WindowView,
    WindowedSummary,
    windowed_class,
    windowed_names,
)
from .fold import compile_windowed_fold, windowed_merge_all

__all__ = [
    "WindowedSummary",
    "WindowView",
    "windowed_class",
    "windowed_names",
    "compile_windowed_fold",
    "windowed_merge_all",
]
