"""Range spaces: the query families for eps-approximations (paper Section 4).

A range space ``(X, R)`` pairs a point set with a family of ranges; an
*eps-approximation* ``Q`` of ``P`` guarantees for every range ``R``::

    | |P ∩ R| / |P|  -  |Q ∩ R| / |Q| |  <=  eps

Three concrete instances are provided, all with constant VC dimension
so the paper's merge-reduce bounds apply:

- :class:`Intervals1D` — one-dimensional intervals ``(a, b]``;
- :class:`Rectangles2D` — axis-aligned rectangles;
- :class:`Halfplanes2D` — closed halfplanes ``a*x + b*y <= c``.

Each instance knows how to (a) test point membership vectorized, and
(b) generate a *canonical test set* of ranges anchored at data points —
used both by the greedy low-discrepancy halving and by the benchmark
harness to measure realized approximation error.
"""

from __future__ import annotations

import abc
from typing import Any, List, Tuple

import numpy as np

from ..core.exceptions import ParameterError
from ..core.rng import RngLike, resolve_rng

__all__ = ["RangeSpace", "Intervals1D", "Rectangles2D", "Halfplanes2D", "RANGE_SPACES"]


class RangeSpace(abc.ABC):
    """A family of ranges over points in ``dimension`` dimensions."""

    #: registry name, also used for merge-compatibility checks
    name: str = ""
    dimension: int = 0

    @abc.abstractmethod
    def contains(self, points: np.ndarray, range_params: Any) -> np.ndarray:
        """Boolean mask: which of ``points`` lie inside the range."""

    @abc.abstractmethod
    def canonical_ranges(
        self, points: np.ndarray, budget: int, rng: RngLike = None
    ) -> List[Any]:
        """Up to ``budget`` test ranges anchored at ``points``.

        The test set is rich enough that low discrepancy on it implies
        low discrepancy on all ranges of the family (up to constants),
        which is what the greedy halving optimizes.
        """

    def check_points(self, points: np.ndarray) -> np.ndarray:
        """Validate and canonicalize a point array to shape (n, dimension)."""
        arr = np.asarray(points, dtype=np.float64)
        if self.dimension == 1:
            if arr.ndim == 1:
                arr = arr.reshape(-1, 1)
        if arr.ndim != 2 or arr.shape[1] != self.dimension:
            raise ParameterError(
                f"{self.name} expects points of shape (n, {self.dimension}), "
                f"got {arr.shape}"
            )
        return arr

    def count(self, points: np.ndarray, range_params: Any) -> int:
        """Number of ``points`` inside the range."""
        return int(self.contains(points, range_params).sum())


class Intervals1D(RangeSpace):
    """Intervals ``(a, b]`` over the real line (VC dimension 2)."""

    name = "intervals_1d"
    dimension = 1

    def contains(self, points: np.ndarray, range_params: Any) -> np.ndarray:
        a, b = range_params
        x = self.check_points(points)[:, 0]
        return (x > a) & (x <= b)

    def canonical_ranges(
        self, points: np.ndarray, budget: int, rng: RngLike = None
    ) -> List[Any]:
        x = np.unique(self.check_points(points)[:, 0])
        # prefixes suffice: an interval is the difference of two prefixes,
        # so discrepancy on prefixes bounds interval discrepancy within 2x.
        if len(x) > budget:
            idx = np.linspace(0, len(x) - 1, budget).astype(int)
            x = x[idx]
        return [(-np.inf, b) for b in x]


class Rectangles2D(RangeSpace):
    """Axis-aligned rectangles ``(x1, x2] x (y1, y2]`` (VC dimension 4)."""

    name = "rectangles_2d"
    dimension = 2

    def contains(self, points: np.ndarray, range_params: Any) -> np.ndarray:
        x1, x2, y1, y2 = range_params
        pts = self.check_points(points)
        return (
            (pts[:, 0] > x1) & (pts[:, 0] <= x2) & (pts[:, 1] > y1) & (pts[:, 1] <= y2)
        )

    def canonical_ranges(
        self, points: np.ndarray, budget: int, rng: RngLike = None
    ) -> List[Any]:
        pts = self.check_points(points)
        gen = resolve_rng(rng)
        # dominance (two-sided prefix) ranges anchored at data coordinates;
        # rectangles are signed combinations of four such anchors.
        xs = np.unique(pts[:, 0])
        ys = np.unique(pts[:, 1])
        side = max(2, int(np.sqrt(budget)))
        if len(xs) > side:
            xs = xs[np.linspace(0, len(xs) - 1, side).astype(int)]
        if len(ys) > side:
            ys = ys[np.linspace(0, len(ys) - 1, side).astype(int)]
        ranges: List[Any] = [
            (-np.inf, x, -np.inf, y) for x in xs for y in ys
        ]
        if len(ranges) > budget:
            keep = gen.choice(len(ranges), size=budget, replace=False)
            ranges = [ranges[i] for i in keep]
        return ranges


class Halfplanes2D(RangeSpace):
    """Closed halfplanes ``a*x + b*y <= c`` (VC dimension 3)."""

    name = "halfplanes_2d"
    dimension = 2

    def contains(self, points: np.ndarray, range_params: Any) -> np.ndarray:
        a, b, c = range_params
        pts = self.check_points(points)
        return a * pts[:, 0] + b * pts[:, 1] <= c + 1e-12

    def canonical_ranges(
        self, points: np.ndarray, budget: int, rng: RngLike = None
    ) -> List[Any]:
        pts = self.check_points(points)
        gen = resolve_rng(rng)
        n = len(pts)
        ranges: List[Any] = []
        # halfplanes through pairs of data points capture every distinct
        # bipartition the family induces; sample `budget` of them.
        for _ in range(budget):
            i, j = gen.choice(n, size=2, replace=False) if n >= 2 else (0, 0)
            p, q = pts[int(i)], pts[int(j)]
            direction = q - p
            if np.allclose(direction, 0):
                direction = np.array([1.0, 0.0])
            normal = np.array([-direction[1], direction[0]])
            norm = np.linalg.norm(normal)
            if norm == 0:
                continue
            normal /= norm
            c = float(normal @ p)
            ranges.append((float(normal[0]), float(normal[1]), c))
        return ranges


RANGE_SPACES = {
    cls.name: cls for cls in (Intervals1D, Rectangles2D, Halfplanes2D)
}


def get_range_space(name: str) -> RangeSpace:
    """Instantiate a range space by registry name."""
    try:
        return RANGE_SPACES[name]()
    except KeyError:
        raise ParameterError(
            f"unknown range space {name!r}; choose from {sorted(RANGE_SPACES)}"
        ) from None
