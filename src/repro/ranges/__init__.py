"""eps-approximations of range spaces (paper Section 4)."""

from .approximation import EpsApproximation
from .discrepancy import discrepancy_of, halve_points, morton_order, pair_points
from .range_spaces import (
    RANGE_SPACES,
    Halfplanes2D,
    Intervals1D,
    RangeSpace,
    Rectangles2D,
    get_range_space,
)

__all__ = [
    "EpsApproximation",
    "RangeSpace",
    "Intervals1D",
    "Rectangles2D",
    "Halfplanes2D",
    "RANGE_SPACES",
    "get_range_space",
    "halve_points",
    "morton_order",
    "pair_points",
    "discrepancy_of",
]
