"""Mergeable eps-approximations via merge-reduce (paper Section 4).

Structure: identical to the fully mergeable quantile summary (Section
3.2) with geometric points in place of reals and low-discrepancy
halving in place of the 1-D random halving — indeed the paper presents
Section 3.2 as the 1-D special case of this construction.

- buffer of fewer than ``s`` raw points (weight 1);
- at most one *block* per level ``i``: exactly ``s`` points of weight
  ``2^i`` each, produced by halving two level-``i-1`` blocks;
- merge = concatenate buffers and block lists, then binary-counter
  carry with low-discrepancy halving.

Queries estimate ``|P ∩ R|`` as the weighted count over buffer and
blocks.  With the randomized pair coloring the per-level errors are
independent zero-mean, giving counting error ``O(eps * n)`` for
``s = O~(1/eps)`` on constant-VC ranges, under arbitrary merges —
benchmark E9 measures this against the random-sample baseline.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

import numpy as np

from ..core.base import Summary, normalize_batch
from ..core.exceptions import EmptySummaryError, ParameterError
from ..core.registry import register_summary
from ..core.rng import RngLike, resolve_rng
from .discrepancy import halve_points
from .range_spaces import RangeSpace, get_range_space

__all__ = ["EpsApproximation"]


@register_summary("eps_approximation")
class EpsApproximation(Summary):
    """Mergeable eps-approximation of a point set for a range family.

    Parameters
    ----------
    space:
        A :class:`RangeSpace` instance (or its registry name).
    s:
        Points per block; drives the error (roughly ``eps ~ 1/s`` per
        level for the geometric families here).
    method:
        Halving coloring: ``"pair_random"`` (default) or ``"greedy"``.
    """

    def __init__(
        self,
        space: RangeSpace | str,
        s: int,
        method: str = "pair_random",
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        if isinstance(space, str):
            space = get_range_space(space)
        if not isinstance(space, RangeSpace):
            raise ParameterError(f"space must be a RangeSpace, got {type(space)!r}")
        if s < 2 or s % 2 != 0:
            raise ParameterError(f"block size s must be an even integer >= 2, got {s!r}")
        if method not in ("pair_random", "greedy"):
            raise ParameterError(
                f"method must be 'pair_random' or 'greedy', got {method!r}"
            )
        self.space = space
        self.s = int(s)
        self.method = method
        self._rng = resolve_rng(rng)
        self._buffer: List[np.ndarray] = []  # raw points, weight 1
        self._blocks: Dict[int, List[np.ndarray]] = {}

    @classmethod
    def from_epsilon(
        cls,
        space: RangeSpace | str,
        epsilon: float,
        method: str = "pair_random",
        rng: RngLike = None,
    ) -> "EpsApproximation":
        """Choose ``s`` ~ ``4/eps`` (rounded to even)."""
        if not 0 < epsilon < 1:
            raise ParameterError(f"epsilon must be in (0, 1), got {epsilon!r}")
        s = 2 * math.ceil(2.0 / epsilon)
        return cls(space, s=s, method=method, rng=rng)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def update(self, item: Any, weight: int = 1) -> None:
        """Add a point (1-D scalar or a length-``d`` coordinate array)."""
        if weight <= 0:
            raise ParameterError(f"weight must be positive, got {weight!r}")
        point = self.space.check_points(
            np.asarray(item, dtype=np.float64).reshape(1, -1)
            if np.ndim(item) > 0
            else np.array([[float(item)]])
        )[0]
        # replicate at C speed; blocks form in the flush, not per copy
        self._buffer.extend([point] * int(weight))
        self._n += int(weight)
        if len(self._buffer) >= self.s:
            self._flush_buffer()

    def extend_points(self, points: np.ndarray) -> "EpsApproximation":
        """Bulk-add a point array of shape ``(n, d)`` (or ``(n,)`` in 1-D)."""
        pts = self.space.check_points(points)
        self._buffer.extend(pts)
        self._n += len(pts)
        if len(self._buffer) >= self.s:
            self._flush_buffer()
        return self

    def update_batch(self, items, weights=None) -> None:
        items, weights, _ = normalize_batch(items, weights)
        if not len(items):
            return
        pts = np.asarray(items, dtype=np.float64)
        if pts.ndim == 1:
            pts = pts.reshape(-1, 1)
        if weights is not None:
            pts = np.repeat(pts, weights, axis=0)
        self.extend_points(pts)

    def _flush_buffer(self) -> None:
        if len(self._buffer) >= self.s:
            buffered = self._buffer
            full = (len(buffered) // self.s) * self.s
            level0 = self._blocks.setdefault(0, [])
            for start in range(0, full, self.s):
                level0.append(np.array(buffered[start : start + self.s], dtype=np.float64))
            self._buffer = list(buffered[full:])
        self._carry()

    def _carry(self) -> None:
        level = 0
        while level <= max(self._blocks, default=-1):
            blocks = self._blocks.get(level, [])
            while len(blocks) >= 2:
                right = blocks.pop()
                left = blocks.pop()
                union = np.concatenate([left, right])
                kept = halve_points(
                    union, self.space, rng=self._rng, method=self.method
                )
                self._blocks.setdefault(level + 1, []).append(kept)
            if not blocks:
                self._blocks.pop(level, None)
            level += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def count(self, range_params: Any) -> float:
        """Estimated ``|P ∩ R|`` for a range of the family."""
        total = 0.0
        if self._buffer:
            buffer_pts = np.array(self._buffer, dtype=np.float64)
            total += float(self.space.contains(buffer_pts, range_params).sum())
        for level, blocks in self._blocks.items():
            weight = float(2**level)
            for block in blocks:
                total += weight * float(
                    self.space.contains(block, range_params).sum()
                )
        return total

    def fraction(self, range_params: Any) -> float:
        """Estimated ``|P ∩ R| / |P|`` (the eps-approximation guarantee)."""
        if self.is_empty:
            raise EmptySummaryError("fraction query on an empty approximation")
        return self.count(range_params) / self._n

    def size(self) -> int:
        return len(self._buffer) + sum(
            len(b) for blocks in self._blocks.values() for b in blocks
        )

    def points(self) -> List[np.ndarray]:
        """All stored (point, weight) pairs — for inspection/plotting."""
        out = [(p.copy(), 1.0) for p in self._buffer]
        for level, blocks in self._blocks.items():
            for block in blocks:
                out.extend((p.copy(), float(2**level)) for p in block)
        return out

    # ------------------------------------------------------------------
    # Merge
    # ------------------------------------------------------------------

    def compatible_with(self, other: "EpsApproximation") -> Optional[str]:
        assert isinstance(other, EpsApproximation)
        if other.space.name != self.space.name:
            return f"range space mismatch: {self.space.name} vs {other.space.name}"
        if other.s != self.s:
            return f"block size mismatch: s={self.s} vs s={other.s}"
        if other.method != self.method:
            return f"halving method mismatch: {self.method} vs {other.method}"
        return None

    def _merge_same_type(self, other: "EpsApproximation") -> None:
        assert isinstance(other, EpsApproximation)
        self._buffer.extend(p.copy() for p in other._buffer)
        for level, blocks in other._blocks.items():
            self._blocks.setdefault(level, []).extend(b.copy() for b in blocks)
        self._n += other._n
        self._flush_buffer()

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "space": self.space.name,
            "s": self.s,
            "method": self.method,
            "n": self._n,
            "buffer": [[float(c) for c in p] for p in self._buffer],
            "blocks": {
                str(level): [[[float(c) for c in p] for p in block] for block in blocks]
                for level, blocks in self._blocks.items()
            },
            "seed": int(self._rng.integers(0, 2**63 - 1)),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "EpsApproximation":
        summary = cls(
            payload["space"],
            s=payload["s"],
            method=payload["method"],
            rng=payload["seed"],
        )
        summary._buffer = [
            np.array(p, dtype=np.float64) for p in payload["buffer"]
        ]
        summary._blocks = {
            int(level): [np.array(block, dtype=np.float64) for block in blocks]
            for level, blocks in payload["blocks"].items()
        }
        summary._n = payload["n"]
        return summary
