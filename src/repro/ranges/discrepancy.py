"""Low-discrepancy halving (the merge-reduce primitive of paper Section 4).

Halving takes ``2s`` points and keeps ``s`` of them so that every range
of the family keeps close to half of its points.  The paper's
construction colors the points by a low-discrepancy coloring and keeps
one color class; the error of the halving step *is* the discrepancy.

Two colorings are provided:

- ``pair_random`` — match the points into ``s`` nearby pairs (sorted
  order in 1-D, Morton/Z-order in 2-D) and keep one point of each pair
  by a fair coin.  A range splits only the pairs that straddle its
  boundary, of which a geometric range has few when pairs are local, so
  the discrepancy is small and the per-range error is a zero-mean sum
  of coin flips — the randomized analogue the paper's quantile section
  uses, generalized to geometric ranges.

- ``greedy`` — the same pairing, but the kept endpoint of every pair is
  chosen deterministically by the classic greedy signed-coloring
  heuristic over a canonical test-range set: keep the endpoint that
  minimizes the updated sum-of-squares discrepancy.  Deterministic and
  usually ~2x lower discrepancy on the test set.
"""

from __future__ import annotations

from typing import Any, List, Tuple

import numpy as np

from ..core.exceptions import ParameterError
from ..core.rng import RngLike, resolve_rng
from .range_spaces import RangeSpace

__all__ = ["morton_order", "pair_points", "halve_points", "discrepancy_of"]


def morton_order(points: np.ndarray) -> np.ndarray:
    """Indices sorting 2-D points along the Morton (Z-order) curve.

    Coordinates are quantized to 16 bits within the bounding box of the
    input; bit interleaving then yields a locality-preserving order.
    1-D inputs fall back to plain value order.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise ParameterError(f"expected (n, d) points, got shape {pts.shape}")
    if pts.shape[1] == 1:
        return np.argsort(pts[:, 0], kind="mergesort")
    if pts.shape[1] != 2:
        raise ParameterError("morton_order supports d in {1, 2}")
    lo = pts.min(axis=0)
    span = pts.max(axis=0) - lo
    span[span == 0] = 1.0
    quantized = ((pts - lo) / span * 65535.0).astype(np.uint64)
    codes = np.zeros(len(pts), dtype=np.uint64)
    for bit in range(16):
        codes |= ((quantized[:, 0] >> np.uint64(bit)) & np.uint64(1)) << np.uint64(2 * bit)
        codes |= ((quantized[:, 1] >> np.uint64(bit)) & np.uint64(1)) << np.uint64(2 * bit + 1)
    return np.argsort(codes, kind="mergesort")


def pair_points(points: np.ndarray) -> List[Tuple[int, int]]:
    """Match an even number of points into locality-preserving pairs."""
    pts = np.asarray(points, dtype=np.float64)
    if len(pts) % 2 != 0:
        raise ParameterError(f"pairing requires an even point count, got {len(pts)}")
    order = morton_order(pts)
    return [(int(order[i]), int(order[i + 1])) for i in range(0, len(order), 2)]


def halve_points(
    points: np.ndarray,
    space: RangeSpace,
    rng: RngLike = None,
    method: str = "pair_random",
    test_budget: int = 128,
) -> np.ndarray:
    """Keep half of ``points`` with low discrepancy over ``space``.

    Returns an array of ``len(points) / 2`` points.  ``method`` is
    ``"pair_random"`` or ``"greedy"`` (see module docstring).
    """
    pts = space.check_points(points)
    pairs = pair_points(pts)
    gen = resolve_rng(rng)

    if method == "pair_random":
        choices = gen.integers(0, 2, size=len(pairs))
        keep = [pair[choice] for pair, choice in zip(pairs, choices)]
        return pts[np.array(keep, dtype=int)]

    if method == "greedy":
        ranges = space.canonical_ranges(pts, budget=test_budget, rng=gen)
        if not ranges:
            raise ParameterError("range space produced no canonical test ranges")
        membership = np.stack(
            [space.contains(pts, r).astype(np.float64) for r in ranges]
        )  # (R, n)
        disc = np.zeros(len(ranges), dtype=np.float64)
        keep: List[int] = []
        for first, second in pairs:
            delta = membership[:, first] - membership[:, second]
            # keeping `first` moves discrepancy by +delta, `second` by -delta
            if float(disc @ delta) <= 0.0:
                keep.append(first)
                disc += delta
            else:
                keep.append(second)
                disc -= delta
        return pts[np.array(keep, dtype=int)]

    raise ParameterError(
        f"unknown halving method {method!r}; choose 'pair_random' or 'greedy'"
    )


def discrepancy_of(
    original: np.ndarray,
    kept: np.ndarray,
    space: RangeSpace,
    ranges: List[Any],
) -> float:
    """Worst-range halving error ``max_R | |P∩R| - 2*|Q∩R| |``.

    This is exactly the additive counting error (at the kept points'
    doubled weight) that one halving step introduces.
    """
    worst = 0.0
    for r in ranges:
        full = space.count(original, r)
        half = space.count(kept, r)
        worst = max(worst, abs(full - 2 * half))
    return worst
