"""Event-time workloads for the decayed / windowed summaries.

The time-decay extensions need streams where *when* matters: bursts,
regime changes, diurnal cycles, late arrivals.  Each generator returns
a list of ``(item, timestamp)`` pairs, deterministic under a seed.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

import numpy as np

from ..core.exceptions import ParameterError
from ..core.rng import RngLike, resolve_rng

__all__ = [
    "regime_change_events",
    "bursty_events",
    "diurnal_events",
    "window_replay_events",
    "with_late_arrivals",
]

Event = Tuple[Any, float]


def regime_change_events(
    n: int,
    phases: Sequence[Any],
    span: float,
    noise_universe: int = 1_000,
    noise_fraction: float = 0.5,
    rng: RngLike = None,
) -> List[Event]:
    """One dominant item per equal-length phase, over uniform noise.

    ``phases`` lists the dominant item of each consecutive phase; the
    stream runs over ``[0, span)``.
    """
    if n < 1:
        raise ParameterError(f"n must be >= 1, got {n!r}")
    if not phases:
        raise ParameterError("phases must be non-empty")
    if not 0 <= noise_fraction <= 1:
        raise ParameterError(f"noise_fraction must be in [0,1], got {noise_fraction!r}")
    gen = resolve_rng(rng)
    times = np.sort(gen.random(n)) * span
    events: List[Event] = []
    for t in times:
        phase = min(int(t / span * len(phases)), len(phases) - 1)
        if gen.random() < noise_fraction:
            item: Any = int(gen.integers(0, noise_universe)) + 10**9
        else:
            item = phases[phase]
        events.append((item, float(t)))
    return events


def bursty_events(
    n: int,
    burst_item: Any,
    burst_start: float,
    burst_length: float,
    span: float,
    background_universe: int = 1_000,
    rng: RngLike = None,
) -> List[Event]:
    """Uniform background traffic plus one concentrated burst.

    Half the events form the burst (``burst_item`` inside
    ``[burst_start, burst_start + burst_length)``); the rest are
    uniform background over ``[0, span)``.
    """
    if n < 2:
        raise ParameterError(f"n must be >= 2, got {n!r}")
    if burst_length <= 0 or span <= 0:
        raise ParameterError("burst_length and span must be positive")
    gen = resolve_rng(rng)
    half = n // 2
    burst_times = burst_start + gen.random(half) * burst_length
    background_times = gen.random(n - half) * span
    events = [(burst_item, float(t)) for t in burst_times]
    events += [
        (int(gen.integers(0, background_universe)), float(t))
        for t in background_times
    ]
    events.sort(key=lambda e: e[1])
    return events


def diurnal_events(
    n: int,
    day_item: Any,
    night_item: Any,
    days: int = 3,
    day_length: float = 24.0,
    rng: RngLike = None,
) -> List[Event]:
    """Alternating day/night dominance over ``days`` cycles."""
    if n < 1 or days < 1:
        raise ParameterError("n and days must be >= 1")
    gen = resolve_rng(rng)
    span = days * day_length
    times = np.sort(gen.random(n)) * span
    events: List[Event] = []
    for t in times:
        hour = (t % day_length) / day_length
        item = day_item if hour < 0.5 else night_item
        events.append((item, float(t)))
    return events


def window_replay_events(
    n: int,
    span: float,
    universe: int = 1_000,
    skew: float = 1.5,
    late_fraction: float = 0.0,
    max_delay: float = 0.0,
    rng: RngLike = None,
) -> List[Event]:
    """A skewed event stream in *delivery* order, for window replay.

    Event timestamps are uniform over ``[0, span)`` and items are drawn
    Zipf-like (exponent ``skew``) from ``universe`` values, so every
    window stripe sees the same heavy hitters a sliding-window summary
    should surface.  ``late_fraction`` / ``max_delay`` perturb the
    delivery order while preserving each event's timestamp — the
    out-of-order input the time-mode windowed combinator must tolerate
    (see :func:`with_late_arrivals`).  Deterministic under a seed.
    """
    if n < 1:
        raise ParameterError(f"n must be >= 1, got {n!r}")
    if span <= 0:
        raise ParameterError(f"span must be positive, got {span!r}")
    if universe < 1:
        raise ParameterError(f"universe must be >= 1, got {universe!r}")
    if skew <= 1.0:
        raise ParameterError(f"skew must be > 1, got {skew!r}")
    gen = resolve_rng(rng)
    times = np.sort(gen.random(n)) * span
    items = (gen.zipf(skew, size=n) - 1) % universe
    events = [(int(item), float(t)) for item, t in zip(items, times)]
    if late_fraction > 0.0:
        return with_late_arrivals(events, late_fraction, max_delay, rng=gen)
    return events


def with_late_arrivals(
    events: Sequence[Event],
    late_fraction: float,
    max_delay: float,
    rng: RngLike = None,
) -> List[Event]:
    """Reorder delivery: a fraction of events arrive late.

    Returns the events in *delivery* order while keeping their original
    event timestamps — the input shape for testing out-of-order
    handling in the decayed/windowed summaries.
    """
    if not 0 <= late_fraction <= 1:
        raise ParameterError(f"late_fraction must be in [0,1], got {late_fraction!r}")
    if max_delay < 0:
        raise ParameterError(f"max_delay must be >= 0, got {max_delay!r}")
    gen = resolve_rng(rng)
    delivery = []
    for item, t in events:
        delay = float(gen.random() * max_delay) if gen.random() < late_fraction else 0.0
        delivery.append((t + delay, item, t))
    delivery.sort()
    return [(item, t) for _arrival, item, t in delivery]
