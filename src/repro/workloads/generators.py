"""Seeded synthetic stream generators.

The paper proves worst-case bounds over all inputs and merge sequences;
the benchmark harness exercises them with the workload families the
frequent-items literature standardly uses:

- :func:`zipf_stream` — power-law item popularity (the canonical
  heavy-hitter workload; network traffic and web logs are Zipf-like);
- :func:`uniform_stream` — no heavy hitters at all (stress for false
  positives);
- :func:`sequential_stream` — all-distinct items (maximum counter
  churn for MG/SS);
- :func:`adversarial_mg_stream` — a pattern that drives the MG
  deduction toward its ``n/(k+1)`` bound: a few genuine heavy items
  interleaved with a flood of singletons;
- :func:`mixture_stream` — planted heavy hitters over uniform noise
  with exact control of the heavy mass (ideal for precision/recall
  experiments).

All generators return ``numpy`` integer arrays and are deterministic
under a fixed seed.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.exceptions import ParameterError
from ..core.rng import RngLike, resolve_rng

__all__ = [
    "zipf_stream",
    "uniform_stream",
    "sequential_stream",
    "adversarial_mg_stream",
    "mixture_stream",
    "normal_stream",
    "value_stream",
    "pre_aggregate",
]


def pre_aggregate(items: Sequence) -> tuple:
    """Collapse a stream into ``(distinct_items, counts)``.

    The natural input for weighted batch ingestion: feeding
    ``summary.update_batch(distinct_items, counts)`` is semantically one
    weighted update per distinct item, which is how pre-aggregated
    pipelines (combiner trees, columnar scans) deliver data.  Counts come
    back as ``int64`` and distinct items keep the input dtype.
    """
    values, counts = np.unique(np.asarray(items), return_counts=True)
    return values, counts.astype(np.int64)


def _check_n(n: int) -> None:
    if n < 1:
        raise ParameterError(f"stream length n must be >= 1, got {n!r}")


def zipf_stream(
    n: int, alpha: float = 1.2, universe: int = 1_000_000, rng: RngLike = None
) -> np.ndarray:
    """Zipf-distributed item ids: item ``i`` has probability ~ ``1/i**alpha``.

    Uses an explicit normalized power-law over ``universe`` ranks (not
    ``numpy.random.zipf``, which requires ``alpha > 1`` and has an
    unbounded tail), so any ``alpha > 0`` is supported and ids stay in
    ``[0, universe)``.
    """
    _check_n(n)
    if alpha <= 0:
        raise ParameterError(f"alpha must be > 0, got {alpha!r}")
    if universe < 1:
        raise ParameterError(f"universe must be >= 1, got {universe!r}")
    gen = resolve_rng(rng)
    ranks = np.arange(1, universe + 1, dtype=np.float64)
    weights = ranks**-alpha
    weights /= weights.sum()
    return gen.choice(universe, size=n, p=weights).astype(np.int64)


def uniform_stream(n: int, universe: int = 1_000_000, rng: RngLike = None) -> np.ndarray:
    """Uniformly random item ids over ``[0, universe)``."""
    _check_n(n)
    if universe < 1:
        raise ParameterError(f"universe must be >= 1, got {universe!r}")
    gen = resolve_rng(rng)
    return gen.integers(0, universe, size=n, dtype=np.int64)


def sequential_stream(n: int, start: int = 0) -> np.ndarray:
    """All-distinct items ``start, start+1, ...`` (maximum churn)."""
    _check_n(n)
    return np.arange(start, start + n, dtype=np.int64)


def adversarial_mg_stream(
    n: int, k: int, heavy_items: int = 2, rng: RngLike = None
) -> np.ndarray:
    """Stream pushing the MG deduction toward its ``n/(k+1)`` bound.

    Half the stream is ``heavy_items`` genuinely frequent ids; the other
    half is a run of distinct singletons, each of which forces a
    decrement once the summary is full.  Shuffled so heavy occurrences
    and singletons interleave (the worst case for counter churn).
    """
    _check_n(n)
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k!r}")
    if heavy_items < 1:
        raise ParameterError(f"heavy_items must be >= 1, got {heavy_items!r}")
    gen = resolve_rng(rng)
    half = n // 2
    heavy = gen.integers(0, heavy_items, size=half, dtype=np.int64)
    # singleton ids live far away from the heavy ids
    singletons = np.arange(10**9, 10**9 + (n - half), dtype=np.int64)
    stream = np.concatenate([heavy, singletons])
    gen.shuffle(stream)
    return stream


def mixture_stream(
    n: int,
    heavy_items: Sequence[int],
    heavy_fraction: float,
    universe: int = 1_000_000,
    rng: RngLike = None,
) -> np.ndarray:
    """Planted heavy hitters over uniform noise.

    ``heavy_fraction`` of the stream mass is split evenly across
    ``heavy_items``; the rest is uniform over ``[0, universe)``
    (collisions with heavy ids are possible but negligible for large
    universes).
    """
    _check_n(n)
    if not 0 <= heavy_fraction <= 1:
        raise ParameterError(
            f"heavy_fraction must be in [0, 1], got {heavy_fraction!r}"
        )
    if not heavy_items and heavy_fraction > 0:
        raise ParameterError("heavy_fraction > 0 requires at least one heavy item")
    gen = resolve_rng(rng)
    n_heavy = int(round(n * heavy_fraction))
    heavy_part = (
        np.array(heavy_items, dtype=np.int64)[
            gen.integers(0, len(heavy_items), size=n_heavy)
        ]
        if n_heavy
        else np.empty(0, dtype=np.int64)
    )
    noise = gen.integers(0, universe, size=n - n_heavy, dtype=np.int64)
    stream = np.concatenate([heavy_part, noise])
    gen.shuffle(stream)
    return stream


def normal_stream(
    n: int, mean: float = 0.0, std: float = 1.0, rng: RngLike = None
) -> np.ndarray:
    """Real-valued normal stream (for quantile summaries)."""
    _check_n(n)
    if std <= 0:
        raise ParameterError(f"std must be > 0, got {std!r}")
    gen = resolve_rng(rng)
    return gen.normal(mean, std, size=n)


def value_stream(
    n: int, distribution: str = "uniform", rng: RngLike = None
) -> np.ndarray:
    """Real-valued stream for quantile/range experiments.

    ``distribution`` is one of ``"uniform"`` (on [0,1)), ``"normal"``,
    ``"exponential"``, ``"lognormal"``, ``"bimodal"``.
    """
    _check_n(n)
    gen = resolve_rng(rng)
    if distribution == "uniform":
        return gen.random(n)
    if distribution == "normal":
        return gen.normal(0.0, 1.0, size=n)
    if distribution == "exponential":
        return gen.exponential(1.0, size=n)
    if distribution == "lognormal":
        return gen.lognormal(0.0, 1.0, size=n)
    if distribution == "bimodal":
        modes = gen.integers(0, 2, size=n)
        return np.where(
            modes == 0, gen.normal(-3.0, 0.5, size=n), gen.normal(3.0, 0.5, size=n)
        )
    raise ParameterError(
        f"unknown distribution {distribution!r}; choose from uniform, normal, "
        "exponential, lognormal, bimodal"
    )
