"""Stream manipulation utilities: chunking, interleaving, sorting.

Distributed experiments partition one logical stream into per-node
shards; these helpers produce the shard layouts used by the benchmark
harness (see also :mod:`repro.distributed.partition` for the
partitioner objects built on top of them).
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

import numpy as np

from ..core.exceptions import ParameterError
from ..core.rng import RngLike, resolve_rng

__all__ = ["chunk_evenly", "chunk_sizes", "interleave", "shuffled", "sorted_copy"]


def chunk_evenly(stream: np.ndarray, parts: int) -> List[np.ndarray]:
    """Split ``stream`` into ``parts`` contiguous chunks of near-equal size.

    The first ``len(stream) % parts`` chunks get one extra element, so
    sizes differ by at most one and nothing is dropped.
    """
    if parts < 1:
        raise ParameterError(f"parts must be >= 1, got {parts!r}")
    if parts > len(stream):
        raise ParameterError(
            f"cannot split a stream of {len(stream)} items into {parts} nonempty parts"
        )
    return [np.array(c) for c in np.array_split(stream, parts)]


def chunk_sizes(stream: np.ndarray, sizes: Sequence[int]) -> List[np.ndarray]:
    """Split ``stream`` into consecutive chunks of the given sizes."""
    if any(size < 0 for size in sizes):
        raise ParameterError(f"chunk sizes must be non-negative, got {list(sizes)!r}")
    if sum(sizes) != len(stream):
        raise ParameterError(
            f"chunk sizes sum to {sum(sizes)} but the stream has {len(stream)} items"
        )
    out: List[np.ndarray] = []
    offset = 0
    for size in sizes:
        out.append(np.array(stream[offset : offset + size]))
        offset += size
    return out


def interleave(chunks: Sequence[np.ndarray]) -> np.ndarray:
    """Round-robin interleaving of chunks back into one stream."""
    if not chunks:
        raise ParameterError("interleave requires at least one chunk")
    iterators: List[Iterator] = [iter(c) for c in chunks]
    out = []
    live = list(iterators)
    while live:
        nxt = []
        for it in live:
            try:
                out.append(next(it))
                nxt.append(it)
            except StopIteration:
                pass
        live = nxt
    return np.array(out)


def shuffled(stream: np.ndarray, rng: RngLike = None) -> np.ndarray:
    """Return a shuffled copy of ``stream`` (the input is untouched)."""
    gen = resolve_rng(rng)
    out = np.array(stream)
    gen.shuffle(out)
    return out


def sorted_copy(stream: np.ndarray, descending: bool = False) -> np.ndarray:
    """Return a sorted copy (the adversarial layout for quantile shards)."""
    out = np.sort(np.array(stream))
    if descending:
        out = out[::-1].copy()
    return out
