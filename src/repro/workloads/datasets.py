"""Named synthetic datasets used by examples and benchmarks.

The paper is a theory paper and ships no datasets; the frequent-items /
quantiles literature it builds on standardly evaluates on network
packet traces (CAIDA), web query logs, and sensor feeds.  None of those
are available offline, so each recipe below is a documented *synthetic
stand-in* that reproduces the statistical property the real data
contributes to the experiments (skew for heavy hitters, smooth + heavy
tail for quantiles, bounded drift for sensors).  See DESIGN.md §6.

Every recipe is deterministic under a fixed seed and returns a plain
``numpy`` array so the calling code cannot tell it apart from a loaded
trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from ..core.exceptions import ParameterError
from ..core.rng import RngLike, resolve_rng
from .generators import uniform_stream, value_stream, zipf_stream

__all__ = ["DatasetRecipe", "DATASETS", "load_dataset", "dataset_names"]


@dataclass(frozen=True)
class DatasetRecipe:
    """A named synthetic dataset with its provenance documentation."""

    name: str
    kind: str  # "items" (integer ids) or "values" (floats)
    stands_in_for: str
    build: Callable[[int, RngLike], np.ndarray]


def _caida_like(n: int, rng: RngLike) -> np.ndarray:
    # Flow-size distributions in packet traces are Zipf with alpha ~ 1.1-1.3.
    return zipf_stream(n, alpha=1.2, universe=200_000, rng=rng)


def _weblog_like(n: int, rng: RngLike) -> np.ndarray:
    # Query logs are more skewed (alpha ~ 0.8-1.0) with a huge universe.
    return zipf_stream(n, alpha=0.9, universe=1_000_000, rng=rng)


def _flat_traffic(n: int, rng: RngLike) -> np.ndarray:
    # DDoS-like scan traffic: near-uniform source addresses.
    return uniform_stream(n, universe=500_000, rng=rng)


def _sensor_like(n: int, rng: RngLike) -> np.ndarray:
    # Temperature-style sensor feed: slow sinusoidal drift + Gaussian noise.
    gen = resolve_rng(rng)
    t = np.arange(n, dtype=np.float64)
    drift = 20.0 + 5.0 * np.sin(2 * np.pi * t / max(n, 1))
    return drift + gen.normal(0.0, 0.8, size=n)


def _latency_like(n: int, rng: RngLike) -> np.ndarray:
    # RPC latencies: lognormal body with a heavy upper tail.
    gen = resolve_rng(rng)
    body = gen.lognormal(mean=2.0, sigma=0.5, size=n)
    tail_mask = gen.random(n) < 0.01
    body[tail_mask] *= gen.uniform(5, 50, size=int(tail_mask.sum()))
    return body


def _uniform_values(n: int, rng: RngLike) -> np.ndarray:
    return value_stream(n, "uniform", rng=rng)


DATASETS: Dict[str, DatasetRecipe] = {
    recipe.name: recipe
    for recipe in [
        DatasetRecipe(
            "caida_like",
            "items",
            "CAIDA backbone packet trace (per-flow packet counts)",
            _caida_like,
        ),
        DatasetRecipe(
            "weblog_like",
            "items",
            "web search query log (AOL/MSN-style)",
            _weblog_like,
        ),
        DatasetRecipe(
            "flat_traffic",
            "items",
            "scan/DDoS traffic with near-uniform sources",
            _flat_traffic,
        ),
        DatasetRecipe(
            "sensor_like",
            "values",
            "environmental sensor feed (drift + noise)",
            _sensor_like,
        ),
        DatasetRecipe(
            "latency_like",
            "values",
            "datacenter RPC latency measurements",
            _latency_like,
        ),
        DatasetRecipe(
            "uniform_values",
            "values",
            "uniform reference distribution for quantile error",
            _uniform_values,
        ),
    ]
}


def dataset_names() -> list[str]:
    """Sorted names of all available dataset recipes."""
    return sorted(DATASETS)


def load_dataset(name: str, n: int, rng: RngLike = None) -> np.ndarray:
    """Materialize ``n`` records of the named synthetic dataset."""
    try:
        recipe = DATASETS[name]
    except KeyError:
        raise ParameterError(
            f"unknown dataset {name!r}; available: {dataset_names()}"
        ) from None
    return recipe.build(n, rng)
