"""Synthetic workloads: stream generators, shard layouts, named datasets."""

from .datasets import DATASETS, DatasetRecipe, dataset_names, load_dataset
from .generators import (
    adversarial_mg_stream,
    mixture_stream,
    normal_stream,
    pre_aggregate,
    sequential_stream,
    uniform_stream,
    value_stream,
    zipf_stream,
)
from .streams import chunk_evenly, chunk_sizes, interleave, shuffled, sorted_copy
from .timeseries import (
    bursty_events,
    diurnal_events,
    regime_change_events,
    window_replay_events,
    with_late_arrivals,
)

__all__ = [
    "zipf_stream",
    "uniform_stream",
    "sequential_stream",
    "adversarial_mg_stream",
    "mixture_stream",
    "normal_stream",
    "value_stream",
    "pre_aggregate",
    "chunk_evenly",
    "chunk_sizes",
    "interleave",
    "shuffled",
    "sorted_copy",
    "DATASETS",
    "DatasetRecipe",
    "dataset_names",
    "load_dataset",
    "regime_change_events",
    "bursty_events",
    "diurnal_events",
    "window_replay_events",
    "with_late_arrivals",
]
