"""Bloom filter — mergeable approximate set membership.

Bit arrays OR together, so Bloom filters over the same geometry and
seed merge losslessly into the filter of the set union — the simplest
lattice-mergeable summary, included both for completeness of the
"known mergeable summaries" landscape the paper departs from and as a
building block for the examples.

False-positive rate after ``d`` distinct insertions:
``(1 - exp(-h*d/m)) ** h`` for ``m`` bits and ``h`` hash functions.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional

import numpy as np

from ..core.base import Summary, normalize_batch
from ..core.exceptions import ParameterError
from ..core.hashing import hash_batch, stable_hash
from ..core.registry import register_summary

_MASK64 = (1 << 64) - 1

__all__ = ["BloomFilter"]


@register_summary("bloom_filter")
class BloomFilter(Summary):
    """Bloom filter with ``bits`` bits and ``hashes`` hash functions."""

    def __init__(self, bits: int, hashes: int = 4, seed: int = 0) -> None:
        super().__init__()
        if bits < 8:
            raise ParameterError(f"bits must be >= 8, got {bits!r}")
        if hashes < 1:
            raise ParameterError(f"hashes must be >= 1, got {hashes!r}")
        self.bits = int(bits)
        self.hashes = int(hashes)
        self.seed = int(seed)
        self._array = np.zeros(self.bits, dtype=bool)

    @classmethod
    def for_capacity(
        cls, capacity: int, fp_rate: float = 0.01, seed: int = 0
    ) -> "BloomFilter":
        """Size the filter for ``capacity`` distinct items at ``fp_rate``."""
        if capacity < 1:
            raise ParameterError(f"capacity must be >= 1, got {capacity!r}")
        if not 0 < fp_rate < 1:
            raise ParameterError(f"fp_rate must be in (0, 1), got {fp_rate!r}")
        bits = max(8, math.ceil(-capacity * math.log(fp_rate) / (math.log(2) ** 2)))
        hashes = max(1, round(bits / capacity * math.log(2)))
        return cls(bits=bits, hashes=hashes, seed=seed)

    def _positions(self, item: Any) -> np.ndarray:
        # double hashing: h1 + i*h2 gives `hashes` positions from 2 hashes
        # (64-bit wrapping arithmetic, so the vectorized uint64 batch path
        # lands on identical bits)
        h1 = stable_hash(item, seed=self.seed)
        h2 = stable_hash(item, seed=self.seed + 0x9E3779B9) | 1
        return np.array(
            [((h1 + i * h2) & _MASK64) % self.bits for i in range(self.hashes)],
            dtype=np.int64,
        )

    def update(self, item: Any, weight: int = 1) -> None:
        if weight <= 0:
            raise ParameterError(f"weight must be positive, got {weight!r}")
        self._array[self._positions(item)] = True
        self._n += weight

    def update_batch(self, items, weights=None) -> None:
        items, weights, total = normalize_batch(items, weights)
        if not len(items):
            return
        h1 = hash_batch(items, seed=self.seed)
        h2 = hash_batch(items, seed=self.seed + 0x9E3779B9) | np.uint64(1)
        probes = np.arange(self.hashes, dtype=np.uint64)
        positions = (h1[:, None] + probes[None, :] * h2[:, None]) % np.uint64(self.bits)
        self._array[positions.astype(np.int64).ravel()] = True
        self._n += total

    def might_contain(self, item: Any) -> bool:
        """False means definitely absent; True means probably present."""
        return bool(self._array[self._positions(item)].all())

    def __contains__(self, item: Any) -> bool:
        return self.might_contain(item)

    @property
    def fill_fraction(self) -> float:
        """Fraction of set bits (drives the false-positive rate)."""
        return float(self._array.mean())

    def false_positive_rate(self) -> float:
        """Estimated current false-positive probability."""
        return float(self.fill_fraction**self.hashes)

    def size(self) -> int:
        """Bit count (the space bound)."""
        return self.bits

    def compatible_with(self, other: "BloomFilter") -> Optional[str]:
        assert isinstance(other, BloomFilter)
        mine = (self.bits, self.hashes, self.seed)
        theirs = (other.bits, other.hashes, other.seed)
        if mine != theirs:
            return f"geometry/seed mismatch: {mine} vs {theirs}"
        return None

    def _merge_same_type(self, other: "BloomFilter") -> None:
        assert isinstance(other, BloomFilter)
        self._array |= other._array
        self._n += other._n

    def to_dict(self) -> Dict[str, Any]:
        return {
            "bits": self.bits,
            "hashes": self.hashes,
            "seed": self.seed,
            "n": self._n,
            "set_positions": np.flatnonzero(self._array).tolist(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "BloomFilter":
        sketch = cls(
            bits=payload["bits"], hashes=payload["hashes"], seed=payload["seed"]
        )
        sketch._array[np.array(payload["set_positions"], dtype=np.int64)] = True
        sketch._n = payload["n"]
        return sketch
