"""AMS (tug-of-war) sketch for the second frequency moment F2.

Alon, Matias and Szegedy's estimator: each cell holds
``Z = sum_x f(x) * sigma(x)`` for a random sign function ``sigma``;
``E[Z^2] = F2`` and averaging/median-ing over independent cells
concentrates the estimate.  The sketch is *linear* — merging is
cell-wise addition — making it the F2 member of the trivially
mergeable linear-sketch family the paper contrasts its deterministic
summaries with.

Geometry: ``depth`` rows (medianed) of ``width`` independent estimators
(averaged).  Standard guarantee: relative error ``O(1/sqrt(width))``
with probability ``1 - 2^-Omega(depth)``.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, Optional

import numpy as np

from ..core.base import Summary, normalize_batch
from ..core.exceptions import ParameterError
from ..core.hashing import stable_hash
from ..core.registry import register_summary

__all__ = ["AmsF2Sketch"]


@register_summary("ams_f2")
class AmsF2Sketch(Summary):
    """Tug-of-war F2 sketch: ``depth`` x ``width`` signed accumulators."""

    def __init__(self, width: int = 16, depth: int = 5, seed: int = 0) -> None:
        super().__init__()
        if width < 1 or depth < 1:
            raise ParameterError(
                f"width and depth must be >= 1, got {width!r} x {depth!r}"
            )
        if depth % 2 == 0:
            depth += 1  # odd depth -> median is an actual estimate
        self.width = int(width)
        self.depth = int(depth)
        self.seed = int(seed)
        self._cells = np.zeros((self.depth, self.width), dtype=np.int64)

    def _signs(self, item: Any) -> np.ndarray:
        h = stable_hash(item, seed=self.seed)
        bits = np.array(
            [
                (stable_hash(h ^ (row * self.width + col), seed=self.seed + 1) & 1)
                for row in range(self.depth)
                for col in range(self.width)
            ],
            dtype=np.int64,
        ).reshape(self.depth, self.width)
        return 2 * bits - 1

    def update(self, item: Any, weight: int = 1) -> None:
        if weight <= 0:
            raise ParameterError(f"weight must be positive, got {weight!r}")
        self._cells += weight * self._signs(item)
        self._n += weight

    def update_batch(self, items, weights=None) -> None:
        # the sign matrix is the expensive part (depth*width hashes per
        # item), so pre-aggregate and pay it once per distinct item
        items, weights, total = normalize_batch(items, weights)
        aggregated: Counter = Counter()
        if weights is None:
            aggregated.update(
                items.tolist() if hasattr(items, "tolist") else items
            )
        else:
            for item, weight in zip(items, weights.tolist()):
                aggregated[item] += weight
        for item, weight in aggregated.items():
            self._cells += weight * self._signs(item)
        self._n += total

    def f2(self) -> float:
        """Estimated second frequency moment ``sum_x f(x)^2``."""
        squares = self._cells.astype(np.float64) ** 2
        return float(np.median(squares.mean(axis=1)))

    def size(self) -> int:
        return self.width * self.depth

    def compatible_with(self, other: "AmsF2Sketch") -> Optional[str]:
        assert isinstance(other, AmsF2Sketch)
        mine = (self.width, self.depth, self.seed)
        theirs = (other.width, other.depth, other.seed)
        if mine != theirs:
            return f"geometry/seed mismatch: {mine} vs {theirs}"
        return None

    def _merge_same_type(self, other: "AmsF2Sketch") -> None:
        assert isinstance(other, AmsF2Sketch)
        self._cells += other._cells
        self._n += other._n

    def to_dict(self) -> Dict[str, Any]:
        return {
            "width": self.width,
            "depth": self.depth,
            "seed": self.seed,
            "n": self._n,
            "cells": self._cells.tolist(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "AmsF2Sketch":
        sketch = cls(
            width=payload["width"], depth=payload["depth"], seed=payload["seed"]
        )
        sketch._cells = np.array(payload["cells"], dtype=np.int64)
        sketch._n = payload["n"]
        return sketch
