"""Other mergeable summaries from the paper's landscape (Section 1).

The paper positions its contributions against summaries already known
to be mergeable: order-statistics F0 sketches (KMV), lattice summaries
(HyperLogLog, Bloom filters) and linear sketches (AMS).  Implemented
here both for completeness and as baselines/building blocks.
"""

from .ams import AmsF2Sketch
from .bloom import BloomFilter
from .hyperloglog import HyperLogLog
from .kmv import KMinValues

__all__ = ["KMinValues", "HyperLogLog", "BloomFilter", "AmsF2Sketch"]
