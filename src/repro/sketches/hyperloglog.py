"""HyperLogLog distinct-count summary.

The register-maximum structure (Flajolet et al.): hash each item, route
it to one of ``m = 2**p`` registers by its low ``p`` bits, and keep per
register the maximum number of leading zeros (+1) of the remaining
bits.  Registers combine by element-wise ``max``, so HyperLogLog is a
*lattice* summary — fully mergeable with a lossless merge, the second
classic F0 example the paper's related-work discussion points to
(alongside KMV, :mod:`repro.sketches.kmv`).

Estimation uses the standard HLL estimator with the small-range
linear-counting correction; 64-bit hashing makes the large-range
correction unnecessary at any realistic cardinality.  Relative error
``~1.04 / sqrt(m)``.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional

import numpy as np

from ..core.base import Summary
from ..core.exceptions import ParameterError
from ..core.hashing import stable_hash
from ..core.registry import register_summary

__all__ = ["HyperLogLog"]


def _alpha(m: int) -> float:
    if m == 16:
        return 0.673
    if m == 32:
        return 0.697
    if m == 64:
        return 0.709
    return 0.7213 / (1.0 + 1.079 / m)


@register_summary("hyperloglog")
class HyperLogLog(Summary):
    """HyperLogLog with ``2**p`` registers (``4 <= p <= 18``)."""

    def __init__(self, p: int = 12, seed: int = 0) -> None:
        super().__init__()
        if not 4 <= p <= 18:
            raise ParameterError(f"precision p must be in [4, 18], got {p!r}")
        self.p = int(p)
        self.m = 1 << self.p
        self.seed = int(seed)
        self._registers = np.zeros(self.m, dtype=np.uint8)

    def update(self, item: Any, weight: int = 1) -> None:
        if weight <= 0:
            raise ParameterError(f"weight must be positive, got {weight!r}")
        h = stable_hash(item, seed=self.seed)
        register = h & (self.m - 1)
        remaining = h >> self.p
        # rank = leading-zero count of the remaining (64 - p) bits, + 1
        width = 64 - self.p
        rank = width - remaining.bit_length() + 1
        if rank > self._registers[register]:
            self._registers[register] = rank
        self._n += weight

    def distinct(self) -> float:
        """Estimated number of distinct items observed."""
        registers = self._registers.astype(np.float64)
        estimate = _alpha(self.m) * self.m * self.m / np.sum(2.0**-registers)
        zeros = int(np.count_nonzero(self._registers == 0))
        if estimate <= 2.5 * self.m and zeros:
            return self.m * math.log(self.m / zeros)  # linear counting
        return float(estimate)

    @property
    def relative_error(self) -> float:
        """Expected relative standard error ``1.04/sqrt(m)``."""
        return 1.04 / math.sqrt(self.m)

    def size(self) -> int:
        return self.m

    def compatible_with(self, other: "HyperLogLog") -> Optional[str]:
        assert isinstance(other, HyperLogLog)
        if (self.p, self.seed) != (other.p, other.seed):
            return (
                f"parameter mismatch: (p={self.p}, seed={self.seed}) vs "
                f"(p={other.p}, seed={other.seed})"
            )
        return None

    def _merge_same_type(self, other: "HyperLogLog") -> None:
        assert isinstance(other, HyperLogLog)
        np.maximum(self._registers, other._registers, out=self._registers)
        self._n += other._n

    def to_dict(self) -> Dict[str, Any]:
        return {
            "p": self.p,
            "seed": self.seed,
            "n": self._n,
            "registers": self._registers.tolist(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "HyperLogLog":
        sketch = cls(p=payload["p"], seed=payload["seed"])
        sketch._registers = np.array(payload["registers"], dtype=np.uint8)
        sketch._n = payload["n"]
        return sketch
