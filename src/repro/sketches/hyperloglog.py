"""HyperLogLog distinct-count summary.

The register-maximum structure (Flajolet et al.): hash each item, route
it to one of ``m = 2**p`` registers by its low ``p`` bits, and keep per
register the maximum number of leading zeros (+1) of the remaining
bits.  Registers combine by element-wise ``max``, so HyperLogLog is a
*lattice* summary — fully mergeable with a lossless merge, the second
classic F0 example the paper's related-work discussion points to
(alongside KMV, :mod:`repro.sketches.kmv`).

Estimation uses the standard HLL estimator with the small-range
linear-counting correction; 64-bit hashing makes the large-range
correction unnecessary at any realistic cardinality.  Relative error
``~1.04 / sqrt(m)``.
"""

from __future__ import annotations

import base64
import math
from typing import Any, Dict, Iterable, Optional, Sequence

import numpy as np

from ..core.base import Summary, normalize_batch
from ..core.exceptions import ParameterError
from ..core.hashing import hash_batch, stable_hash
from ..core.registry import register_summary

__all__ = ["HyperLogLog"]


def _bit_length_u64(x: np.ndarray) -> np.ndarray:
    """Vectorized ``int.bit_length`` over a ``uint64`` array.

    Smears the top set bit downward, then popcounts via the SWAR
    reduction — exact for all 64-bit values, unlike a ``log2`` in
    float64 which rounds near ``2**53``.
    """
    x = x.astype(np.uint64, copy=True)
    for shift in (1, 2, 4, 8, 16, 32):
        x |= x >> np.uint64(shift)
    # SWAR popcount
    m1 = np.uint64(0x5555555555555555)
    m2 = np.uint64(0x3333333333333333)
    m4 = np.uint64(0x0F0F0F0F0F0F0F0F)
    h01 = np.uint64(0x0101010101010101)
    x -= (x >> np.uint64(1)) & m1
    x = (x & m2) + ((x >> np.uint64(2)) & m2)
    x = (x + (x >> np.uint64(4))) & m4
    return (x * h01) >> np.uint64(56)


def _alpha(m: int) -> float:
    if m == 16:
        return 0.673
    if m == 32:
        return 0.697
    if m == 64:
        return 0.709
    return 0.7213 / (1.0 + 1.079 / m)


@register_summary("hyperloglog")
class HyperLogLog(Summary):
    """HyperLogLog with ``2**p`` registers (``4 <= p <= 18``)."""

    def __init__(self, p: int = 12, seed: int = 0) -> None:
        super().__init__()
        if not 4 <= p <= 18:
            raise ParameterError(f"precision p must be in [4, 18], got {p!r}")
        self.p = int(p)
        self.m = 1 << self.p
        self.seed = int(seed)
        self._registers = np.zeros(self.m, dtype=np.uint8)

    def update(self, item: Any, weight: int = 1) -> None:
        if weight <= 0:
            raise ParameterError(f"weight must be positive, got {weight!r}")
        h = stable_hash(item, seed=self.seed)
        register = h & (self.m - 1)
        remaining = h >> self.p
        # rank = leading-zero count of the remaining (64 - p) bits, + 1
        width = 64 - self.p
        rank = width - remaining.bit_length() + 1
        if rank > self._registers[register]:
            self._registers[register] = rank
        self._n += weight

    def update_batch(
        self,
        items: Iterable[Any],
        weights: Optional[Sequence[int]] = None,
    ) -> None:
        items, weights, total = normalize_batch(items, weights)
        if not len(items):
            return
        hashes = hash_batch(items, seed=self.seed)
        registers = (hashes & np.uint64(self.m - 1)).astype(np.int64)
        remaining = hashes >> np.uint64(self.p)
        ranks = (
            np.uint64(64 - self.p) - _bit_length_u64(remaining) + np.uint64(1)
        ).astype(np.uint8)
        np.maximum.at(self._registers, registers, ranks)
        self._n += total

    def distinct(self) -> float:
        """Estimated number of distinct items observed."""
        registers = self._registers.astype(np.float64)
        estimate = _alpha(self.m) * self.m * self.m / np.sum(2.0**-registers)
        zeros = int(np.count_nonzero(self._registers == 0))
        if estimate <= 2.5 * self.m and zeros:
            return self.m * math.log(self.m / zeros)  # linear counting
        return float(estimate)

    @property
    def relative_error(self) -> float:
        """Expected relative standard error ``1.04/sqrt(m)``."""
        return 1.04 / math.sqrt(self.m)

    def size(self) -> int:
        return self.m

    def compatible_with(self, other: "HyperLogLog") -> Optional[str]:
        assert isinstance(other, HyperLogLog)
        if (self.p, self.seed) != (other.p, other.seed):
            return (
                f"parameter mismatch: (p={self.p}, seed={self.seed}) vs "
                f"(p={other.p}, seed={other.seed})"
            )
        return None

    def _merge_same_type(self, other: "HyperLogLog") -> None:
        assert isinstance(other, HyperLogLog)
        np.maximum(self._registers, other._registers, out=self._registers)
        self._n += other._n

    def _merge_many_same_type(self, others: Sequence["HyperLogLog"]) -> None:
        # lattice join over the whole fan-in: one register-wise max
        self._registers = np.maximum.reduce(
            [self._registers] + [o._registers for o in others]
        )
        self._n += sum(o._n for o in others)

    def to_dict(self) -> Dict[str, Any]:
        # registers travel as base64 of the raw uint8 buffer — a p=18
        # sketch is ~350 KB as a JSON int list but 350 KB/3*4 as base64
        return {
            "p": self.p,
            "seed": self.seed,
            "n": self._n,
            "registers": base64.b64encode(self._registers.tobytes()).decode("ascii"),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "HyperLogLog":
        sketch = cls(p=payload["p"], seed=payload["seed"])
        registers = payload["registers"]
        if isinstance(registers, str):
            decoded = np.frombuffer(base64.b64decode(registers), dtype=np.uint8)
            if len(decoded) != sketch.m:
                raise ParameterError(
                    f"register payload holds {len(decoded)} registers, "
                    f"expected {sketch.m} for p={sketch.p}"
                )
            sketch._registers = decoded.copy()
        else:  # legacy int-list wire form
            sketch._registers = np.array(registers, dtype=np.uint8)
        sketch._n = payload["n"]
        return sketch
