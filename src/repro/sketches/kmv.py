"""K-minimum-values (KMV) distinct-count summary.

The paper's introduction classifies F0 (distinct count) estimation as a
known *mergeable* problem; KMV (Bar-Yossef et al.) is the classic
order-statistics construction:

- hash every item to a uniform value in ``[0, 1)`` (the hash is a
  function of the item, so duplicates collapse — exactly what distinct
  counting needs);
- keep the ``k`` smallest *distinct* hash values;
- when full, estimate ``F0 ~= (k - 1) / max_kept``.

Merging is the union of the kept sets trimmed back to the ``k``
smallest — the result is exactly the KMV summary of the union, so the
merge is lossless in distribution and can be repeated arbitrarily: the
textbook example of a fully mergeable randomized summary.  Both
summaries must share the hash seed (the coordination requirement all
hash-based mergeable summaries carry).

Relative error is ``O(1/sqrt(k))`` with high probability.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Optional, Set

import numpy as np

from ..core.base import Summary, normalize_batch
from ..core.exceptions import ParameterError
from ..core.hashing import hash_batch, stable_hash
from ..core.registry import register_summary

__all__ = ["KMinValues"]

_SCALE = float(1 << 64)


class _BoundedMinSet:
    """The ``k`` smallest *distinct* integers offered so far.

    A set for O(1) duplicate rejection plus a max-heap (negated values)
    for O(log k) eviction of the current maximum.
    """

    def __init__(self, k: int) -> None:
        self._k = k
        self._members: Set[int] = set()
        self._heap: List[int] = []  # negated values

    def __len__(self) -> int:
        return len(self._members)

    def offer(self, value: int) -> None:
        if value in self._members:
            return
        if len(self._members) < self._k:
            self._members.add(value)
            heapq.heappush(self._heap, -value)
        elif value < -self._heap[0]:
            evicted = -heapq.heapreplace(self._heap, -value)
            self._members.discard(evicted)
            self._members.add(value)

    def values(self) -> List[int]:
        return sorted(self._members)


@register_summary("k_min_values")
class KMinValues(Summary):
    """KMV distinct-count sketch keeping the ``k`` smallest hash values."""

    def __init__(self, k: int, seed: int = 0) -> None:
        super().__init__()
        if k < 2:
            raise ParameterError(f"k must be >= 2, got {k!r}")
        self.k = int(k)
        self.seed = int(seed)
        self._keep = _BoundedMinSet(self.k)

    def update(self, item: Any, weight: int = 1) -> None:
        """Observe ``item``; ``weight`` counts occurrences toward ``n``
        but cannot change the distinct count."""
        if weight <= 0:
            raise ParameterError(f"weight must be positive, got {weight!r}")
        self._keep.offer(stable_hash(item, seed=self.seed))
        self._n += weight

    def update_batch(self, items, weights=None) -> None:
        items, weights, total = normalize_batch(items, weights)
        if not len(items):
            return
        # hash the whole batch at once; duplicates collapse before the
        # heap ever sees them
        for h in np.unique(hash_batch(items, seed=self.seed)).tolist():
            self._keep.offer(h)
        self._n += total

    def distinct(self) -> float:
        """Estimated number of distinct items observed."""
        values = self._keep.values()
        if len(values) < self.k:
            return float(len(values))
        return (self.k - 1) / (values[-1] / _SCALE)

    def size(self) -> int:
        return len(self._keep)

    @property
    def relative_error(self) -> float:
        """Expected relative standard error ``~1/sqrt(k - 2)``."""
        return 1.0 / max(1.0, (self.k - 2)) ** 0.5

    def compatible_with(self, other: "KMinValues") -> Optional[str]:
        assert isinstance(other, KMinValues)
        if (self.k, self.seed) != (other.k, other.seed):
            return (
                f"parameter mismatch: (k={self.k}, seed={self.seed}) vs "
                f"(k={other.k}, seed={other.seed})"
            )
        return None

    def _merge_same_type(self, other: "KMinValues") -> None:
        assert isinstance(other, KMinValues)
        for value in other._keep.values():
            self._keep.offer(value)
        self._n += other._n

    def to_dict(self) -> Dict[str, Any]:
        return {
            "k": self.k,
            "seed": self.seed,
            "n": self._n,
            "values": list(self._keep.values()),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "KMinValues":
        sketch = cls(k=payload["k"], seed=payload["seed"])
        for value in payload["values"]:
            sketch._keep.offer(int(value))
        sketch._n = payload["n"]
        return sketch
