"""Distributed-aggregation substrate: partitioners, topologies, simulator."""

from .continuous import ContinuousAggregation, EpochReport
from .node import Node
from .partition import (
    PARTITIONERS,
    ContiguousPartitioner,
    Partitioner,
    SkewedSizePartitioner,
    SortedPartitioner,
    UniformRandomPartitioner,
)
from .simulator import AggregationResult, run_aggregation
from .topology import (
    TOPOLOGIES,
    MergeSchedule,
    balanced_tree,
    build_topology,
    chain,
    kary_tree,
    random_tree,
    star,
)

__all__ = [
    "Node",
    "Partitioner",
    "ContiguousPartitioner",
    "UniformRandomPartitioner",
    "SortedPartitioner",
    "SkewedSizePartitioner",
    "PARTITIONERS",
    "MergeSchedule",
    "balanced_tree",
    "chain",
    "star",
    "kary_tree",
    "random_tree",
    "build_topology",
    "TOPOLOGIES",
    "AggregationResult",
    "run_aggregation",
    "ContinuousAggregation",
    "EpochReport",
]
