"""Distributed-aggregation substrate: partitioners, topologies, simulator,
fault injection, and coordinator checkpoint/recovery."""

from .continuous import ContinuousAggregation, EpochReport
from .faults import FaultModel, FaultStats, MergeLedger, RetryPolicy, corrupt_payload
from .node import Node
from .recovery import (
    Checkpoint,
    CheckpointStore,
    CoordinatorCrash,
    FileCheckpointStore,
    InMemoryCheckpointStore,
)
from .partition import (
    PARTITIONERS,
    ContiguousPartitioner,
    Partitioner,
    SkewedSizePartitioner,
    SortedPartitioner,
    UniformRandomPartitioner,
)
from .simulator import AggregationResult, plan_merge_waves, run_aggregation
from .topology import (
    TOPOLOGIES,
    MergeSchedule,
    balanced_tree,
    build_topology,
    chain,
    kary_tree,
    random_tree,
    star,
)

__all__ = [
    "Node",
    "Partitioner",
    "ContiguousPartitioner",
    "UniformRandomPartitioner",
    "SortedPartitioner",
    "SkewedSizePartitioner",
    "PARTITIONERS",
    "MergeSchedule",
    "balanced_tree",
    "chain",
    "star",
    "kary_tree",
    "random_tree",
    "build_topology",
    "TOPOLOGIES",
    "AggregationResult",
    "run_aggregation",
    "plan_merge_waves",
    "ContinuousAggregation",
    "EpochReport",
    "FaultModel",
    "FaultStats",
    "MergeLedger",
    "RetryPolicy",
    "corrupt_payload",
    "Checkpoint",
    "CheckpointStore",
    "CoordinatorCrash",
    "FileCheckpointStore",
    "InMemoryCheckpointStore",
]
