"""Dataset partitioners: how a logical dataset lands on nodes.

Mergeability must hold for *any* partition of the data; the
partitioners below realize the layouts that stress different failure
modes:

- :class:`UniformRandomPartitioner` — iid shards (the easy case);
- :class:`ContiguousPartitioner` — stream order split (the MapReduce
  case);
- :class:`SortedPartitioner` — value-sorted contiguous shards: every
  node sees a disjoint value range, the adversarial layout for quantile
  and sample-based summaries;
- :class:`SkewedSizePartitioner` — power-law shard sizes, producing the
  highly unequal-weight merges that break equal-weight-only schemes.
"""

from __future__ import annotations

import abc
from typing import List

import numpy as np

from ..core.exceptions import ParameterError
from ..core.rng import RngLike, resolve_rng

__all__ = [
    "Partitioner",
    "UniformRandomPartitioner",
    "ContiguousPartitioner",
    "SortedPartitioner",
    "SkewedSizePartitioner",
    "PARTITIONERS",
]


class Partitioner(abc.ABC):
    """Splits a dataset array into per-node shards."""

    @abc.abstractmethod
    def split(self, data: np.ndarray, parts: int) -> List[np.ndarray]:
        """Partition ``data`` into exactly ``parts`` non-empty shards."""

    @staticmethod
    def _validate(data: np.ndarray, parts: int) -> None:
        if parts < 1:
            raise ParameterError(f"parts must be >= 1, got {parts!r}")
        if parts > len(data):
            raise ParameterError(
                f"cannot make {parts} non-empty shards from {len(data)} records"
            )


class ContiguousPartitioner(Partitioner):
    """Consecutive equal-size chunks in stream order."""

    def split(self, data: np.ndarray, parts: int) -> List[np.ndarray]:
        self._validate(data, parts)
        return [np.array(c) for c in np.array_split(data, parts)]


class UniformRandomPartitioner(Partitioner):
    """Each record lands on a uniformly random node (seeded)."""

    def __init__(self, rng: RngLike = None) -> None:
        self._rng = resolve_rng(rng)

    def split(self, data: np.ndarray, parts: int) -> List[np.ndarray]:
        self._validate(data, parts)
        permuted = np.array(data)
        self._rng.shuffle(permuted)
        return [np.array(c) for c in np.array_split(permuted, parts)]


class SortedPartitioner(Partitioner):
    """Value-sorted contiguous shards (each node owns a value range)."""

    def split(self, data: np.ndarray, parts: int) -> List[np.ndarray]:
        self._validate(data, parts)
        ordered = np.sort(np.array(data))
        return [np.array(c) for c in np.array_split(ordered, parts)]


class SkewedSizePartitioner(Partitioner):
    """Power-law shard sizes: shard ``i`` gets mass proportional to ``1/i**alpha``."""

    def __init__(self, alpha: float = 1.0, rng: RngLike = None) -> None:
        if alpha < 0:
            raise ParameterError(f"alpha must be >= 0, got {alpha!r}")
        self.alpha = float(alpha)
        self._rng = resolve_rng(rng)

    def split(self, data: np.ndarray, parts: int) -> List[np.ndarray]:
        self._validate(data, parts)
        permuted = np.array(data)
        self._rng.shuffle(permuted)
        weights = np.arange(1, parts + 1, dtype=np.float64) ** -self.alpha
        sizes = np.maximum(1, np.floor(weights / weights.sum() * len(data))).astype(int)
        # fix rounding so sizes sum to len(data) while every shard stays >= 1
        excess = sizes.sum() - len(data)
        i = 0
        while excess > 0:
            if sizes[i % parts] > 1:
                sizes[i % parts] -= 1
                excess -= 1
            i += 1
        sizes[0] += len(data) - sizes.sum()
        out: List[np.ndarray] = []
        offset = 0
        for size in sizes:
            out.append(permuted[offset : offset + size])
            offset += size
        return out


PARTITIONERS = {
    "contiguous": ContiguousPartitioner,
    "uniform": UniformRandomPartitioner,
    "sorted": SortedPartitioner,
    "skewed": SkewedSizePartitioner,
}
