"""Backward-compatibility shim: fault primitives live in :mod:`repro.engine.faults`.

The fault/retry/ledger machinery originally grew up inside the
distributed simulator; the merge-engine refactor moved it into
:mod:`repro.engine` so that *every* plan execution — ``merge_all``
folds, simulator schedules, store compactions — can inject faults and
dedup deliveries through one runner.  This module re-exports the
public names so existing imports keep working.
"""

from ..engine.faults import (
    FaultModel,
    FaultStats,
    MergeLedger,
    RetryPolicy,
    corrupt_payload,
)

__all__ = [
    "FaultModel",
    "FaultStats",
    "MergeLedger",
    "RetryPolicy",
    "corrupt_payload",
]
