"""Continuous distributed monitoring: epoch deltas into a running merge.

One-shot aggregation (:func:`repro.distributed.run_aggregation`) covers
the batch/MapReduce story; the paper's sensor-network motivation is
*continuous*: nodes keep observing, and every epoch each node ships a
summary **delta** (a summary of only that epoch's data) to the
coordinator, which merges it into a running global summary.

Mergeability is what makes this correct: the coordinator's summary
after any number of epochs is a valid summary of everything observed so
far, with the full error guarantee — because it is just a deep merge
tree.  The :class:`ContinuousAggregation` harness simulates the loop
with instrumentation (per-epoch bytes, cumulative guarantee tracking)
and supports querying the coordinator *between* epochs, which is the
operational point of the pattern.

Mergeability also makes the coordinator *recoverable* almost for free:
its whole state is one small serializable summary plus the merge
ledger, checkpointed after every epoch (see
:mod:`repro.distributed.recovery`).  A coordinator killed mid-epoch
(:class:`~repro.distributed.recovery.CoordinatorCrash`) resumes from
the last checkpoint, and replaying the interrupted epoch's deltas
reconverges to exactly the state an uninterrupted run would hold —
the ledger suppresses redeliveries of anything already checkpointed,
and the rolled-back epoch merges fresh.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..core import Summary, dumps, loads
from ..core.exceptions import ParameterError, SerializationError
from .faults import FaultModel, FaultStats, MergeLedger, RetryPolicy
from .recovery import Checkpoint, CheckpointStore, CoordinatorCrash

__all__ = ["EpochReport", "ContinuousAggregation"]


@dataclass
class EpochReport:
    """Instrumentation for one completed epoch."""

    epoch: int
    records: int
    bytes_shipped: int
    coordinator_n: int
    coordinator_size: int
    #: records whose delta actually reached the coordinator this epoch
    delivered_records: int = -1
    #: records lost to crashed nodes or exhausted retries this epoch
    lost_records: int = 0
    #: delivered_records / records for this epoch (1.0 when fault-free)
    coverage: float = 1.0
    retries: int = 0
    duplicates_suppressed: int = 0
    crashed_nodes: int = 0

    def __post_init__(self) -> None:
        if self.delivered_records < 0:
            self.delivered_records = self.records


@dataclass
class ContinuousAggregation:
    """Epoch-driven delta aggregation across ``nodes`` sources.

    Parameters
    ----------
    summary_factory:
        Builds one identically parameterized summary; called once per
        node per epoch (the *delta*) — plus once for the coordinator.
    nodes:
        Number of reporting nodes.
    serialize:
        Ship deltas through the JSON wire format (default True: the
        realistic mode).
    fault_model:
        Optional :class:`~repro.distributed.faults.FaultModel`; deltas
        then traverse a lossy fabric with retry + exponential backoff,
        the coordinator dedups redeliveries through its merge ledger,
        and each :class:`EpochReport` carries coverage accounting.
    retry_policy:
        Delivery retry loop used when ``fault_model`` is set (defaults
        to :class:`~repro.distributed.faults.RetryPolicy`).
    exactly_once:
        Keep a merge ledger at the coordinator (default).  Disable to
        study what duplicate deliveries do to additive summaries.
    checkpoint_store:
        When given, the coordinator checkpoints its summary + ledger at
        construction (epoch 0) and after every completed epoch, and
        :meth:`resume` can rebuild a crashed coordinator from it.
    """

    summary_factory: Callable[[], Summary]
    nodes: int
    serialize: bool = True
    fault_model: Optional[FaultModel] = None
    retry_policy: Optional[RetryPolicy] = None
    exactly_once: bool = True
    checkpoint_store: Optional[CheckpointStore] = None
    coordinator: Summary = field(init=False)
    history: List[EpochReport] = field(default_factory=list)
    ledger: Optional[MergeLedger] = field(init=False, default=None)
    fault_stats: FaultStats = field(init=False, default_factory=FaultStats)

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ParameterError(f"nodes must be >= 1, got {self.nodes!r}")
        if (
            self.fault_model is not None
            and self.fault_model.corruption
            and not self.serialize
        ):
            raise ParameterError(
                "corruption injection garbles wire payloads; it requires "
                "serialize=True"
            )
        self.coordinator = self.summary_factory()
        if self.exactly_once:
            self.ledger = MergeLedger()
        self._crashed = False
        if self.checkpoint_store is not None:
            self.checkpoint_store.save(self.checkpoint())

    @property
    def epochs_completed(self) -> int:
        return len(self.history)

    # ------------------------------------------------------------------
    # Checkpoint / recovery
    # ------------------------------------------------------------------

    def checkpoint(self) -> Checkpoint:
        """Snapshot the coordinator summary, merge ledger, and history."""
        return Checkpoint(
            epoch=len(self.history),
            coordinator_payload=dumps(self.coordinator),
            ledger_ids=self.ledger.to_list() if self.ledger is not None else [],
            history=[asdict(report) for report in self.history],
        )

    @classmethod
    def resume(
        cls,
        checkpoint: Checkpoint,
        summary_factory: Callable[[], Summary],
        nodes: int,
        **kwargs,
    ) -> "ContinuousAggregation":
        """Rebuild a coordinator from ``checkpoint`` (after a crash).

        ``kwargs`` are forwarded to the constructor (``serialize``,
        ``fault_model``, ``checkpoint_store``, ...).  Feed the epochs
        *after* ``checkpoint.epoch`` back through :meth:`run_epoch`;
        anything merged before the checkpoint is protected from
        re-merging by the restored ledger.
        """
        agg = cls(summary_factory, nodes, **kwargs)
        agg.coordinator = checkpoint.restore_summary()
        if agg.ledger is not None:
            agg.ledger = MergeLedger.from_list(checkpoint.ledger_ids)
        agg.history = [EpochReport(**entry) for entry in checkpoint.history]
        return agg

    # ------------------------------------------------------------------
    # The epoch loop
    # ------------------------------------------------------------------

    def _deliver_delta(self, delta: Summary, delivery_id: str) -> Dict[str, int]:
        """Ship one delta through the (possibly faulty) fabric.

        Returns counters: bytes shipped, whether it merged, retries,
        suppressed duplicates.
        """
        faults = self.fault_model
        counters = {"bytes": 0, "merged": 0, "retries": 0, "suppressed": 0}

        def _merge_payload(payload) -> bool:
            child = loads(payload) if self.serialize else payload
            if self.ledger is not None:
                if delivery_id in self.ledger:
                    self.fault_stats.duplicates_suppressed += 1
                    counters["suppressed"] += 1
                    return False
            self.coordinator.merge(child)
            if self.ledger is not None:
                self.ledger.witness(delivery_id)
            return True

        if faults is None:
            payload = dumps(delta) if self.serialize else delta
            if self.serialize:
                counters["bytes"] += len(payload)
            counters["merged"] += int(_merge_payload(payload))
            return counters

        policy = self.retry_policy or RetryPolicy()
        for attempt in policy.attempts():
            self.fault_stats.attempts += 1
            if attempt > 1:
                self.fault_stats.retries += 1
                counters["retries"] += 1
                self.fault_stats.backoff_seconds += policy.delay_before(attempt)
            payload = dumps(delta) if self.serialize else delta
            if self.serialize:
                counters["bytes"] += len(payload)
            if faults.draw_loss():
                self.fault_stats.messages_lost += 1
                continue
            if self.serialize and faults.draw_corruption():
                payload = faults.corrupt(payload)
                self.fault_stats.corrupted_payloads += 1
            if faults.draw_coordinator_crash():
                self._crashed = True
                raise CoordinatorCrash(len(self.history) + 1, counters["merged"])
            try:
                merged = _merge_payload(payload)
            except SerializationError:
                self.fault_stats.corruption_detected += 1
                continue
            counters["merged"] += int(merged)
            if faults.draw_duplicate():
                self.fault_stats.duplicates_delivered += 1
                dup = dumps(delta) if self.serialize else delta
                if self.serialize:
                    counters["bytes"] += len(dup)
                if _merge_payload(dup):
                    self.fault_stats.duplicates_merged += 1
            return counters
        self.fault_stats.deliveries_failed += 1
        return counters

    def run_epoch(self, per_node_data: Sequence[np.ndarray]) -> EpochReport:
        """One epoch: each node summarizes its new data and ships a delta."""
        if self._crashed:
            raise RuntimeError(
                "coordinator has crashed; resume from a checkpoint with "
                "ContinuousAggregation.resume() before running more epochs"
            )
        if len(per_node_data) != self.nodes:
            raise ParameterError(
                f"expected data for {self.nodes} nodes, got {len(per_node_data)}"
            )
        epoch = len(self.history) + 1
        bytes_shipped = 0
        records = 0
        delivered_records = 0
        retries = 0
        suppressed = 0
        crashed_nodes = 0
        for index, shard in enumerate(per_node_data):
            delta = self.summary_factory()
            delta.extend(shard)
            records += delta.n
            if self.fault_model is not None and self.fault_model.draw_crash():
                # the node dies before reporting; its epoch data is gone
                # (it may come back next epoch — crash is drawn per report)
                self.fault_stats.nodes_crashed += 1
                self.fault_stats.crashed_nodes.append(index)
                crashed_nodes += 1
                continue
            counters = self._deliver_delta(delta, f"node{index}@epoch{epoch}")
            bytes_shipped += counters["bytes"]
            retries += counters["retries"]
            suppressed += counters["suppressed"]
            if counters["merged"]:
                delivered_records += delta.n
        report = EpochReport(
            epoch=epoch,
            records=records,
            bytes_shipped=bytes_shipped,
            coordinator_n=self.coordinator.n,
            coordinator_size=self.coordinator.size(),
            delivered_records=delivered_records,
            lost_records=records - delivered_records,
            coverage=delivered_records / records if records else 1.0,
            retries=retries,
            duplicates_suppressed=suppressed,
            crashed_nodes=crashed_nodes,
        )
        self.history.append(report)
        if self.checkpoint_store is not None:
            self.checkpoint_store.save(self.checkpoint())
        return report

    def size_trajectory(self) -> List[int]:
        """Coordinator size after each epoch (must stay bounded)."""
        return [report.coordinator_size for report in self.history]

    def bytes_per_epoch(self) -> List[int]:
        return [report.bytes_shipped for report in self.history]

    def totals(self) -> Dict[str, int]:
        """Cumulative records and bytes over all epochs."""
        return {
            "epochs": len(self.history),
            "records": sum(r.records for r in self.history),
            "bytes": sum(r.bytes_shipped for r in self.history),
        }

    def coverage(self) -> float:
        """Delivered fraction of all records observed across epochs."""
        records = sum(r.records for r in self.history)
        if not records:
            return 1.0
        return sum(r.delivered_records for r in self.history) / records
