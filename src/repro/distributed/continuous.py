"""Continuous distributed monitoring: epoch deltas into a running merge.

One-shot aggregation (:func:`repro.distributed.run_aggregation`) covers
the batch/MapReduce story; the paper's sensor-network motivation is
*continuous*: nodes keep observing, and every epoch each node ships a
summary **delta** (a summary of only that epoch's data) to the
coordinator, which merges it into a running global summary.

Mergeability is what makes this correct: the coordinator's summary
after any number of epochs is a valid summary of everything observed so
far, with the full error guarantee — because it is just a deep merge
tree.  The :class:`ContinuousAggregation` harness simulates the loop
with instrumentation (per-epoch bytes, cumulative guarantee tracking)
and supports querying the coordinator *between* epochs, which is the
operational point of the pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

import numpy as np

from ..core import Summary, dumps, loads
from ..core.exceptions import ParameterError

__all__ = ["EpochReport", "ContinuousAggregation"]


@dataclass
class EpochReport:
    """Instrumentation for one completed epoch."""

    epoch: int
    records: int
    bytes_shipped: int
    coordinator_n: int
    coordinator_size: int


@dataclass
class ContinuousAggregation:
    """Epoch-driven delta aggregation across ``nodes`` sources.

    Parameters
    ----------
    summary_factory:
        Builds one identically parameterized summary; called once per
        node per epoch (the *delta*) — plus once for the coordinator.
    nodes:
        Number of reporting nodes.
    serialize:
        Ship deltas through the JSON wire format (default True: the
        realistic mode).
    """

    summary_factory: Callable[[], Summary]
    nodes: int
    serialize: bool = True
    coordinator: Summary = field(init=False)
    history: List[EpochReport] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ParameterError(f"nodes must be >= 1, got {self.nodes!r}")
        self.coordinator = self.summary_factory()

    @property
    def epochs_completed(self) -> int:
        return len(self.history)

    def run_epoch(self, per_node_data: Sequence[np.ndarray]) -> EpochReport:
        """One epoch: each node summarizes its new data and ships a delta."""
        if len(per_node_data) != self.nodes:
            raise ParameterError(
                f"expected data for {self.nodes} nodes, got {len(per_node_data)}"
            )
        bytes_shipped = 0
        records = 0
        for shard in per_node_data:
            delta = self.summary_factory()
            delta.extend(shard)
            records += delta.n
            if self.serialize:
                payload = dumps(delta)
                bytes_shipped += len(payload)
                delta = loads(payload)
            self.coordinator.merge(delta)
        report = EpochReport(
            epoch=len(self.history) + 1,
            records=records,
            bytes_shipped=bytes_shipped,
            coordinator_n=self.coordinator.n,
            coordinator_size=self.coordinator.size(),
        )
        self.history.append(report)
        return report

    def size_trajectory(self) -> List[int]:
        """Coordinator size after each epoch (must stay bounded)."""
        return [report.coordinator_size for report in self.history]

    def bytes_per_epoch(self) -> List[int]:
        return [report.bytes_shipped for report in self.history]

    def totals(self) -> Dict[str, int]:
        """Cumulative records and bytes over all epochs."""
        return {
            "epochs": len(self.history),
            "records": sum(r.records for r in self.history),
            "bytes": sum(r.bytes_shipped for r in self.history),
        }
