"""A simulated aggregation node.

Each node owns a local data shard, builds its local summary, and — when
the merge schedule says so — receives a child's *serialized* summary,
deserializes it, and merges it in.  Serializing on every hop is how a
real deployment works and doubles as a continuous integration test of
the wire format; it can be disabled for speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

from ..core import Summary, dumps, loads

__all__ = ["Node"]


@dataclass
class Node:
    """One participant in a simulated distributed aggregation."""

    node_id: int
    shard: np.ndarray
    summary: Optional[Summary] = None
    #: bytes "sent" upstream by this node (0 until it ships its summary)
    bytes_sent: int = 0
    merges_performed: int = field(default=0)

    def build(self, summary_factory: Callable[[], Summary]) -> Summary:
        """Build the local summary over this node's shard."""
        self.summary = summary_factory()
        self.summary.extend(self.shard)
        return self.summary

    def emit(self, serialize: bool = True) -> Any:
        """Ship this node's summary upstream (optionally over the wire format)."""
        if self.summary is None:
            raise RuntimeError(f"node {self.node_id} has no summary built")
        if serialize:
            payload = dumps(self.summary)
            self.bytes_sent += len(payload)
            return payload
        return self.summary

    def absorb(self, payload: Any, serialized: bool = True) -> None:
        """Merge a child's emitted summary into this node's summary."""
        if self.summary is None:
            raise RuntimeError(f"node {self.node_id} has no summary built")
        child = loads(payload) if serialized else payload
        self.summary.merge(child)
        self.merges_performed += 1
