"""A simulated aggregation node.

Each node owns a local data shard, builds its local summary, and — when
the merge schedule says so — receives a child's *serialized* summary,
deserializes it, and merges it in.  Serializing on every hop is how a
real deployment works and doubles as a continuous integration test of
the wire format; it can be disabled for speed.

Under fault injection a node also acts as a *parent* in the
exactly-once protocol: give it a :class:`~repro.distributed.faults.MergeLedger`
and every absorb carries a delivery ID; redeliveries of an
already-merged summary (the at-least-once retry hazard) are witnessed
in the ledger and skipped instead of double-counted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

from ..core import Summary, dumps, loads
from .faults import MergeLedger

__all__ = ["Node"]


@dataclass
class Node:
    """One participant in a simulated distributed aggregation."""

    node_id: int
    shard: np.ndarray
    summary: Optional[Summary] = None
    #: bytes "sent" upstream by this node (0 until it ships its summary)
    bytes_sent: int = 0
    merges_performed: int = field(default=0)
    #: delivery IDs already merged (exactly-once dedup); None = no dedup
    ledger: Optional[MergeLedger] = None
    #: redeliveries suppressed by the ledger
    duplicates_ignored: int = 0

    #: optional per-record multiplicities aligned with ``shard`` (a
    #: pre-aggregated shard: distinct values + counts)
    shard_weights: Optional[np.ndarray] = None

    def build(self, summary_factory: Callable[[], Summary]) -> Summary:
        """Build the local summary over this node's shard.

        Leaf ingestion is batched: the whole shard goes through the
        summary's ``update_batch`` fast path in one call (weighted when
        ``shard_weights`` is set).
        """
        self.summary = summary_factory()
        self.summary.update_batch(self.shard, self.shard_weights)
        return self.summary

    def emit(self, serialize: bool = True) -> Any:
        """Ship this node's summary upstream (optionally over the wire format)."""
        if self.summary is None:
            raise RuntimeError(f"node {self.node_id} has no summary built")
        if serialize:
            payload = dumps(self.summary)
            self.bytes_sent += len(payload)
            return payload
        return self.summary

    def absorb(
        self,
        payload: Any,
        serialized: bool = True,
        delivery_id: Optional[str] = None,
    ) -> bool:
        """Merge a child's emitted summary into this node's summary.

        Returns ``True`` when the child was merged, ``False`` when the
        ledger recognized ``delivery_id`` as already merged (duplicate
        delivery) and the merge was skipped.  Deserialization happens
        first, so a corrupted payload raises
        :class:`~repro.core.exceptions.SerializationError` before any
        bookkeeping — a NACK in a real transport.
        """
        if self.summary is None:
            raise RuntimeError(f"node {self.node_id} has no summary built")
        child = loads(payload) if serialized else payload
        if delivery_id is not None and self.ledger is not None:
            if delivery_id in self.ledger:
                self.duplicates_ignored += 1
                return False
        self.summary.merge(child)
        self.merges_performed += 1
        if delivery_id is not None and self.ledger is not None:
            self.ledger.witness(delivery_id)
        return True
