"""A simulated aggregation node.

Each node owns a local data shard, builds its local summary, and — when
the merge schedule says so — receives a child's *serialized* summary,
deserializes it, and merges it in.  Serializing on every hop is how a
real deployment works and doubles as a continuous integration test of
the wire format; it can be disabled for speed.

Under fault injection a node also acts as a *parent* in the
exactly-once protocol: give it a :class:`~repro.distributed.faults.MergeLedger`
and every absorb carries a delivery ID; redeliveries of an
already-merged summary (the at-least-once retry hazard) are witnessed
in the ledger and skipped instead of double-counted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..core import Summary
from ..core.codecs import DEFAULT_CODEC, decode_summary, encode_summary
from .faults import MergeLedger

__all__ = ["Node"]


@dataclass
class Node:
    """One participant in a simulated distributed aggregation."""

    node_id: int
    shard: np.ndarray
    summary: Optional[Summary] = None
    #: payload bytes "sent" upstream by this node, counting each summary
    #: generation once (0 until it ships its summary)
    bytes_sent: int = 0
    #: extra bytes from retransmissions of an already-serialized
    #: generation (retry/duplicate overhead, not payload)
    bytes_retransmitted: int = 0
    merges_performed: int = field(default=0)
    #: delivery IDs already merged (exactly-once dedup); None = no dedup
    ledger: Optional[MergeLedger] = None
    #: redeliveries suppressed by the ledger
    duplicates_ignored: int = 0

    #: optional per-record multiplicities aligned with ``shard`` (a
    #: pre-aggregated shard: distinct values + counts)
    shard_weights: Optional[np.ndarray] = None

    #: wire codec this node emits (any :mod:`repro.core.codecs` name);
    #: absorb sniffs the payload, so mixed-codec fleets interoperate
    codec: str = DEFAULT_CODEC

    #: serialized payload of the current summary generation (keyed on
    #: ``merges_performed``), so retransmissions reuse the exact bytes
    #: the first attempt shipped instead of re-serializing
    _payload_cache: Optional[Tuple[int, Any]] = field(
        default=None, repr=False, compare=False
    )

    def build(self, summary_factory: Callable[[], Summary]) -> Summary:
        """Build the local summary over this node's shard.

        Leaf ingestion is batched: the whole shard goes through the
        summary's ``update_batch`` fast path in one call (weighted when
        ``shard_weights`` is set).
        """
        self.summary = summary_factory()
        self.summary.update_batch(self.shard, self.shard_weights)
        self._payload_cache = None
        return self.summary

    def emit(self, serialize: bool = True) -> Any:
        """Ship this node's summary upstream (optionally over the wire format).

        Each summary generation (identified by ``merges_performed``) is
        serialized once; re-emitting the same generation — a fault-loop
        retransmission or an injected duplicate — reuses the cached
        bytes and is accounted in :attr:`bytes_retransmitted` instead of
        :attr:`bytes_sent`, so ``bytes_sent`` reports true payload and
        the retry overhead stays separable.
        """
        if self.summary is None:
            raise RuntimeError(f"node {self.node_id} has no summary built")
        if not serialize:
            return self.summary
        generation = self.merges_performed
        cached = self._payload_cache
        if cached is not None and cached[0] == generation:
            self.bytes_retransmitted += len(cached[1])
            return cached[1]
        payload = encode_summary(self.summary, self.codec)
        self._payload_cache = (generation, payload)
        self.bytes_sent += len(payload)
        return payload

    def absorb(
        self,
        payload: Any,
        serialized: bool = True,
        delivery_id: Optional[str] = None,
    ) -> bool:
        """Merge a child's emitted summary into this node's summary.

        Returns ``True`` when the child was merged, ``False`` when the
        ledger recognized ``delivery_id`` as already merged (duplicate
        delivery) and the merge was skipped.  Deserialization happens
        first, so a corrupted payload raises
        :class:`~repro.core.exceptions.SerializationError` before any
        bookkeeping — a NACK in a real transport.
        """
        if self.summary is None:
            raise RuntimeError(f"node {self.node_id} has no summary built")
        child = decode_summary(payload) if serialized else payload
        if delivery_id is not None and self.ledger is not None:
            if delivery_id in self.ledger:
                self.duplicates_ignored += 1
                return False
        self.summary.merge(child)
        self.merges_performed += 1
        if delivery_id is not None and self.ledger is not None:
            self.ledger.witness(delivery_id)
        return True

    def absorb_many(
        self,
        payloads: Sequence[Any],
        serialized: bool = True,
        delivery_ids: Optional[Sequence[str]] = None,
    ) -> int:
        """Merge a whole fan-in of child summaries in one k-way pass.

        Semantically a loop of :meth:`absorb`, but the merge itself goes
        through :meth:`~repro.core.base.Summary.merge_many`, so the
        parent pays one combine/compaction for the group.  Returns the
        number of children actually merged (ledger-deduped redeliveries
        are skipped, as in :meth:`absorb`).
        """
        if self.summary is None:
            raise RuntimeError(f"node {self.node_id} has no summary built")
        children: List[Summary] = []
        fresh_ids: List[str] = []
        for i, payload in enumerate(payloads):
            child = decode_summary(payload) if serialized else payload
            delivery_id = delivery_ids[i] if delivery_ids is not None else None
            if delivery_id is not None and self.ledger is not None:
                if delivery_id in self.ledger:
                    self.duplicates_ignored += 1
                    continue
                fresh_ids.append(delivery_id)
            children.append(child)
        if children:
            self.summary.merge_many(children)
            self.merges_performed += len(children)
        if self.ledger is not None:
            for delivery_id in fresh_ids:
                self.ledger.witness(delivery_id)
        return len(children)
