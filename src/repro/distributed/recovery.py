"""Coordinator checkpoint & recovery for continuous aggregation.

A mergeable summary is a tiny, serializable object — which makes
coordinator fault tolerance almost free: checkpoint the running summary
plus the merge ledger after every epoch, and a crashed coordinator
restores to the exact pre-crash epoch boundary.  Replaying the
interrupted epoch's deltas (at-least-once) then reconverges to the very
state an uninterrupted run would have reached, because the restored
ledger suppresses re-deliveries of anything merged before the
checkpoint and the rolled-back epoch re-merges cleanly.

The checkpoint carries a CRC32 over the coordinator payload so a
truncated or bit-rotted checkpoint file is rejected loudly
(:class:`~repro.core.exceptions.SerializationError`) instead of
resurrecting a corrupt coordinator.
"""

from __future__ import annotations

import abc
import json
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..core import Summary, loads
from ..core.exceptions import SerializationError
from ..core.fsio import REAL_FS, write_file_durable

__all__ = [
    "CHECKPOINT_FORMAT",
    "Checkpoint",
    "CheckpointStore",
    "CoordinatorCrash",
    "FileCheckpointStore",
    "InMemoryCheckpointStore",
]

CHECKPOINT_FORMAT = 1


class CoordinatorCrash(RuntimeError):
    """Injected coordinator death mid-epoch (see ``FaultModel.coordinator_crash``).

    Carries where the crash hit; everything merged since the last
    checkpoint is considered lost.  Recover with
    :meth:`repro.distributed.ContinuousAggregation.resume`.
    """

    def __init__(self, epoch: int, deltas_merged: int) -> None:
        super().__init__(
            f"coordinator crashed in epoch {epoch} after merging "
            f"{deltas_merged} delta(s); restore from the last checkpoint"
        )
        self.epoch = epoch
        self.deltas_merged = deltas_merged


@dataclass(frozen=True)
class Checkpoint:
    """Everything needed to restart a coordinator at an epoch boundary."""

    epoch: int
    #: the coordinator summary in wire format (``repro.core.dumps``)
    coordinator_payload: str
    #: merge-ledger delivery IDs witnessed so far
    ledger_ids: List[str] = field(default_factory=list)
    #: per-epoch instrumentation reports (dataclass dicts)
    history: List[Dict[str, Any]] = field(default_factory=list)

    def restore_summary(self) -> Summary:
        """Deserialize the checkpointed coordinator summary."""
        return loads(self.coordinator_payload)

    def to_json(self) -> str:
        return json.dumps(
            {
                "format": CHECKPOINT_FORMAT,
                "epoch": self.epoch,
                "coordinator": self.coordinator_payload,
                "crc32": zlib.crc32(self.coordinator_payload.encode("utf-8")),
                "ledger": list(self.ledger_ids),
                "history": list(self.history),
            },
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, text: str) -> "Checkpoint":
        try:
            blob = json.loads(text)
            version = blob["format"]
            payload = blob["coordinator"]
            crc = blob["crc32"]
        except (json.JSONDecodeError, TypeError, KeyError) as exc:
            raise SerializationError(f"malformed checkpoint: {exc!r}") from exc
        if version != CHECKPOINT_FORMAT:
            raise SerializationError(
                f"unsupported checkpoint format {version!r} "
                f"(supported: {CHECKPOINT_FORMAT})"
            )
        if zlib.crc32(payload.encode("utf-8")) != crc:
            raise SerializationError(
                "checkpoint CRC mismatch: coordinator payload is corrupted"
            )
        return cls(
            epoch=blob["epoch"],
            coordinator_payload=payload,
            ledger_ids=list(blob.get("ledger", [])),
            history=list(blob.get("history", [])),
        )


class CheckpointStore(abc.ABC):
    """Where coordinator checkpoints live (memory for tests, disk for real)."""

    @abc.abstractmethod
    def save(self, checkpoint: Checkpoint) -> None:
        """Persist one checkpoint."""

    @abc.abstractmethod
    def latest(self) -> Optional[Checkpoint]:
        """The highest-epoch checkpoint saved, or ``None``."""


class InMemoryCheckpointStore(CheckpointStore):
    """Keeps every checkpoint in a list (round-trips through JSON anyway,
    so a restored coordinator never aliases live state)."""

    def __init__(self) -> None:
        self._saved: List[str] = []

    def __len__(self) -> int:
        return len(self._saved)

    def save(self, checkpoint: Checkpoint) -> None:
        self._saved.append(checkpoint.to_json())

    def latest(self) -> Optional[Checkpoint]:
        if not self._saved:
            return None
        return max(
            (Checkpoint.from_json(text) for text in self._saved),
            key=lambda ckpt: ckpt.epoch,
        )


class FileCheckpointStore(CheckpointStore):
    """One ``checkpoint-<epoch>.json`` file per epoch under a directory.

    ``fs`` is the :class:`~repro.core.fsio.Filesystem` writes go
    through — the default is the real disk; tests inject the crash
    shim to prove checkpoint publication is power-cut safe.
    """

    def __init__(self, directory: str | Path, fs: Any = None) -> None:
        self.directory = Path(directory)
        self._fs = fs or REAL_FS
        self._fs.makedirs(str(self.directory))

    def _path(self, epoch: int) -> Path:
        return self.directory / f"checkpoint-{epoch:06d}.json"

    def save(self, checkpoint: Checkpoint) -> None:
        # the canonical durable-publish sequence (see repro.core.fsio):
        # write temp, fsync it *before* the rename (else the rename can
        # reach disk ahead of the bytes and a power cut leaves an empty
        # checkpoint), rename atomically, fsync the directory so the
        # new dirent itself survives
        final = self._path(checkpoint.epoch)
        write_file_durable(self._fs, str(final), checkpoint.to_json().encode("utf-8"))

    def latest(self) -> Optional[Checkpoint]:
        candidates = sorted(self.directory.glob("checkpoint-*.json"))
        if not candidates:
            return None
        return Checkpoint.from_json(candidates[-1].read_text())
