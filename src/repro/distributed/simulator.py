"""End-to-end distributed aggregation simulator.

``run_aggregation`` wires the pieces together: partition the dataset,
build one summary per node, execute the merge schedule (optionally
shipping every summary through the JSON wire format), and return the
root summary with full instrumentation — exactly the pipeline of a
sensor network or a MapReduce combiner tree, minus the sockets.

The instrumentation captures what the paper's theorems speak about:
the merge count and tree depth (mergeable summaries must not degrade
with either) and the maximum summary size observed anywhere en route
(the size bound must hold at *every* intermediate node, not just the
root).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..core import Summary
from ..core.exceptions import ParameterError
from ..core.rng import RngLike, resolve_rng
from .node import Node
from .partition import Partitioner
from .topology import MergeSchedule

__all__ = ["AggregationResult", "run_aggregation"]


@dataclass
class AggregationResult:
    """Root summary plus instrumentation from one simulated aggregation."""

    summary: Summary
    nodes: int
    merges: int
    depth: int
    #: largest summary size observed at any point during the run
    max_size_en_route: int
    #: total serialized bytes shipped (0 when serialization is off)
    bytes_shipped: int
    build_seconds: float
    merge_seconds: float
    #: merge steps delivered more than once (at-least-once fault injection)
    duplicated_deliveries: int = 0


def run_aggregation(
    data: np.ndarray,
    partitioner: Partitioner,
    summary_factory: Callable[[], Summary],
    schedule: MergeSchedule,
    serialize: bool = False,
    duplicate_probability: float = 0.0,
    rng: RngLike = None,
) -> AggregationResult:
    """Partition ``data``, build per-node summaries, merge per ``schedule``.

    ``summary_factory`` is called once per node and must return
    identically parameterized summaries (that is what makes them
    mergeable).  With ``serialize=True`` every merge round-trips the
    child summary through the JSON wire format, as a real deployment
    would.

    ``duplicate_probability`` injects *at-least-once delivery*: each
    merge step is, with that probability, delivered (and merged) twice —
    the classic retry-without-dedup fault.  Additive summaries (MG,
    CountMin, quantiles) double-count the duplicated subtree; lattice
    summaries (KMV, HyperLogLog, Bloom, EpsKernel) are idempotent and
    absorb it.  Benchmark E19 quantifies the difference.
    """
    if not 0.0 <= duplicate_probability <= 1.0:
        raise ParameterError(
            f"duplicate_probability must be in [0, 1], got {duplicate_probability!r}"
        )
    fault_rng = resolve_rng(rng)
    shards = partitioner.split(np.asarray(data), schedule.leaves)
    if len(shards) != schedule.leaves:
        raise ParameterError(
            f"partitioner produced {len(shards)} shards for a schedule of "
            f"{schedule.leaves} leaves"
        )
    nodes: List[Node] = [
        Node(node_id=i, shard=shard) for i, shard in enumerate(shards)
    ]

    t0 = time.perf_counter()
    for node in nodes:
        node.build(summary_factory)
    t1 = time.perf_counter()

    max_size = max(node.summary.size() for node in nodes)
    duplicated = 0
    for dst, src in schedule.steps:
        payload = nodes[src].emit(serialize=serialize)
        nodes[dst].absorb(payload, serialized=serialize)
        if duplicate_probability and fault_rng.random() < duplicate_probability:
            payload = nodes[src].emit(serialize=serialize)
            nodes[dst].absorb(payload, serialized=serialize)
            duplicated += 1
        max_size = max(max_size, nodes[dst].summary.size())
    t2 = time.perf_counter()

    root = nodes[schedule.root].summary
    assert root is not None
    return AggregationResult(
        summary=root,
        nodes=schedule.leaves,
        merges=len(schedule.steps),
        depth=schedule.depth,
        max_size_en_route=max_size,
        bytes_shipped=sum(node.bytes_sent for node in nodes),
        build_seconds=t1 - t0,
        merge_seconds=t2 - t1,
        duplicated_deliveries=duplicated,
    )
