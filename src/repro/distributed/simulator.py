"""End-to-end distributed aggregation simulator.

``run_aggregation`` wires the pieces together: partition the dataset,
build one summary per node, execute the merge schedule (optionally
shipping every summary through the JSON wire format), and return the
root summary with full instrumentation — exactly the pipeline of a
sensor network or a MapReduce combiner tree, minus the sockets.

The instrumentation captures what the paper's theorems speak about:
the merge count and tree depth (mergeable summaries must not degrade
with either) and the maximum summary size observed anywhere en route
(the size bound must hold at *every* intermediate node, not just the
root).

A :class:`~repro.distributed.faults.FaultModel` turns the simulator
into an unreliable fabric: messages drop, payloads corrupt, nodes
crash, retransmissions duplicate.  Deliveries then run through a
retry-with-backoff loop, parents dedup via per-delivery merge ledgers
(exactly-once semantics), and the result carries *graceful degradation*
accounting — which leaves actually reached the root and what fraction
of the data the answer covers — instead of silently reporting a summary
of less data than asked for.
"""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core import Summary
from ..core.exceptions import ParameterError, SerializationError
from ..core.parallel import ExecutorLike, ParallelExecutor, resolve_executor
from ..core.rng import RngLike, resolve_rng
from .faults import FaultModel, FaultStats, MergeLedger, RetryPolicy
from .node import Node
from .partition import Partitioner
from .topology import MergeSchedule

__all__ = ["AggregationResult", "run_aggregation", "plan_merge_waves"]


@dataclass
class AggregationResult:
    """Root summary plus instrumentation from one simulated aggregation."""

    summary: Summary
    nodes: int
    merges: int
    depth: int
    #: largest summary size observed at any point during the run
    max_size_en_route: int
    #: total serialized bytes shipped (0 when serialization is off);
    #: counts each summary generation once — retransmissions of the
    #: same bytes land in :attr:`bytes_retransmitted`
    bytes_shipped: int
    build_seconds: float
    merge_seconds: float
    #: merge steps delivered more than once (at-least-once fault injection)
    duplicated_deliveries: int = 0
    #: leaf indices whose data is actually covered by the root summary
    delivered_leaves: List[int] = field(default_factory=list)
    #: records covered by the root summary (== n of the input when no loss)
    delivered_records: int = 0
    #: delivered_records / total records — 1.0 means nothing was lost
    coverage: float = 1.0
    #: leaf indices permanently lost to crashes or exhausted retries
    lost_leaves: List[int] = field(default_factory=list)
    #: per-leaf shard sizes (for recomputing delivered ground truth)
    shard_sizes: List[int] = field(default_factory=list)
    #: fault-injection accounting (None for fault-free runs)
    fault_stats: Optional[FaultStats] = None
    #: bytes re-sent for already-serialized generations (retry overhead)
    bytes_retransmitted: int = 0


def plan_merge_waves(
    steps: Sequence[Tuple[int, int]],
) -> List[List[Tuple[int, List[int]]]]:
    """Group schedule steps into parallel waves of k-way fan-ins.

    Consecutive steps sharing a destination collapse into one
    ``(dst, [srcs])`` group — a single ``merge_many`` fan-in.  Groups
    are then packed greedily into *waves*: a wave takes groups in
    schedule order until a group touches a node some earlier group in
    the wave already used, at which point the wave is flushed.  Groups
    within a wave touch disjoint node sets, so they commute and may run
    concurrently; groups in later waves see every earlier wave's
    effects, preserving the schedule's sequential semantics.
    """
    groups: List[Tuple[int, List[int]]] = []
    for dst, src in steps:
        if groups and groups[-1][0] == dst:
            groups[-1][1].append(src)
        else:
            groups.append((dst, [src]))
    waves: List[List[Tuple[int, List[int]]]] = []
    wave: List[Tuple[int, List[int]]] = []
    used: Set[int] = set()
    for dst, srcs in groups:
        touched = {dst, *srcs}
        if wave and (touched & used):
            waves.append(wave)
            wave, used = [], set()
        wave.append((dst, srcs))
        used |= touched
    if wave:
        waves.append(wave)
    return waves


def _factory_takes_node_index(factory: Callable[..., Summary]) -> bool:
    """True when ``factory`` wants the node index (one required arg).

    Factories may accept the node index to derive per-node RNG streams
    (``lambda i: KLLQuantiles(200, rng=1000 + i)``); zero-argument
    factories are called as before.
    """
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):
        return False
    required = [
        p
        for p in signature.parameters.values()
        if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
        and p.default is p.empty
    ]
    return len(required) == 1


def _build_node_summary(
    node: Node, factory: Callable[..., Summary], takes_index: bool
) -> Summary:
    if takes_index:
        return node.build(lambda: factory(node.node_id))
    return node.build(factory)


def _absorb_group(summary: Summary, payloads: List[Any], serialized: bool) -> Summary:
    """Merge one wave group in a worker: deserialize + one k-way merge."""
    from ..core.codecs import decode_summary

    children = [decode_summary(p) if serialized else p for p in payloads]
    return summary.merge_many(children)


def _validate_schedule_indices(schedule: MergeSchedule, node_count: int) -> None:
    """Schedules referencing nodes the partitioner never produced are a
    configuration error, not an IndexError."""
    referenced = {schedule.root}
    for dst, src in schedule.steps:
        referenced.add(dst)
        referenced.add(src)
    out_of_range = sorted(i for i in referenced if not 0 <= i < node_count)
    if out_of_range:
        raise ParameterError(
            f"merge schedule references node(s) {out_of_range} but the "
            f"partitioner produced only {node_count} node(s)"
        )


def _deliver_with_retries(
    nodes: List[Node],
    dst: int,
    src: int,
    delivery_id: str,
    serialize: bool,
    faults: FaultModel,
    policy: RetryPolicy,
    stats: FaultStats,
) -> bool:
    """One delivery through the lossy fabric; True iff it ever landed."""
    for attempt in policy.attempts():
        stats.attempts += 1
        if attempt > 1:
            stats.retries += 1
            stats.backoff_seconds += policy.delay_before(attempt)
        payload = nodes[src].emit(serialize=serialize)
        if faults.draw_loss():
            stats.messages_lost += 1
            continue
        if serialize and faults.draw_corruption():
            payload = faults.corrupt(payload)
            stats.corrupted_payloads += 1
        try:
            nodes[dst].absorb(payload, serialized=serialize, delivery_id=delivery_id)
        except SerializationError:
            stats.corruption_detected += 1
            continue
        # a late retransmission can still arrive after the ACKed original
        if faults.draw_duplicate():
            stats.duplicates_delivered += 1
            dup = nodes[src].emit(serialize=serialize)
            if nodes[dst].absorb(dup, serialized=serialize, delivery_id=delivery_id):
                stats.duplicates_merged += 1
            else:
                stats.duplicates_suppressed += 1
        return True
    stats.deliveries_failed += 1
    return False


def _run_schedule_with_faults(
    nodes: List[Node],
    schedule: MergeSchedule,
    serialize: bool,
    faults: FaultModel,
    policy: RetryPolicy,
    stats: FaultStats,
) -> Tuple[int, Dict[int, Set[int]], int]:
    """Execute the schedule over the faulty fabric.

    Returns ``(delivered_steps, coverage_map, max_size)`` where
    ``coverage_map[i]`` is the set of leaves whose data node ``i``'s
    summary currently incorporates.
    """
    covered: Dict[int, Set[int]] = {i: {i} for i in range(len(nodes))}
    crashed: Set[int] = set()
    delivered_steps = 0
    max_size = max(node.summary.size() for node in nodes)
    for step_index, (dst, src) in enumerate(schedule.steps):
        # the root plays coordinator and is recovered out-of-band
        # (see recovery.py); every other node may die before this step
        for node_id in (src, dst):
            if (
                node_id not in crashed
                and node_id != schedule.root
                and faults.draw_crash()
            ):
                crashed.add(node_id)
                stats.nodes_crashed += 1
                stats.crashed_nodes.append(node_id)
        if src in crashed or dst in crashed:
            # src's subtree has no surviving route to the root
            continue
        delivery_id = f"step{step_index}:{src}->{dst}"
        if _deliver_with_retries(
            nodes, dst, src, delivery_id, serialize, faults, policy, stats
        ):
            covered[dst] |= covered[src]
            delivered_steps += 1
            max_size = max(max_size, nodes[dst].summary.size())
    return delivered_steps, covered, max_size


def run_aggregation(
    data: np.ndarray,
    partitioner: Partitioner,
    summary_factory: Callable[[], Summary],
    schedule: MergeSchedule,
    serialize: bool = False,
    duplicate_probability: float = 0.0,
    rng: RngLike = None,
    fault_model: Optional[FaultModel] = None,
    retry_policy: Optional[RetryPolicy] = None,
    exactly_once: bool = True,
    executor: ExecutorLike = None,
) -> AggregationResult:
    """Partition ``data``, build per-node summaries, merge per ``schedule``.

    ``summary_factory`` is called once per node and must return
    identically parameterized summaries (that is what makes them
    mergeable).  A factory taking one argument receives the node index
    (for per-node RNG streams).  With ``serialize=True`` every merge
    round-trips the child summary through the JSON wire format, as a
    real deployment would.

    ``executor`` (an int worker count or a
    :class:`~repro.core.parallel.ParallelExecutor`) opts into the
    parallel merge runtime: leaf builds fan out across workers, and the
    schedule is planned into waves of disjoint k-way fan-ins
    (:func:`plan_merge_waves`) that merge concurrently via
    ``merge_many``.  Results are deterministic for any worker count —
    each build/merge task sees only its own operands — and identical to
    ``executor=1``.  ``executor=None`` (the default) keeps the original
    step-by-step scalar path.  Fault injection forces the scalar merge
    path (retries are inherently sequential), but leaf builds still
    parallelize; the legacy ``duplicate_probability`` knob does the
    same.

    ``duplicate_probability`` injects bare *at-least-once delivery*:
    each merge step is, with that probability, delivered (and merged)
    twice — the classic retry-without-dedup fault.  Additive summaries
    (MG, CountMin, quantiles) double-count the duplicated subtree;
    lattice summaries (KMV, HyperLogLog, Bloom, EpsKernel) are
    idempotent and absorb it.  Benchmark E19 quantifies the difference.

    ``fault_model`` enables the full fault-tolerant runtime instead:
    message loss and corrupted payloads are retried per ``retry_policy``
    (exponential backoff, accounted not slept), parents keep per-delivery
    merge ledgers so retransmissions merge exactly once (disable with
    ``exactly_once=False`` to study the damage), crashed nodes drop out
    permanently, and the result reports which leaves made it
    (``delivered_leaves``, ``coverage``) plus a full
    :class:`~repro.distributed.faults.FaultStats`.  Corruption injection
    needs ``serialize=True`` (it garbles wire bytes that the envelope
    checksum then catches).
    """
    if not 0.0 <= duplicate_probability <= 1.0:
        raise ParameterError(
            f"duplicate_probability must be in [0, 1], got {duplicate_probability!r}"
        )
    if fault_model is not None and duplicate_probability:
        raise ParameterError(
            "pass duplicates via FaultModel(duplicate=...) when fault_model "
            "is given; duplicate_probability is the legacy knob"
        )
    if fault_model is not None and fault_model.corruption and not serialize:
        raise ParameterError(
            "corruption injection garbles wire payloads; it requires serialize=True"
        )
    fault_rng = resolve_rng(rng)
    pool: Optional[ParallelExecutor] = resolve_executor(executor)
    shards = partitioner.split(np.asarray(data), schedule.leaves)
    if len(shards) != schedule.leaves:
        raise ParameterError(
            f"partitioner produced {len(shards)} shards for a schedule of "
            f"{schedule.leaves} leaves"
        )
    _validate_schedule_indices(schedule, len(shards))
    use_ledger = fault_model is not None and exactly_once
    nodes: List[Node] = [
        Node(node_id=i, shard=shard, ledger=MergeLedger() if use_ledger else None)
        for i, shard in enumerate(shards)
    ]

    takes_index = _factory_takes_node_index(summary_factory)
    t0 = time.perf_counter()
    if pool is not None:
        built = pool.map(
            _build_node_summary,
            [(node, summary_factory, takes_index) for node in nodes],
        )
        for node, summary in zip(nodes, built):
            node.summary = summary
    else:
        for node in nodes:
            _build_node_summary(node, summary_factory, takes_index)
    t1 = time.perf_counter()

    shard_sizes = [len(shard) for shard in shards]
    total_records = sum(shard_sizes)
    if fault_model is not None:
        stats = FaultStats()
        policy = retry_policy or RetryPolicy()
        delivered_steps, covered, max_size = _run_schedule_with_faults(
            nodes, schedule, serialize, fault_model, policy, stats
        )
        t2 = time.perf_counter()
        delivered_leaves = sorted(covered[schedule.root])
        delivered_records = sum(shard_sizes[i] for i in delivered_leaves)
        root = nodes[schedule.root].summary
        assert root is not None
        return AggregationResult(
            summary=root,
            nodes=schedule.leaves,
            merges=delivered_steps,
            depth=schedule.depth,
            max_size_en_route=max_size,
            bytes_shipped=sum(node.bytes_sent for node in nodes),
            build_seconds=t1 - t0,
            merge_seconds=t2 - t1,
            duplicated_deliveries=stats.duplicates_delivered,
            delivered_leaves=delivered_leaves,
            delivered_records=delivered_records,
            coverage=delivered_records / total_records if total_records else 1.0,
            lost_leaves=sorted(set(range(schedule.leaves)) - set(delivered_leaves)),
            shard_sizes=shard_sizes,
            fault_stats=stats,
            bytes_retransmitted=sum(n.bytes_retransmitted for n in nodes),
        )

    max_size = max(node.summary.size() for node in nodes)
    duplicated = 0
    if pool is not None and not duplicate_probability:
        # wave-planned runtime: serialization and byte accounting stay
        # in this process; each wave's disjoint fan-ins merge via one
        # merge_many per group, concurrently when the pool is parallel
        for wave in plan_merge_waves(schedule.steps):
            tasks = []
            for dst, srcs in wave:
                payloads = [nodes[src].emit(serialize=serialize) for src in srcs]
                tasks.append((nodes[dst].summary, payloads, serialize))
            merged = pool.map(_absorb_group, tasks)
            for (dst, srcs), summary in zip(wave, merged):
                nodes[dst].summary = summary
                nodes[dst].merges_performed += len(srcs)
                max_size = max(max_size, summary.size())
    else:
        for dst, src in schedule.steps:
            payload = nodes[src].emit(serialize=serialize)
            nodes[dst].absorb(payload, serialized=serialize)
            if duplicate_probability and fault_rng.random() < duplicate_probability:
                payload = nodes[src].emit(serialize=serialize)
                nodes[dst].absorb(payload, serialized=serialize)
                duplicated += 1
            max_size = max(max_size, nodes[dst].summary.size())
    t2 = time.perf_counter()

    root = nodes[schedule.root].summary
    assert root is not None
    return AggregationResult(
        summary=root,
        nodes=schedule.leaves,
        merges=len(schedule.steps),
        depth=schedule.depth,
        max_size_en_route=max_size,
        bytes_shipped=sum(node.bytes_sent for node in nodes),
        build_seconds=t1 - t0,
        merge_seconds=t2 - t1,
        duplicated_deliveries=duplicated,
        delivered_leaves=list(range(schedule.leaves)),
        delivered_records=total_records,
        coverage=1.0,
        lost_leaves=[],
        shard_sizes=shard_sizes,
        fault_stats=None,
        bytes_retransmitted=sum(n.bytes_retransmitted for n in nodes),
    )
