"""End-to-end distributed aggregation simulator.

``run_aggregation`` wires the pieces together: partition the dataset,
compile the merge schedule into a :class:`~repro.engine.plan.MergePlan`
(one build step per node, one merge step per schedule edge — see
:func:`repro.engine.compilers.compile_aggregation`), and hand the plan
to :func:`repro.engine.execute_plan`, the same runner behind
``merge_all`` folds and the store's compaction.  The engine owns leaf
build fan-out, wave-packed k-way merges, the retry/ledger fault loop,
and the per-run counters; this module owns what is *simulation*: the
partitioning, the ``Node`` fleet, and the aggregation-level result
accounting.

The instrumentation captures what the paper's theorems speak about:
the merge count and tree depth (mergeable summaries must not degrade
with either) and the maximum summary size observed anywhere en route
(the size bound must hold at *every* intermediate node, not just the
root).

A :class:`~repro.engine.faults.FaultModel` turns the simulator into an
unreliable fabric: messages drop, payloads corrupt, nodes crash,
retransmissions duplicate.  Deliveries then run through a
retry-with-backoff loop, parents dedup via per-delivery merge ledgers
(exactly-once semantics), and the result carries *graceful degradation*
accounting — which leaves actually reached the root and what fraction
of the data the answer covers — instead of silently reporting a summary
of less data than asked for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from ..core import Summary
from ..core.exceptions import ParameterError
from ..core.parallel import ExecutorLike
from ..core.rng import RngLike
from ..engine import MergeLedger, execute_plan, plan_merge_waves
from ..engine.compilers import compile_aggregation
from .faults import FaultModel, FaultStats, RetryPolicy
from .node import Node
from .partition import Partitioner
from .topology import MergeSchedule

__all__ = ["AggregationResult", "run_aggregation", "plan_merge_waves"]


@dataclass
class AggregationResult:
    """Root summary plus instrumentation from one simulated aggregation."""

    summary: Summary
    nodes: int
    merges: int
    depth: int
    #: largest summary size observed at any point during the run
    max_size_en_route: int
    #: total serialized bytes shipped (0 when serialization is off);
    #: counts each summary generation once — retransmissions of the
    #: same bytes land in :attr:`bytes_retransmitted`
    bytes_shipped: int
    build_seconds: float
    merge_seconds: float
    #: merge steps delivered more than once (at-least-once fault injection)
    duplicated_deliveries: int = 0
    #: leaf indices whose data is actually covered by the root summary
    delivered_leaves: List[int] = field(default_factory=list)
    #: records covered by the root summary (== n of the input when no loss)
    delivered_records: int = 0
    #: delivered_records / total records — 1.0 means nothing was lost
    coverage: float = 1.0
    #: leaf indices permanently lost to crashes or exhausted retries
    lost_leaves: List[int] = field(default_factory=list)
    #: per-leaf shard sizes (for recomputing delivered ground truth)
    shard_sizes: List[int] = field(default_factory=list)
    #: fault-injection accounting (None for fault-free runs)
    fault_stats: Optional[FaultStats] = None
    #: bytes re-sent for already-serialized generations (retry overhead)
    bytes_retransmitted: int = 0
    #: True when parallelism was requested but (some of) the run
    #: actually executed serially — no fork, pool failure, worker crash.
    #: Benchmarks and the CLI must surface this; a "parallel" number
    #: that silently ran serial is a lie.
    degraded_to_serial: bool = False
    #: what degraded, in order (empty for healthy runs)
    degradation_events: List[str] = field(default_factory=list)
    #: persistent-runtime dispatch accounting (None off the wave path)
    runtime_stats: Optional[dict] = None


def _validate_schedule_indices(schedule: MergeSchedule, node_count: int) -> None:
    """Schedules referencing nodes the partitioner never produced are a
    configuration error, not an IndexError."""
    referenced = {schedule.root}
    for dst, src in schedule.steps:
        referenced.add(dst)
        referenced.add(src)
    out_of_range = sorted(i for i in referenced if not 0 <= i < node_count)
    if out_of_range:
        raise ParameterError(
            f"merge schedule references node(s) {out_of_range} but the "
            f"partitioner produced only {node_count} node(s)"
        )


def run_aggregation(
    data: np.ndarray,
    partitioner: Partitioner,
    summary_factory: Callable[[], Summary],
    schedule: MergeSchedule,
    serialize: bool = False,
    duplicate_probability: float = 0.0,
    rng: RngLike = None,
    fault_model: Optional[FaultModel] = None,
    retry_policy: Optional[RetryPolicy] = None,
    exactly_once: bool = True,
    executor: ExecutorLike = None,
) -> AggregationResult:
    """Partition ``data``, build per-node summaries, merge per ``schedule``.

    ``summary_factory`` is called once per node and must return
    identically parameterized summaries (that is what makes them
    mergeable).  A factory taking one argument receives the node index
    (for per-node RNG streams).  With ``serialize=True`` every merge
    round-trips the child summary through the JSON wire format, as a
    real deployment would.

    ``executor`` (an int worker count or a
    :class:`~repro.core.parallel.ParallelExecutor`) opts into the
    parallel merge runtime: leaf builds fan out across workers, and the
    schedule is planned into waves of disjoint k-way fan-ins
    (:func:`plan_merge_waves`) that merge concurrently via
    ``merge_many``.  Results are deterministic for any worker count —
    each build/merge task sees only its own operands — and identical to
    ``executor=1``.  ``executor=None`` (the default) keeps the original
    step-by-step scalar path.  Fault injection forces the scalar merge
    path (retries are inherently sequential), but leaf builds still
    parallelize; the legacy ``duplicate_probability`` knob does the
    same.

    ``duplicate_probability`` injects bare *at-least-once delivery*:
    each merge step is, with that probability, delivered (and merged)
    twice — the classic retry-without-dedup fault.  Additive summaries
    (MG, CountMin, quantiles) double-count the duplicated subtree;
    lattice summaries (KMV, HyperLogLog, Bloom, EpsKernel) are
    idempotent and absorb it.  Benchmark E19 quantifies the difference.

    ``fault_model`` enables the full fault-tolerant runtime instead:
    message loss and corrupted payloads are retried per ``retry_policy``
    (exponential backoff, accounted not slept), parents keep per-delivery
    merge ledgers so retransmissions merge exactly once (disable with
    ``exactly_once=False`` to study the damage), crashed nodes drop out
    permanently, and the result reports which leaves made it
    (``delivered_leaves``, ``coverage``) plus a full
    :class:`~repro.distributed.faults.FaultStats`.  Corruption injection
    needs ``serialize=True`` (it garbles wire bytes that the envelope
    checksum then catches).
    """
    shards = partitioner.split(np.asarray(data), schedule.leaves)
    if len(shards) != schedule.leaves:
        raise ParameterError(
            f"partitioner produced {len(shards)} shards for a schedule of "
            f"{schedule.leaves} leaves"
        )
    _validate_schedule_indices(schedule, len(shards))
    nodes: List[Node] = [
        Node(node_id=i, shard=shard) for i, shard in enumerate(shards)
    ]
    use_ledger = fault_model is not None and exactly_once

    plan = compile_aggregation(schedule, summary_factory)
    result = execute_plan(
        plan,
        {i: node for i, node in enumerate(nodes)},
        executor=executor,
        serialize=serialize,
        duplicate_probability=duplicate_probability,
        rng=rng,
        fault_model=fault_model,
        retry_policy=retry_policy,
        ledger_factory=MergeLedger if use_ledger else None,
    )
    report = result.report

    shard_sizes = [len(shard) for shard in shards]
    total_records = sum(shard_sizes)
    root = nodes[schedule.root].summary
    assert root is not None

    if fault_model is not None:
        delivered_leaves = sorted(report.covered[schedule.root])
        delivered_records = sum(shard_sizes[i] for i in delivered_leaves)
        stats = report.fault_stats
        return AggregationResult(
            summary=root,
            nodes=schedule.leaves,
            merges=report.merges,
            depth=schedule.depth,
            max_size_en_route=report.max_size,
            bytes_shipped=report.bytes_shipped,
            build_seconds=report.build_seconds,
            merge_seconds=report.merge_seconds,
            duplicated_deliveries=stats.duplicates_delivered,
            delivered_leaves=delivered_leaves,
            delivered_records=delivered_records,
            coverage=delivered_records / total_records if total_records else 1.0,
            lost_leaves=sorted(set(range(schedule.leaves)) - set(delivered_leaves)),
            shard_sizes=shard_sizes,
            fault_stats=stats,
            bytes_retransmitted=report.bytes_retransmitted,
            degraded_to_serial=report.degraded_to_serial,
            degradation_events=list(report.degradation_events),
            runtime_stats=report.runtime_stats,
        )

    return AggregationResult(
        summary=root,
        nodes=schedule.leaves,
        merges=report.merges,
        depth=schedule.depth,
        max_size_en_route=report.max_size,
        bytes_shipped=report.bytes_shipped,
        build_seconds=report.build_seconds,
        merge_seconds=report.merge_seconds,
        duplicated_deliveries=report.duplicated_deliveries,
        delivered_leaves=list(range(schedule.leaves)),
        delivered_records=total_records,
        coverage=1.0,
        lost_leaves=[],
        shard_sizes=shard_sizes,
        fault_stats=None,
        bytes_retransmitted=report.bytes_retransmitted,
        degraded_to_serial=report.degraded_to_serial,
        degradation_events=list(report.degradation_events),
        runtime_stats=report.runtime_stats,
    )
