"""Merge topologies: the shape of the aggregation DAG.

A topology over ``m`` leaves prescribes the exact sequence of pairwise
merges that reduces ``m`` per-node summaries to one root summary.  The
paper's definition of mergeability quantifies over *all* such shapes;
the builders here produce the shapes the benchmarks sweep:

- :func:`balanced_tree` — depth ``ceil(log2 m)``, all merges between
  near-equal weights (the friendly shape);
- :func:`chain` — the caterpillar, depth ``m - 1``, maximally
  unbalanced (the adversarial shape for one-way-mergeable summaries);
- :func:`star` — one center absorbs everyone (identical to chain as a
  merge schedule, listed separately because in-network aggregation
  distinguishes them by communication pattern);
- :func:`kary_tree` — fan-in ``arity`` reduction;
- :func:`random_tree` — a uniformly random binary merge tree.

A schedule is a list of ``(dst, src)`` leaf-index pairs: "merge the
summary currently held by ``src`` into the one held by ``dst``".  After
the schedule runs, the summary at index ``schedule.root`` covers all
leaves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..core.exceptions import ParameterError
from ..core.rng import RngLike, resolve_rng

__all__ = [
    "MergeSchedule",
    "balanced_tree",
    "chain",
    "star",
    "kary_tree",
    "random_tree",
    "TOPOLOGIES",
    "build_topology",
]


@dataclass(frozen=True)
class MergeSchedule:
    """An ordered list of pairwise merges over ``leaves`` summaries."""

    name: str
    leaves: int
    steps: List[Tuple[int, int]] = field(repr=False)
    root: int = 0

    def __post_init__(self) -> None:
        if self.leaves < 1:
            raise ParameterError(f"leaves must be >= 1, got {self.leaves!r}")
        if len(self.steps) != self.leaves - 1:
            raise ParameterError(
                f"a schedule over {self.leaves} leaves needs exactly "
                f"{self.leaves - 1} merges, got {len(self.steps)}"
            )
        if not 0 <= self.root < self.leaves:
            raise ParameterError(
                f"root {self.root} is outside the leaf range [0, {self.leaves})"
            )
        absorbed = set()
        for dst, src in self.steps:
            if not (0 <= dst < self.leaves and 0 <= src < self.leaves):
                raise ParameterError(
                    f"step ({dst}, {src}) references a node outside "
                    f"[0, {self.leaves})"
                )
            if dst == src:
                raise ParameterError(f"self-merge ({dst}, {src}) in schedule")
            if src in absorbed or dst in absorbed:
                raise ParameterError(
                    f"step ({dst}, {src}) reuses an already-absorbed summary"
                )
            absorbed.add(src)
        if self.root in absorbed:
            raise ParameterError(f"root {self.root} was absorbed by a merge")

    @property
    def depth(self) -> int:
        """Longest merge path from any leaf to the root."""
        depths = [0] * self.leaves
        for dst, src in self.steps:
            depths[dst] = max(depths[dst], depths[src]) + 1
        return depths[self.root]


def balanced_tree(leaves: int) -> MergeSchedule:
    """Pairwise balanced binary reduction."""
    steps: List[Tuple[int, int]] = []
    level = list(range(leaves))
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            steps.append((level[i], level[i + 1]))
            nxt.append(level[i])
        if len(level) % 2 == 1:
            nxt.append(level[-1])
        level = nxt
    return MergeSchedule("balanced", leaves, steps, root=level[0])


def chain(leaves: int) -> MergeSchedule:
    """Left-fold caterpillar: 0 absorbs 1, then 2, then 3, ..."""
    steps = [(0, i) for i in range(1, leaves)]
    return MergeSchedule("chain", leaves, steps, root=0)


def star(leaves: int) -> MergeSchedule:
    """A single center (leaf 0) absorbs every other leaf directly."""
    steps = [(0, i) for i in range(1, leaves)]
    return MergeSchedule("star", leaves, steps, root=0)


def kary_tree(leaves: int, arity: int = 4) -> MergeSchedule:
    """Fan-in ``arity`` reduction (sensor-network style)."""
    if arity < 2:
        raise ParameterError(f"arity must be >= 2, got {arity!r}")
    steps: List[Tuple[int, int]] = []
    level = list(range(leaves))
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level), arity):
            group = level[i : i + arity]
            head = group[0]
            for other in group[1:]:
                steps.append((head, other))
            nxt.append(head)
        level = nxt
    return MergeSchedule(f"{arity}-ary", leaves, steps, root=level[0])


def random_tree(leaves: int, rng: RngLike = None) -> MergeSchedule:
    """A uniformly random binary merge tree (seeded)."""
    gen = resolve_rng(rng)
    steps: List[Tuple[int, int]] = []
    alive = list(range(leaves))
    while len(alive) > 1:
        i, j = gen.choice(len(alive), size=2, replace=False)
        i, j = int(min(i, j)), int(max(i, j))
        steps.append((alive[i], alive[j]))
        del alive[j]
    return MergeSchedule("random", leaves, steps, root=alive[0])


TOPOLOGIES = {
    "balanced": balanced_tree,
    "chain": chain,
    "star": star,
    "kary": kary_tree,
    "random": random_tree,
}


def build_topology(name: str, leaves: int, rng: RngLike = None, **kwargs) -> MergeSchedule:
    """Build the named topology over ``leaves`` leaves."""
    try:
        builder = TOPOLOGIES[name]
    except KeyError:
        raise ParameterError(
            f"unknown topology {name!r}; choose from {sorted(TOPOLOGIES)}"
        ) from None
    if name == "random":
        return builder(leaves, rng=rng, **kwargs)
    return builder(leaves, **kwargs)
