"""Randomized equal-weight-merge quantile summary (paper Section 3.1).

The summary is a uniform "grid sample": ``s`` sorted samples, each
standing for ``w = n/s`` of the underlying values.  Two summaries of
the **same total weight** (hence the same per-sample weight) merge by
*random halving*:

1. merge-sort the two sample lists (``2s`` samples of weight ``w``);
2. flip one fair coin; keep either the even- or the odd-indexed
   samples (``s`` samples, now weight ``2w``).

Each halving perturbs any fixed rank query by at most ``w/2`` in
expectation-zero fashion, and the perturbations of the ``log(n/s)``
levels of a balanced merge tree are independent, so the total error is
``O(w * sqrt(log ...))`` — the paper's Theorem: with
``s = O((1/eps) sqrt(log(1/delta)))`` the rank error is at most
``eps * n`` with probability ``1 - delta``, **but only when every merge
combines equal weights** (e.g. a balanced tree over equal shards).
:class:`repro.quantiles.MergeableQuantiles` (Section 3.2) removes that
restriction; this class enforces it by raising on unequal merges.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional

import numpy as np

from ..core.exceptions import EmptySummaryError, MergeError, ParameterError
from ..core.registry import register_summary
from ..core.rng import RngLike, resolve_rng
from .estimator import QuantileSummary, check_quantile

__all__ = ["EqualWeightQuantiles", "random_halving"]


def random_halving(
    left: np.ndarray, right: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Randomly halve the sorted union of two equal-length sorted arrays.

    Returns ``len(left)`` samples: the even- or odd-indexed elements of
    the merged order, chosen by one fair coin flip (the paper's
    equal-weight merge primitive, reused by Sections 3.2 and 4).
    """
    if len(left) != len(right):
        raise MergeError(
            f"random halving requires equal sample counts, got {len(left)} vs {len(right)}"
        )
    union = np.sort(np.concatenate([left, right]), kind="mergesort")
    offset = int(rng.integers(0, 2))
    return union[offset::2]


@register_summary("equal_weight_quantiles")
class EqualWeightQuantiles(QuantileSummary):
    """Equal-weight-merge random quantile summary with ``s`` samples.

    Build base summaries over shards of at most ``s`` raw values (each
    base summary is then *exact*), and merge them pairwise between
    operands of equal total weight.  ``update`` is only permitted while
    the summary is still exact (a base summary under construction) —
    afterwards the structure is sample-based and further streaming
    would unbalance the weights, which is precisely the limitation the
    fully mergeable summary of Section 3.2 lifts.
    """

    #: the equal-weight merge precondition (operands of equal total
    #: weight) is structurally incompatible with the arbitrary bucket
    #: masses of the sliding-window combinator
    windowable = False

    def __init__(self, s: int, rng: RngLike = None) -> None:
        super().__init__()
        if s < 1:
            raise ParameterError(f"sample budget s must be >= 1, got {s!r}")
        self.s = int(s)
        self._rng = resolve_rng(rng)
        self._samples = np.empty(0, dtype=np.float64)  # always sorted
        self._weight = 1.0  # weight carried by each sample

    @classmethod
    def from_epsilon(
        cls, epsilon: float, delta: float = 0.01, rng: RngLike = None
    ) -> "EqualWeightQuantiles":
        """Choose ``s = ceil((1/eps) * sqrt(log2(1/delta)))`` per the paper."""
        if not 0 < epsilon < 1:
            raise ParameterError(f"epsilon must be in (0, 1), got {epsilon!r}")
        if not 0 < delta < 1:
            raise ParameterError(f"delta must be in (0, 1), got {delta!r}")
        s = math.ceil((1.0 / epsilon) * math.sqrt(max(1.0, math.log2(1.0 / delta))))
        return cls(s=s, rng=rng)

    # ------------------------------------------------------------------
    # Updates (exact phase only)
    # ------------------------------------------------------------------

    @property
    def is_exact(self) -> bool:
        """True while every raw value is stored verbatim (weight 1)."""
        return self._weight == 1.0

    def update(self, item: float, weight: int = 1) -> None:
        if weight <= 0:
            raise ParameterError(f"weight must be positive, got {weight!r}")
        if not self.is_exact:
            raise ParameterError(
                "EqualWeightQuantiles only accepts updates while exact; "
                "use MergeableQuantiles for unrestricted streaming"
            )
        if len(self._samples) + weight > self.s:
            raise ParameterError(
                f"base summary holds at most s={self.s} raw values; build more "
                "base summaries and merge them, or use MergeableQuantiles"
            )
        values = np.full(weight, float(item))
        self._samples = np.sort(np.concatenate([self._samples, values]))
        self._n += weight

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def sample_weight(self) -> float:
        """Weight carried by each stored sample."""
        return self._weight

    def samples(self) -> np.ndarray:
        """Copy of the sorted sample array."""
        return self._samples.copy()

    def rank(self, x: float) -> float:
        return float(np.searchsorted(self._samples, float(x), side="right")) * self._weight

    def quantile(self, q: float) -> float:
        q = check_quantile(q)
        if len(self._samples) == 0:
            raise EmptySummaryError("quantile query on an empty summary")
        index = min(
            max(int(np.ceil(q * len(self._samples))) - 1, 0), len(self._samples) - 1
        )
        return float(self._samples[index])

    def size(self) -> int:
        return len(self._samples)

    # ------------------------------------------------------------------
    # Merge — equal weights only
    # ------------------------------------------------------------------

    def compatible_with(self, other: "EqualWeightQuantiles") -> Optional[str]:
        assert isinstance(other, EqualWeightQuantiles)
        if other.s != self.s:
            return f"sample budget mismatch: s={self.s} vs s={other.s}"
        if self._n != other._n:
            return (
                f"equal-weight merge requires equal total weights, got "
                f"n={self._n} vs n={other._n} (Section 3.1 model); use "
                "MergeableQuantiles for arbitrary merges"
            )
        return None

    def _merge_same_type(self, other: "EqualWeightQuantiles") -> None:
        assert isinstance(other, EqualWeightQuantiles)
        combined = len(self._samples) + len(other._samples)
        if combined <= self.s:
            # both still small: exact concatenation
            self._samples = np.sort(np.concatenate([self._samples, other._samples]))
        elif self._weight == other._weight and len(self._samples) == len(other._samples):
            self._samples = random_halving(self._samples, other._samples, self._rng)
            self._weight *= 2.0
        else:
            raise MergeError(
                "operands are not aligned for an equal-weight merge "
                f"(sizes {len(self._samples)} vs {len(other._samples)}, weights "
                f"{self._weight} vs {other._weight}); build base summaries over "
                "equal shards and merge in a balanced tree"
            )
        self._n += other._n

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "s": self.s,
            "n": self._n,
            "weight": self._weight,
            "samples": [float(v) for v in self._samples],
            "seed": int(self._rng.integers(0, 2**63 - 1)),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "EqualWeightQuantiles":
        summary = cls(s=payload["s"], rng=payload["seed"])
        summary._samples = np.array(payload["samples"], dtype=np.float64)
        summary._weight = float(payload["weight"])
        summary._n = payload["n"]
        return summary
