"""Moment sketch: quantiles from raw arithmetic moments (Gan et al.).

The smallest mergeable quantile summary in the library: ``k`` raw power
sums plus min/max/count.  Merging is elementwise addition of the power
sums and a min/max join — O(1) time, O(k) space, and *lossless*: the
merged state is exactly the state a single sketch would have reached on
the concatenated stream (up to float addition order), so the paper's
mergeability requirement holds with no error-parameter growth at all.
Accuracy lives entirely in the query, not the merge: quantile estimates
come from a maximum-smoothness density reconstruction, here the
practical Legendre-series variant — project the standardized moments
onto Legendre polynomials over ``[min, max]``, clip the reconstructed
density at zero, and invert the resulting CDF on a fixed grid.

At ``k = 12`` a cell serializes to ~100 bytes in ``binary.v1`` — an
order of magnitude smaller than a KLL cell — which is what makes
pre-aggregating one cell per (dimension-value x epoch) in
:class:`repro.store.CubeStore` affordable at 10^5+ distinct keys.

Reference: Gan, Ding, Tai, Sharan, Bailis — "Moment-Based Quantile
Sketches for Efficient High Cardinality Aggregation Queries" (VLDB'18);
see PAPERS.md.
"""

from __future__ import annotations

from math import comb
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..core.base import normalize_batch
from ..core.exceptions import EmptySummaryError, ParameterError
from ..core.registry import register_summary
from .estimator import QuantileSummary, check_quantile

__all__ = ["MomentSketch"]

#: resolution of the inverted-CDF grid; queries are O(GRID) numpy work.
_GRID = 1025


@register_summary("moment_sketch")
class MomentSketch(QuantileSummary):
    """``k`` raw power sums + min/max + count; O(1) merge, O(k) space."""

    def __init__(self, k: int = 12) -> None:
        super().__init__()
        if not 2 <= int(k) <= 20:
            raise ParameterError(
                f"moment order k must be in [2, 20], got {k!r}"
            )
        self.k = int(k)
        # _sums[i] = sum of x^(i+1) over the weighted stream, i < k
        self._sums = np.zeros(self.k, dtype=np.float64)
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._version = 0
        self._cdf_cache: Optional[Tuple[int, np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def update(self, item: float, weight: int = 1) -> None:
        if weight <= 0:
            raise ParameterError(f"weight must be positive, got {weight!r}")
        x = float(item)
        self._sums += weight * np.power(x, np.arange(1, self.k + 1))
        self._min = x if self._min is None else min(self._min, x)
        self._max = x if self._max is None else max(self._max, x)
        self._n += int(weight)
        self._version += 1

    def update_batch(self, items, weights=None) -> None:
        items, weights, total = normalize_batch(items, weights)
        if total == 0:
            return
        xs = np.asarray(items, dtype=np.float64)
        powers = xs[:, None] ** np.arange(1, self.k + 1)[None, :]
        if weights is None:
            self._sums += powers.sum(axis=0)
        else:
            self._sums += (weights[:, None] * powers).sum(axis=0)
        lo, hi = float(xs.min()), float(xs.max())
        self._min = lo if self._min is None else min(self._min, lo)
        self._max = hi if self._max is None else max(self._max, hi)
        self._n += total
        self._version += 1

    # ------------------------------------------------------------------
    # Merge
    # ------------------------------------------------------------------

    def compatible_with(self, other: "MomentSketch") -> Optional[str]:
        assert isinstance(other, MomentSketch)
        if self.k != other.k:
            return f"moment order mismatch: k={self.k} vs k={other.k}"
        return None

    def _merge_same_type(self, other: "MomentSketch") -> None:
        assert isinstance(other, MomentSketch)
        if other._n == 0:
            return
        self._sums += other._sums
        self._min = (
            other._min if self._min is None else min(self._min, other._min)
        )
        self._max = (
            other._max if self._max is None else max(self._max, other._max)
        )
        self._n += other._n
        self._version += 1

    # ------------------------------------------------------------------
    # Moment accessors
    # ------------------------------------------------------------------

    @property
    def minimum(self) -> float:
        if self._min is None:
            raise EmptySummaryError("minimum of an empty moment sketch")
        return self._min

    @property
    def maximum(self) -> float:
        if self._max is None:
            raise EmptySummaryError("maximum of an empty moment sketch")
        return self._max

    def moment(self, i: int) -> float:
        """The i-th raw moment ``E[x^i]`` (``1 <= i <= k``)."""
        if not 1 <= i <= self.k:
            raise ParameterError(f"moment index must be in [1, {self.k}]")
        if self._n == 0:
            raise EmptySummaryError("moment of an empty moment sketch")
        return float(self._sums[i - 1]) / self._n

    def mean(self) -> float:
        return self.moment(1)

    def variance(self) -> float:
        m = self.mean()
        return max(0.0, self.moment(2) - m * m)

    # ------------------------------------------------------------------
    # Quantile queries: Legendre-series density reconstruction
    # ------------------------------------------------------------------

    def _grid_cdf(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(xs, F)``: monotone CDF samples over ``[min, max]``.

        Standardize to ``t = (2x - (min+max)) / (max - min)`` in
        ``[-1, 1]``, convert raw moments ``E[x^i]`` to standardized
        moments ``E[t^j]`` by binomial expansion, form the Legendre
        series ``f(t) = sum_j (2j+1)/2 * E[P_j(t)] * P_j(t)``, clip the
        density at zero (the truncated series can undershoot), and
        integrate on a fixed grid.  Cached per state version.
        """
        cache = self._cdf_cache
        if cache is not None and cache[0] == self._version:
            self._view_hits += 1
            return cache[1], cache[2]
        self._view_misses += 1
        lo, hi = self._min, self._max
        assert lo is not None and hi is not None
        if hi == lo:  # point mass: a step CDF at the single value
            xs = np.array([lo, lo], dtype=np.float64)
            cdf = np.array([0.0, 1.0])
            self._cdf_cache = (self._version, xs, cdf)
            return xs, cdf
        # standardized moments E[t^j], j = 0..k, via t = a*x + b
        a = 2.0 / (hi - lo)
        b = -(hi + lo) / (hi - lo)
        raw = np.concatenate([[1.0], self._sums / self._n])  # E[x^i], i=0..k
        scaled = np.array(
            [
                sum(
                    comb(j, i) * (a**i) * (b ** (j - i)) * raw[i]
                    for i in range(j + 1)
                )
                for j in range(self.k + 1)
            ]
        )
        # Legendre coefficients c_j = (2j+1)/2 * E[P_j(t)], with E[P_j(t)]
        # read off the power-basis expansion of P_j applied to `scaled`
        coeffs = np.zeros(self.k + 1)
        for j in range(self.k + 1):
            unit = np.zeros(j + 1)
            unit[j] = 1.0
            powers = np.polynomial.legendre.leg2poly(unit)
            coeffs[j] = (2 * j + 1) / 2.0 * float(powers @ scaled[: j + 1])
        ts = np.linspace(-1.0, 1.0, _GRID)
        density = np.clip(np.polynomial.legendre.legval(ts, coeffs), 0.0, None)
        steps = (density[1:] + density[:-1]) * (ts[1] - ts[0]) / 2.0
        cdf = np.concatenate([[0.0], np.cumsum(steps)])
        if cdf[-1] <= 0.0:  # degenerate reconstruction: fall back to uniform
            cdf = (ts + 1.0) / 2.0
        else:
            cdf = cdf / cdf[-1]
        xs = (ts - b) / a
        self._cdf_cache = (self._version, xs, cdf)
        return xs, cdf

    def rank(self, x: float) -> float:
        """Estimated number of summarized values ``<= x``."""
        if self._n == 0:
            return 0.0
        x = float(x)
        if x < self._min:
            return 0.0
        if x >= self._max:
            return float(self._n)
        xs, cdf = self._grid_cdf()
        return float(np.interp(x, xs, cdf)) * self._n

    def quantile(self, q: float) -> float:
        """A value whose estimated rank approximates ``q * n``."""
        q = check_quantile(q)
        if self._n == 0:
            raise EmptySummaryError("quantile query on an empty moment sketch")
        if self._min == self._max:
            return float(self._min)
        xs, cdf = self._grid_cdf()
        return float(np.interp(q, cdf, xs))

    # ------------------------------------------------------------------
    # Serialization / misc
    # ------------------------------------------------------------------

    def size(self) -> int:
        return self.k + 2  # power sums + min + max

    def to_dict(self) -> Dict[str, Any]:
        return {
            "k": self.k,
            "n": self._n,
            "min": self._min,
            "max": self._max,
            "sums": self._sums.tolist(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "MomentSketch":
        sketch = cls(k=payload["k"])
        sketch._n = int(payload["n"])
        sketch._min = payload["min"]
        sketch._max = payload["max"]
        sketch._sums = np.asarray(payload["sums"], dtype=np.float64)
        sketch._version = 1 if sketch._n else 0
        return sketch
