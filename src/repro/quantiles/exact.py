"""Exact quantile oracle — ground truth for every quantile experiment.

Stores all values (space ``Theta(n)``); trivially mergeable with zero
error.  The benchmark harness measures every sketch's rank error
against this oracle.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, List

import numpy as np

from ..core.base import normalize_batch
from ..core.exceptions import EmptySummaryError, ParameterError
from ..core.registry import register_summary
from .estimator import QuantileSummary, check_quantile

__all__ = ["ExactQuantiles"]


@register_summary("exact_quantiles")
class ExactQuantiles(QuantileSummary):
    """Exact rank/quantile answers from a fully stored sorted multiset."""

    def __init__(self) -> None:
        super().__init__()
        self._values: List[float] = []
        self._sorted = True

    def update(self, item: float, weight: int = 1) -> None:
        if weight <= 0:
            raise ParameterError(f"weight must be positive, got {weight!r}")
        value = float(item)
        self._values.extend([value] * weight)
        self._sorted = False
        self._n += weight

    def update_batch(self, items, weights=None) -> None:
        items, weights, total = normalize_batch(items, weights)
        if not len(items):
            return
        values = np.asarray(items, dtype=np.float64)
        if weights is not None:
            values = np.repeat(values, weights)
        self._values.extend(values.tolist())
        self._sorted = False
        self._n += total

    def _ensure_sorted(self) -> List[float]:
        if not self._sorted:
            self._values.sort()
            self._sorted = True
        return self._values

    def rank(self, x: float) -> float:
        """Exact ``|{y <= x}|``."""
        return float(bisect.bisect_right(self._ensure_sorted(), float(x)))

    def quantile(self, q: float) -> float:
        """The ``ceil(q * n)``-th smallest value (min for ``q = 0``)."""
        q = check_quantile(q)
        values = self._ensure_sorted()
        if not values:
            raise EmptySummaryError("quantile query on an empty summary")
        index = min(max(int(np.ceil(q * len(values))) - 1, 0), len(values) - 1)
        return values[index]

    def size(self) -> int:
        return len(self._values)

    def _merge_same_type(self, other: "ExactQuantiles") -> None:
        assert isinstance(other, ExactQuantiles)
        self._values.extend(other._values)
        self._sorted = False
        self._n += other._n

    def to_dict(self) -> Dict[str, Any]:
        return {"values": list(map(float, self._ensure_sorted()))}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ExactQuantiles":
        summary = cls()
        summary._values = list(map(float, payload["values"]))
        summary._values.sort()
        summary._sorted = True
        summary._n = len(summary._values)
        return summary
