"""Munro-Paterson / MRL deterministic merging — the deterministic baseline.

Structurally identical to :class:`repro.quantiles.MergeableQuantiles`
(buffer + one block per weight class, binary-counter carries), but the
halving step is **deterministic**: it always keeps the even-indexed
elements of the merged order.  Deterministic halving biases every rank
estimate downward by up to half the block weight *per level*, and the
biases add up instead of cancelling: the rank error grows as
``Theta(s * ... * log(n/s))`` levels stack — this is precisely why the
paper needs randomization (or GK-style corrections) to get mergeable
quantiles with error independent of the merge history.

Benchmark E8 contrasts this summary's realized error with the
randomized :class:`MergeableQuantiles` at equal size.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from ..core.base import normalize_batch
from ..core.exceptions import MergeError, ParameterError
from ..core.registry import register_summary
from .estimator import QuantileSummary

__all__ = ["MRLQuantiles", "deterministic_halving"]


def deterministic_halving(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Keep the even-indexed elements of the sorted union (no coin flip)."""
    if len(left) != len(right):
        raise MergeError(
            f"halving requires equal sample counts, got {len(left)} vs {len(right)}"
        )
    union = np.sort(np.concatenate([left, right]), kind="mergesort")
    return union[0::2]


@register_summary("mrl_quantiles")
class MRLQuantiles(QuantileSummary):
    """Deterministic merge-halving quantile summary (biased baseline)."""

    def __init__(self, s: int) -> None:
        super().__init__()
        if s < 1:
            raise ParameterError(f"block size s must be >= 1, got {s!r}")
        self.s = int(s)
        self._buffer: List[float] = []
        self._blocks: Dict[int, List[np.ndarray]] = {}

    def update(self, item: float, weight: int = 1) -> None:
        if weight <= 0:
            raise ParameterError(f"weight must be positive, got {weight!r}")
        value = float(item)
        if weight < self.s:
            self._buffer.extend([value] * int(weight))
            self._n += int(weight)
            if len(self._buffer) >= self.s:
                self._flush_buffer()
            return
        # O(s log w): constant blocks per set bit of weight // s, exact at
        # any level, plus a < s remainder into the raw buffer
        full_blocks, rest = divmod(int(weight), self.s)
        self._n += int(weight)
        level = 0
        while full_blocks:
            if full_blocks & 1:
                self._blocks.setdefault(level, []).append(
                    np.full(self.s, value, dtype=np.float64)
                )
            full_blocks >>= 1
            level += 1
        if rest:
            self._buffer.extend([value] * rest)
        self._flush_buffer()

    def update_batch(self, items, weights=None) -> None:
        items, weights, total = normalize_batch(items, weights)
        if not len(items):
            return
        if weights is None:
            self._buffer.extend(np.asarray(items, dtype=np.float64).tolist())
            self._n += total
            self._flush_buffer()
        else:
            for item, weight in zip(items, weights.tolist()):
                self.update(item, weight)

    def _flush_buffer(self) -> None:
        if len(self._buffer) >= self.s:
            buffered = self._buffer
            full = (len(buffered) // self.s) * self.s
            level0 = self._blocks.setdefault(0, [])
            for start in range(0, full, self.s):
                level0.append(
                    np.sort(np.array(buffered[start : start + self.s], dtype=np.float64))
                )
            self._buffer = buffered[full:]
        self._carry()

    def _carry(self) -> None:
        level = 0
        while level <= max(self._blocks, default=-1):
            blocks = self._blocks.get(level, [])
            while len(blocks) >= 2:
                right = blocks.pop()
                left = blocks.pop()
                self._blocks.setdefault(level + 1, []).append(
                    deterministic_halving(left, right)
                )
            if not blocks:
                self._blocks.pop(level, None)
            level += 1

    def _sample_state(self):
        parts: List[np.ndarray] = [np.asarray(self._buffer, dtype=np.float64)]
        weights: List[np.ndarray] = [np.ones(len(self._buffer))]
        for level, blocks in self._blocks.items():
            w = float(2**level)
            for block in blocks:
                parts.append(np.asarray(block, dtype=np.float64))
                weights.append(np.full(len(block), w))
        return np.concatenate(parts), np.concatenate(weights)

    def rank(self, x: float) -> float:
        return self._view_rank(x)

    def quantile(self, q: float) -> float:
        return self._view_quantile(q)

    def size(self) -> int:
        return len(self._buffer) + sum(
            len(b) for blocks in self._blocks.values() for b in blocks
        )

    def compatible_with(self, other: "MRLQuantiles") -> Optional[str]:
        assert isinstance(other, MRLQuantiles)
        if other.s != self.s:
            return f"block size mismatch: s={self.s} vs s={other.s}"
        return None

    def _merge_same_type(self, other: "MRLQuantiles") -> None:
        assert isinstance(other, MRLQuantiles)
        self._buffer.extend(other._buffer)
        for level, blocks in other._blocks.items():
            self._blocks.setdefault(level, []).extend(b.copy() for b in blocks)
        self._n += other._n
        self._flush_buffer()

    def _merge_many_same_type(self, others) -> None:
        # all operands in, ONE carry pass; the deterministic halvings
        # pair blocks in a different order than a sequential fold would,
        # so the resulting state differs bitwise but carries the same
        # per-level structure and error bound
        for other in others:
            self._buffer.extend(other._buffer)
            for level, blocks in other._blocks.items():
                self._blocks.setdefault(level, []).extend(b.copy() for b in blocks)
            self._n += other._n
        self._flush_buffer()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "s": self.s,
            "n": self._n,
            "buffer": [float(v) for v in self._buffer],
            "blocks": {
                str(level): [[float(v) for v in block] for block in blocks]
                for level, blocks in self._blocks.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "MRLQuantiles":
        summary = cls(s=payload["s"])
        summary._buffer = [float(v) for v in payload["buffer"]]
        summary._blocks = {
            int(level): [np.array(block, dtype=np.float64) for block in blocks]
            for level, blocks in payload["blocks"].items()
        }
        summary._n = payload["n"]
        return summary
