"""Quantile summaries (paper Section 3) and baselines.

- :class:`EqualWeightQuantiles` — Section 3.1, equal-weight merges only;
- :class:`MergeableQuantiles` — Section 3.2, fully mergeable
  (logarithmic method over random halvings);
- :class:`HybridQuantiles` — Section 3.3, size capped via a GK top;
- :class:`GKQuantiles` — Greenwald-Khanna substrate / non-mergeable
  baseline;
- :class:`MRLQuantiles` — deterministic halving baseline (biased);
- :class:`BottomKSample` — folklore ``1/eps^2`` sampling baseline;
- :class:`MomentSketch` — raw arithmetic moments + min/max (Gan et al.),
  O(1) merge, the cheap-cell workhorse of the dimension cube;
- :class:`ExactQuantiles` — ground truth.
"""

from .equal_weight import EqualWeightQuantiles, random_halving
from .estimator import QuantileSummary, check_quantile
from .exact import ExactQuantiles
from .gk import GKQuantiles
from .hybrid import HybridQuantiles
from .kll import KLLQuantiles
from .logarithmic import MergeableQuantiles
from .moments import MomentSketch
from .mrl import MRLQuantiles, deterministic_halving
from .sampling import BottomKSample

__all__ = [
    "QuantileSummary",
    "check_quantile",
    "MomentSketch",
    "ExactQuantiles",
    "GKQuantiles",
    "EqualWeightQuantiles",
    "MergeableQuantiles",
    "HybridQuantiles",
    "KLLQuantiles",
    "MRLQuantiles",
    "BottomKSample",
    "random_halving",
    "deterministic_halving",
]
