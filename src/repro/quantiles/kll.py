"""KLL quantile sketch — the modern descendant of the paper's Section 3.2.

Karnin, Lang and Liberty (FOCS 2016) refined the logarithmic-method
summary this paper introduced: instead of one full ``s``-sample block
per weight class, KLL lets the *capacity decay geometrically* toward
the lower levels (ratio ``c = 2/3``), concentrating the space where
the weights — and hence the error stakes — are largest.  The result is
an asymptotically optimal ``O((1/eps) sqrt(log(1/delta)))`` summary,
fully mergeable with the same random-halving compaction primitive.

Included as the "where this line of work went" extension: benchmark E16
compares its size/error trade-off against the paper's Section 3.2
structure.  The implementation follows the standard simple variant:
per-level buffers, compaction by coin-flip even/odd selection of the
sorted buffer, lazy growth of the level stack, and level-wise
concatenation + re-compaction for merges.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

import numpy as np

from ..core.base import normalize_batch
from ..core.exceptions import ParameterError
from ..core.registry import register_summary
from ..core.rng import RngLike, resolve_rng
from .estimator import QuantileSummary

__all__ = ["KLLQuantiles"]

#: geometric capacity decay toward lower levels (the KLL constant)
_DECAY = 2.0 / 3.0
#: no level's capacity falls below this
_MIN_CAPACITY = 2


@register_summary("kll_quantiles")
class KLLQuantiles(QuantileSummary):
    """KLL sketch with top-level capacity ``k``.

    Rank error is ``O(n / k)`` with high probability; memory is
    ``~ k / (1 - 2/3) = 3k`` samples regardless of ``n``.
    """

    def __init__(self, k: int = 200, rng: RngLike = None) -> None:
        super().__init__()
        if k < 8:
            raise ParameterError(f"k must be >= 8, got {k!r}")
        self.k = int(k)
        self._rng = resolve_rng(rng)
        self._levels: List[List[float]] = [[]]
        #: level-scan iterations performed by :meth:`_compress` (the
        #: micro-benchmark guard for the linear-scan compaction)
        self._compress_steps = 0

    @classmethod
    def from_epsilon(
        cls, epsilon: float, delta: float = 0.01, rng: RngLike = None
    ) -> "KLLQuantiles":
        """Pick ``k ~ (1.5/eps) * sqrt(log2(1/delta))``."""
        if not 0 < epsilon < 1:
            raise ParameterError(f"epsilon must be in (0, 1), got {epsilon!r}")
        if not 0 < delta < 1:
            raise ParameterError(f"delta must be in (0, 1), got {delta!r}")
        k = math.ceil((1.5 / epsilon) * math.sqrt(max(1.0, math.log2(1.0 / delta))))
        return cls(k=max(8, k), rng=rng)

    # ------------------------------------------------------------------
    # Structure maintenance
    # ------------------------------------------------------------------

    def _capacity(self, level: int) -> int:
        """Capacity of ``level``: ``k`` at the top, decaying below."""
        height_from_top = len(self._levels) - 1 - level
        return max(_MIN_CAPACITY, int(math.ceil(self.k * _DECAY**height_from_top)))

    def _compact_level(self, level: int) -> None:
        """Halve ``level`` into ``level + 1`` by random even/odd selection."""
        buffer = sorted(self._levels[level])
        if len(buffer) < 2:
            return
        leftover: List[float] = []
        if len(buffer) % 2 == 1:
            # the unpaired element stays behind (keep head or tail at random
            # so no rank region is systematically favoured)
            if self._rng.integers(0, 2):
                leftover, buffer = [buffer[0]], buffer[1:]
            else:
                leftover, buffer = [buffer[-1]], buffer[:-1]
        offset = int(self._rng.integers(0, 2))
        promoted = buffer[offset::2]
        self._levels[level] = leftover
        if level + 1 == len(self._levels):
            self._levels.append([])
        self._levels[level + 1].extend(promoted)

    def _compress(self) -> None:
        """Compact over-capacity levels bottom-up until all fit.

        A compaction that stays within the existing level stack leaves
        every lower level's capacity unchanged, so the scan resumes in
        place.  Only growing a new top level shrinks the capacities
        below it (they are keyed on height-from-top) and forces a
        restart — which happens O(log n) times over the sketch's
        lifetime, not once per compaction as the old always-restart
        scan did (worst-case O(L^2) sweeps per flush).
        """
        level = 0
        while level < len(self._levels):
            self._compress_steps += 1
            if len(self._levels[level]) > self._capacity(level):
                grew = level + 1 == len(self._levels)
                self._compact_level(level)
                if grew:
                    level = 0
            else:
                level += 1

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def update(self, item: float, weight: int = 1) -> None:
        if weight <= 0:
            raise ParameterError(f"weight must be positive, got {weight!r}")
        value = float(item)
        if weight == 1:
            self._levels[0].append(value)
            self._n += 1
            if len(self._levels[0]) > self._capacity(0):
                self._compress()
            return
        # O(log weight): a copy with weight 2**i is exactly one sample at
        # level i, so the binary decomposition of the weight places one
        # sample per set bit — never a weight-length loop
        w = int(weight)
        level = 0
        while w:
            if w & 1:
                while len(self._levels) <= level:
                    self._levels.append([])
                self._levels[level].append(value)
            w >>= 1
            level += 1
        self._n += int(weight)
        self._compress()

    def update_batch(self, items, weights=None) -> None:
        items, weights, total = normalize_batch(items, weights)
        if not len(items):
            return
        if weights is None:
            # bulk append, one compaction cascade for the whole batch
            self._levels[0].extend(
                np.asarray(items, dtype=np.float64).tolist()
            )
            self._n += total
            self._compress()
        else:
            for item, weight in zip(items, weights.tolist()):
                self.update(item, weight)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _sample_state(self):
        parts: List[np.ndarray] = []
        weights: List[np.ndarray] = []
        for level, buffer in enumerate(self._levels):
            if buffer:
                parts.append(np.asarray(buffer, dtype=np.float64))
                weights.append(np.full(len(buffer), float(2**level)))
        if not parts:
            return np.empty(0), np.empty(0)
        return np.concatenate(parts), np.concatenate(weights)

    def rank(self, x: float) -> float:
        return self._view_rank(x)

    def quantile(self, q: float) -> float:
        return self._view_quantile(q)

    def size(self) -> int:
        return sum(len(buffer) for buffer in self._levels)

    def num_levels(self) -> int:
        """Height of the level stack (diagnostics)."""
        return len(self._levels)

    # ------------------------------------------------------------------
    # Merge
    # ------------------------------------------------------------------

    def compatible_with(self, other: "KLLQuantiles") -> Optional[str]:
        assert isinstance(other, KLLQuantiles)
        if other.k != self.k:
            return f"k mismatch: {self.k} vs {other.k}"
        return None

    def _merge_same_type(self, other: "KLLQuantiles") -> None:
        assert isinstance(other, KLLQuantiles)
        while len(self._levels) < len(other._levels):
            self._levels.append([])
        for level, buffer in enumerate(other._levels):
            self._levels[level].extend(buffer)
        self._n += other._n
        self._compress()

    def _merge_many_same_type(self, others) -> None:
        # concatenate every operand's levels, then ONE compaction
        # cascade over the union instead of one per operand
        for other in others:
            while len(self._levels) < len(other._levels):
                self._levels.append([])
            for level, buffer in enumerate(other._levels):
                self._levels[level].extend(buffer)
            self._n += other._n
        self._compress()

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "k": self.k,
            "n": self._n,
            "levels": [[float(v) for v in buffer] for buffer in self._levels],
            "seed": int(self._rng.integers(0, 2**63 - 1)),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "KLLQuantiles":
        sketch = cls(k=payload["k"], rng=payload["seed"])
        sketch._levels = [[float(v) for v in buffer] for buffer in payload["levels"]]
        if not sketch._levels:
            sketch._levels = [[]]
        sketch._n = payload["n"]
        return sketch
