"""Mergeable bottom-k random sample — the folklore sampling baseline.

Attach an independent uniform tag to every arriving occurrence and keep
the ``k`` occurrences with the smallest tags.  The kept set is a
uniform random sample of the union *regardless of the merge sequence*
(merging = keep the k smallest tags of the union), so bottom-k sampling
is trivially mergeable — but a sample answers rank queries only to
``O(n / sqrt(k))``, i.e. guaranteeing ``eps * n`` needs ``k =
Theta(1/eps^2)`` samples.  The paper's Section 3 constructions beat
this quadratic dependence; benchmark E8 shows the gap empirically.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..core.base import normalize_batch
from ..core.exceptions import EmptySummaryError, ParameterError
from ..core.registry import register_summary
from ..core.rng import RngLike, resolve_rng
from .estimator import QuantileSummary, check_quantile

__all__ = ["BottomKSample"]


@register_summary("bottom_k_sample")
class BottomKSample(QuantileSummary):
    """Uniform random sample of ``k`` occurrences via bottom-k tags."""

    def __init__(self, k: int, rng: RngLike = None) -> None:
        super().__init__()
        if k < 1:
            raise ParameterError(f"sample size k must be >= 1, got {k!r}")
        self.k = int(k)
        self._rng = resolve_rng(rng)
        # max-heap via negated tags: (-tag, value)
        self._heap: List[Tuple[float, float]] = []

    @classmethod
    def from_epsilon(cls, epsilon: float, rng: RngLike = None) -> "BottomKSample":
        """The folklore size ``k = ceil(1/eps^2)`` for rank error ``eps * n``."""
        if not 0 < epsilon < 1:
            raise ParameterError(f"epsilon must be in (0, 1), got {epsilon!r}")
        return cls(k=math.ceil(1.0 / (epsilon * epsilon)), rng=rng)

    def update(self, item: float, weight: int = 1) -> None:
        if weight <= 0:
            raise ParameterError(f"weight must be positive, got {weight!r}")
        value = float(item)
        if weight == 1:
            tag = float(self._rng.random())
            if len(self._heap) < self.k:
                heapq.heappush(self._heap, (-tag, value))
            elif tag < -self._heap[0][0]:
                heapq.heapreplace(self._heap, (-tag, value))
            self._n += 1
            return
        # weight copies need weight independent tags, but only the ones
        # that beat the current threshold ever enter the heap — draw the
        # tags vectorized and sift the survivors
        self._ingest(np.full(int(weight), value, dtype=np.float64))
        self._n += int(weight)

    def _ingest(self, values: np.ndarray) -> None:
        """Offer one occurrence per entry of ``values`` (tags drawn here)."""
        tags = self._rng.random(len(values))
        heap = self._heap
        fill = min(max(self.k - len(heap), 0), len(values))
        for i in range(fill):
            heapq.heappush(heap, (-float(tags[i]), float(values[i])))
        if fill == len(values) or not heap:
            return
        rest_tags = tags[fill:]
        rest_values = values[fill:]
        # the threshold only tightens, so this mask is a superset of the
        # true survivors; each candidate re-checks against the live heap
        mask = rest_tags < -heap[0][0]
        for tag, value in zip(rest_tags[mask].tolist(), rest_values[mask].tolist()):
            if tag < -heap[0][0]:
                heapq.heapreplace(heap, (-tag, value))

    def update_batch(self, items, weights=None) -> None:
        items, weights, total = normalize_batch(items, weights)
        if not len(items):
            return
        values = np.asarray(items, dtype=np.float64)
        if weights is not None:
            values = np.repeat(values, weights)
        self._ingest(values)
        self._n += total

    def sample_values(self) -> np.ndarray:
        """Sorted values of the current sample."""
        return np.sort(np.array([v for _, v in self._heap], dtype=np.float64))

    def rank(self, x: float) -> float:
        if not self._heap:
            return 0.0
        values = self.sample_values()
        fraction = np.searchsorted(values, float(x), side="right") / len(values)
        return float(fraction * self._n)

    def quantile(self, q: float) -> float:
        q = check_quantile(q)
        if not self._heap:
            raise EmptySummaryError("quantile query on an empty summary")
        values = self.sample_values()
        index = min(max(int(np.ceil(q * len(values))) - 1, 0), len(values) - 1)
        return float(values[index])

    def size(self) -> int:
        return len(self._heap)

    def compatible_with(self, other: "BottomKSample") -> Optional[str]:
        assert isinstance(other, BottomKSample)
        if other.k != self.k:
            return f"sample size mismatch: k={self.k} vs k={other.k}"
        return None

    def _merge_same_type(self, other: "BottomKSample") -> None:
        assert isinstance(other, BottomKSample)
        for entry in other._heap:
            if len(self._heap) < self.k:
                heapq.heappush(self._heap, entry)
            elif entry[0] > self._heap[0][0]:  # smaller tag (negated)
                heapq.heapreplace(self._heap, entry)
        self._n += other._n

    def to_dict(self) -> Dict[str, Any]:
        return {
            "k": self.k,
            "n": self._n,
            "entries": [[-neg_tag, value] for neg_tag, value in self._heap],
            "seed": int(self._rng.integers(0, 2**63 - 1)),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "BottomKSample":
        summary = cls(k=payload["k"], rng=payload["seed"])
        summary._heap = [(-tag, value) for tag, value in payload["entries"]]
        heapq.heapify(summary._heap)
        summary._n = payload["n"]
        return summary
