"""Shared query interface for quantile summaries.

Rank conventions used throughout the library:

- ``rank(x)`` estimates ``|{y in D : y <= x}|`` (0 for x below the
  minimum, ``n`` for x at or above the maximum);
- ``quantile(q)`` for ``q in [0, 1]`` returns a stored value whose rank
  is within the summary's error of ``q * n`` (``q = 0`` targets the
  minimum, ``q = 1`` the maximum);
- ``cdf(x) = rank(x) / n``.

A summary with additive rank error ``eps * n`` answers both queries
within ``eps``: ranks are off by at most ``eps * n`` and quantile
values have true rank within ``(q ± eps) * n``.
"""

from __future__ import annotations

import abc
from typing import Iterable, List, Sequence

from ..core.base import Summary
from ..core.exceptions import EmptySummaryError, ParameterError

__all__ = ["QuantileSummary", "check_quantile"]


def check_quantile(q: float) -> float:
    """Validate a quantile argument."""
    if not 0.0 <= q <= 1.0:
        raise ParameterError(f"quantile q must be in [0, 1], got {q!r}")
    return float(q)


class QuantileSummary(Summary):
    """Abstract base of all quantile summaries.

    Subclasses implement :meth:`rank` and :meth:`quantile`; the derived
    queries (:meth:`cdf`, :meth:`quantiles`, :meth:`median`) are shared.
    """

    @abc.abstractmethod
    def rank(self, x: float) -> float:
        """Estimated number of summarized values ``<= x``."""

    @abc.abstractmethod
    def quantile(self, q: float) -> float:
        """A value whose rank approximates ``q * n``."""

    def cdf(self, x: float) -> float:
        """Estimated fraction of values ``<= x``."""
        if self.is_empty:
            raise EmptySummaryError("cdf query on an empty summary")
        return self.rank(x) / self.n

    def quantiles(self, qs: Iterable[float]) -> List[float]:
        """Batch :meth:`quantile` over an iterable of probabilities."""
        return [self.quantile(q) for q in qs]

    def median(self) -> float:
        """The estimated median (``quantile(0.5)``)."""
        return self.quantile(0.5)

    def update(self, item: float, weight: int = 1) -> None:  # pragma: no cover
        raise NotImplementedError


def weighted_select(
    pairs: Sequence[tuple], target: float, total: float
) -> float:
    """Select the value reaching cumulative weight ``target``.

    ``pairs`` is a sequence of ``(value, weight)`` sorted by value;
    returns the first value whose cumulative weight reaches ``target``
    (clamped to ``[min, max]``).  Shared by the sample-based summaries.
    """
    if not pairs:
        raise EmptySummaryError("selection from an empty summary")
    target = min(max(target, 0.0), total)
    acc = 0.0
    for value, weight in pairs:
        acc += weight
        if acc >= target:
            return value
    return pairs[-1][0]
