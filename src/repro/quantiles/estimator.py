"""Shared query interface for quantile summaries.

Rank conventions used throughout the library:

- ``rank(x)`` estimates ``|{y in D : y <= x}|`` (0 for x below the
  minimum, ``n`` for x at or above the maximum);
- ``quantile(q)`` for ``q in [0, 1]`` returns a stored value whose rank
  is within the summary's error of ``q * n`` (``q = 0`` targets the
  minimum, ``q = 1`` the maximum);
- ``cdf(x) = rank(x) / n``.

A summary with additive rank error ``eps * n`` answers both queries
within ``eps``: ranks are off by at most ``eps * n`` and quantile
values have true rank within ``(q ± eps) * n``.

Query caching
-------------

Sample-based summaries (KLL, the logarithmic method, MRL, the hybrid)
answer every query from the same weighted sample set, yet re-derived it
from the level structure on every call.  :meth:`QuantileSummary._sorted_view`
materializes the sorted values and their cumulative weights **once per
summary generation**: the view is keyed on ``n``, which strictly
increases on every state mutation (updates and merges only accept
positive weights), so a stale view can never be served.  Summaries opt
in by implementing :meth:`_sample_state`; queries then collapse to
``np.searchsorted`` lookups and :meth:`quantiles` answers a whole batch
of probabilities with one vectorized search.  ``view_stats`` exposes
hit/miss counters for the benchmarks.
"""

from __future__ import annotations

import abc
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.base import Summary
from ..core.exceptions import EmptySummaryError, ParameterError

__all__ = ["QuantileSummary", "check_quantile"]


def check_quantile(q: float) -> float:
    """Validate a quantile argument."""
    if not 0.0 <= q <= 1.0:
        raise ParameterError(f"quantile q must be in [0, 1], got {q!r}")
    return float(q)


class QuantileSummary(Summary):
    """Abstract base of all quantile summaries.

    Subclasses implement :meth:`rank` and :meth:`quantile`; the derived
    queries (:meth:`cdf`, :meth:`quantiles`, :meth:`median`) are shared.
    Subclasses whose queries reduce to a weighted sample set also
    implement :meth:`_sample_state` to get the cached sorted view.
    """

    # class-level defaults so the cache works even for subclasses with
    # exotic __init__ chains; instance assignment overrides on first use
    _view: Optional[Tuple[int, np.ndarray, np.ndarray]] = None
    _view_hits: int = 0
    _view_misses: int = 0

    @abc.abstractmethod
    def rank(self, x: float) -> float:
        """Estimated number of summarized values ``<= x``."""

    @abc.abstractmethod
    def quantile(self, q: float) -> float:
        """A value whose rank approximates ``q * n``."""

    def cdf(self, x: float) -> float:
        """Estimated fraction of values ``<= x``."""
        if self.is_empty:
            raise EmptySummaryError("cdf query on an empty summary")
        return self.rank(x) / self.n

    def quantiles(self, qs: Iterable[float]) -> List[float]:
        """Batch :meth:`quantile` over an iterable of probabilities.

        With a cached view this is one vectorized ``np.searchsorted``
        over all probabilities; summaries without :meth:`_sample_state`
        (and empty summaries, which must raise per-call) fall back to
        the per-quantile loop.
        """
        qs = list(qs)
        if not qs or self.is_empty:
            return [self.quantile(q) for q in qs]
        view = self._sorted_view()
        if view is None:
            return [self.quantile(q) for q in qs]
        _, values, cumweights = view
        targets = np.array([check_quantile(q) for q in qs]) * self._n
        idx = np.minimum(
            np.searchsorted(cumweights, targets, side="left"), len(values) - 1
        )
        return [float(v) for v in values[idx]]

    def median(self) -> float:
        """The estimated median (``quantile(0.5)``)."""
        return self.quantile(0.5)

    def update(self, item: float, weight: int = 1) -> None:  # pragma: no cover
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Cached sorted view
    # ------------------------------------------------------------------

    def _sample_state(self) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """The summary's weighted sample set, or ``None`` (no fast path).

        Implementations return ``(values, weights)`` — parallel float
        arrays listing every stored sample with its weight, in the same
        order the summary's scalar queries would enumerate them (ties
        are broken stably, so the view reproduces the scalar results
        bit for bit).
        """
        return None

    def _sorted_view(self) -> Optional[Tuple[int, np.ndarray, np.ndarray]]:
        """``(generation, sorted values, cumulative weights)`` or ``None``.

        Rebuilt at most once per summary generation: the key is ``n``,
        which every mutation strictly increases (weights are validated
        positive everywhere), so serving a view with matching ``n`` is
        always sound.
        """
        generation = self._n
        view = self._view
        if view is not None and view[0] == generation:
            self._view_hits += 1
            return view
        state = self._sample_state()
        if state is None:
            return None
        self._view_misses += 1
        values = np.ascontiguousarray(state[0], dtype=np.float64)
        weights = np.asarray(state[1], dtype=np.float64)
        order = np.argsort(values, kind="stable")
        view = (generation, values[order], np.cumsum(weights[order]))
        self._view = view
        return view

    def invalidate_view(self) -> None:
        """Drop the cached view (only needed after out-of-band state edits)."""
        self._view = None

    @property
    def view_stats(self) -> Dict[str, int]:
        """Cache instrumentation: ``{"hits": ..., "misses": ...}``."""
        return {"hits": self._view_hits, "misses": self._view_misses}

    # shared view-backed query implementations — subclasses with a
    # `_sample_state` delegate their rank/quantile here

    def _view_rank(self, x: float) -> float:
        _, values, cumweights = self._sorted_view()
        idx = int(np.searchsorted(values, float(x), side="right"))
        return float(cumweights[idx - 1]) if idx else 0.0

    def _view_quantile(self, q: float) -> float:
        q = check_quantile(q)
        if self.is_empty:
            raise EmptySummaryError("quantile query on an empty summary")
        _, values, cumweights = self._sorted_view()
        target = q * self._n
        idx = min(
            int(np.searchsorted(cumweights, target, side="left")), len(values) - 1
        )
        return float(values[idx])


def weighted_select(
    pairs: Sequence[tuple], target: float, total: float
) -> float:
    """Select the value reaching cumulative weight ``target``.

    ``pairs`` is a sequence of ``(value, weight)`` sorted by value;
    returns the first value whose cumulative weight reaches ``target``
    (clamped to ``[min, max]``).  Shared by the sample-based summaries.
    """
    if not pairs:
        raise EmptySummaryError("selection from an empty summary")
    target = min(max(target, 0.0), total)
    acc = 0.0
    for value, weight in pairs:
        acc += weight
        if acc >= target:
            return value
    return pairs[-1][0]
