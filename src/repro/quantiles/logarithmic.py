"""Fully mergeable randomized quantile summary (paper Section 3.2).

The logarithmic method lifts the equal-weight-merge summary of
Section 3.1 to **arbitrary** merges: the summary is a collection of
*blocks*, one per weight class, like the digits of a binary counter:

- a raw buffer of fewer than ``s`` exact values (weight 1 each);
- at most one block per level ``i``: a sorted array of exactly ``s``
  samples, each of weight ``2^i`` (the block summarizes ``s * 2^i``
  raw values).

``update`` appends to the buffer; a full buffer becomes a level-0
block.  ``merge`` concatenates buffers and per-level block lists, then
*carries*: whenever a level holds two blocks, they are combined by
random halving (the Section 3.1 primitive) into a single block one
level up — exactly a binary-counter addition.  Every random-halving
step is an equal-weight merge, so the Section 3.1 analysis applies
level by level, and the paper shows the total rank error stays
``eps * n`` with probability ``1 - delta`` for
``s = O((1/eps) * sqrt(log(1/delta)))`` — independent of the merge
sequence.  The size is ``s`` per occupied level, i.e.
``O(s * log(n / s))``.

Benchmark E6 verifies the merge-sequence independence empirically
(chain vs balanced vs random trees over adversarially sorted shards).
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

import numpy as np

from ..core.base import normalize_batch
from ..core.exceptions import ParameterError
from ..core.registry import register_summary
from ..core.rng import RngLike, resolve_rng
from .equal_weight import random_halving
from .estimator import QuantileSummary

__all__ = ["MergeableQuantiles"]


@register_summary("mergeable_quantiles")
class MergeableQuantiles(QuantileSummary):
    """Fully mergeable randomized quantile summary.

    Parameters
    ----------
    s:
        Samples per block.  Use :meth:`from_epsilon` to derive ``s``
        from a target rank error.
    rng:
        Seed or generator for the random halvings.
    """

    def __init__(self, s: int, rng: RngLike = None) -> None:
        super().__init__()
        if s < 1:
            raise ParameterError(f"block size s must be >= 1, got {s!r}")
        self.s = int(s)
        self._rng = resolve_rng(rng)
        self._buffer: List[float] = []
        # level -> list of sorted sample arrays (normalized to <= 1 each)
        self._blocks: Dict[int, List[np.ndarray]] = {}

    @classmethod
    def from_epsilon(
        cls, epsilon: float, delta: float = 0.01, rng: RngLike = None
    ) -> "MergeableQuantiles":
        """Choose ``s = ceil((2/eps) * sqrt(log2(1/delta)))``.

        The constant 2 absorbs the sum over levels in the paper's
        analysis; E5/E6 measure the realized error against ``eps * n``.
        """
        if not 0 < epsilon < 1:
            raise ParameterError(f"epsilon must be in (0, 1), got {epsilon!r}")
        if not 0 < delta < 1:
            raise ParameterError(f"delta must be in (0, 1), got {delta!r}")
        s = math.ceil((2.0 / epsilon) * math.sqrt(max(1.0, math.log2(1.0 / delta))))
        return cls(s=s, rng=rng)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def update(self, item: float, weight: int = 1) -> None:
        if weight <= 0:
            raise ParameterError(f"weight must be positive, got {weight!r}")
        value = float(item)
        if weight < self.s:
            self._buffer.extend([value] * int(weight))
            self._n += int(weight)
            if len(self._buffer) >= self.s:
                self._flush_buffer()
            return
        # O(s log w): a constant block of s copies at level j summarizes
        # s * 2**j occurrences exactly, so the full-block part of the
        # weight drops in via its binary decomposition and only the
        # remainder (< s) touches the raw buffer
        full_blocks, rest = divmod(int(weight), self.s)
        self._n += int(weight)
        level = 0
        while full_blocks:
            if full_blocks & 1:
                self._blocks.setdefault(level, []).append(
                    np.full(self.s, value, dtype=np.float64)
                )
            full_blocks >>= 1
            level += 1
        if rest:
            self._buffer.extend([value] * rest)
        self._flush_buffer()

    def update_batch(self, items, weights=None) -> None:
        items, weights, total = normalize_batch(items, weights)
        if not len(items):
            return
        if weights is None:
            self._buffer.extend(np.asarray(items, dtype=np.float64).tolist())
            self._n += total
            self._flush_buffer()
        else:
            for item, weight in zip(items, weights.tolist()):
                self.update(item, weight)

    def _flush_buffer(self) -> None:
        """Turn ``s`` buffered raw values into level-0 blocks and carry."""
        if len(self._buffer) >= self.s:
            buffered = self._buffer
            full = (len(buffered) // self.s) * self.s
            level0 = self._blocks.setdefault(0, [])
            for start in range(0, full, self.s):
                level0.append(
                    np.sort(np.array(buffered[start : start + self.s], dtype=np.float64))
                )
            self._buffer = buffered[full:]
        self._carry()

    def _carry(self) -> None:
        """Binary-counter carry: halve level pairs upward until <=1 block each."""
        level = 0
        while True:
            blocks = self._blocks.get(level, [])
            if len(blocks) < 2:
                if level > self.max_level():
                    break
                level += 1
                continue
            right = blocks.pop()
            left = blocks.pop()
            merged = random_halving(left, right, self._rng)
            self._blocks.setdefault(level + 1, []).append(merged)
            if not blocks:
                del self._blocks[level]

    def max_level(self) -> int:
        """Highest occupied level (-1 when no blocks exist)."""
        return max(self._blocks, default=-1)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _sample_state(self):
        parts: List[np.ndarray] = [np.asarray(self._buffer, dtype=np.float64)]
        weights: List[np.ndarray] = [np.ones(len(self._buffer))]
        for level, blocks in self._blocks.items():
            w = float(2**level)
            for block in blocks:
                parts.append(np.asarray(block, dtype=np.float64))
                weights.append(np.full(len(block), w))
        return np.concatenate(parts), np.concatenate(weights)

    def rank(self, x: float) -> float:
        return self._view_rank(x)

    def quantile(self, q: float) -> float:
        return self._view_quantile(q)

    def size(self) -> int:
        return len(self._buffer) + sum(
            len(block) for blocks in self._blocks.values() for block in blocks
        )

    def levels(self) -> Dict[int, int]:
        """Occupied levels -> number of blocks (diagnostics)."""
        return {level: len(blocks) for level, blocks in sorted(self._blocks.items())}

    # ------------------------------------------------------------------
    # Merge — arbitrary operands
    # ------------------------------------------------------------------

    def compatible_with(self, other: "MergeableQuantiles") -> Optional[str]:
        assert isinstance(other, MergeableQuantiles)
        if other.s != self.s:
            return f"block size mismatch: s={self.s} vs s={other.s}"
        return None

    def _merge_same_type(self, other: "MergeableQuantiles") -> None:
        assert isinstance(other, MergeableQuantiles)
        self._buffer.extend(other._buffer)
        for level, blocks in other._blocks.items():
            self._blocks.setdefault(level, []).extend(
                block.copy() for block in blocks
            )
        self._n += other._n
        self._flush_buffer()

    def _merge_many_same_type(self, others) -> None:
        # concatenate all buffers and per-level block lists, then ONE
        # binary-counter carry pass over the union — every halving is
        # still an equal-weight merge, so the Section 3.1 analysis is
        # unchanged; only the carry order differs from a sequential fold
        for other in others:
            self._buffer.extend(other._buffer)
            for level, blocks in other._blocks.items():
                self._blocks.setdefault(level, []).extend(
                    block.copy() for block in blocks
                )
            self._n += other._n
        self._flush_buffer()

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "s": self.s,
            "n": self._n,
            "buffer": [float(v) for v in self._buffer],
            "blocks": {
                str(level): [[float(v) for v in block] for block in blocks]
                for level, blocks in self._blocks.items()
            },
            "seed": int(self._rng.integers(0, 2**63 - 1)),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "MergeableQuantiles":
        summary = cls(s=payload["s"], rng=payload["seed"])
        summary._buffer = [float(v) for v in payload["buffer"]]
        summary._blocks = {
            int(level): [np.array(block, dtype=np.float64) for block in blocks]
            for level, blocks in payload["blocks"].items()
        }
        summary._n = payload["n"]
        return summary
