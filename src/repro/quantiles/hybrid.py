"""Hybrid quantile summary (paper Section 3.3).

The fully mergeable summary of Section 3.2 keeps one block per weight
class, so its size grows as ``O(s * log(n/s))``.  The paper's hybrid
construction caps that growth: only the bottom ``Lambda ~ log2(1/eps)``
levels keep the randomized block structure; everything heavier is
absorbed into a Greenwald-Khanna summary, giving total size
``O((1/eps) * log^1.5(1/eps))`` — independent of ``n``.

The intuition: a level-``Lambda`` block carries weight ``2^Lambda ~
1/eps`` per sample, so the *number of times* heavy content is pushed
into the GK top is bounded, and the GK error contributions stay within
the overall ``eps * n`` budget.

Reproduction note (documented deviation): the paper's hybrid re-builds
its top structure at dyadic ``n`` boundaries to keep the GK merge count
logarithmic; this implementation feeds carries into the GK summary as
*weighted* insertions and merges GK tops by weighted reinsertion.  The
error added per GK merge generation is bounded by the GK epsilon (set
to ``eps/2``), so for realistic merge counts the realized error stays
near ``eps * n``; benchmark E7 measures both the size cap and the
realized error, and EXPERIMENTS.md records the comparison.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

import numpy as np

from ..core.base import normalize_batch
from ..core.exceptions import ParameterError
from ..core.registry import register_summary
from ..core.rng import RngLike, resolve_rng
from .equal_weight import random_halving
from .estimator import QuantileSummary
from .gk import GKQuantiles

__all__ = ["HybridQuantiles"]


@register_summary("hybrid_quantiles")
class HybridQuantiles(QuantileSummary):
    """Size-capped mergeable quantile summary (randomized bottom + GK top).

    Parameters
    ----------
    epsilon:
        Target rank error ``eps * n``.
    rng:
        Seed or generator for the random halvings.
    """

    def __init__(self, epsilon: float, rng: RngLike = None) -> None:
        super().__init__()
        if not 0 < epsilon < 1:
            raise ParameterError(f"epsilon must be in (0, 1), got {epsilon!r}")
        self.epsilon = float(epsilon)
        inv = 1.0 / epsilon
        #: samples per block in the randomized bottom structure
        self.s = math.ceil(2.0 * inv * math.sqrt(max(1.0, math.log2(inv))))
        #: levels kept by the bottom structure; level Lambda carries to GK
        self.top_level = max(1, math.ceil(math.log2(inv)))
        self._rng = resolve_rng(rng)
        self._buffer: List[float] = []
        self._blocks: Dict[int, List[np.ndarray]] = {}
        self._gk = GKQuantiles(epsilon / 2.0)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def update(self, item: float, weight: int = 1) -> None:
        if weight <= 0:
            raise ParameterError(f"weight must be positive, got {weight!r}")
        value = float(item)
        if weight < self.s:
            self._buffer.extend([value] * int(weight))
            self._n += int(weight)
            if len(self._buffer) >= self.s:
                self._flush_buffer()
            return
        # O(s log w + GK): binary decomposition of weight // s into
        # constant blocks; bits at or above the top level are exact mass
        # and go straight into GK as one weighted insertion
        full_blocks, rest = divmod(int(weight), self.s)
        self._n += int(weight)
        level = 0
        spilled = False
        while full_blocks:
            if full_blocks & 1:
                if level >= self.top_level:
                    self._gk._insert(value, self.s * (1 << level))
                    spilled = True
                else:
                    self._blocks.setdefault(level, []).append(
                        np.full(self.s, value, dtype=np.float64)
                    )
            full_blocks >>= 1
            level += 1
        if spilled:
            self._gk.compress()
        if rest:
            self._buffer.extend([value] * rest)
        self._flush_buffer()

    def update_batch(self, items, weights=None) -> None:
        items, weights, total = normalize_batch(items, weights)
        if not len(items):
            return
        if weights is None:
            self._buffer.extend(np.asarray(items, dtype=np.float64).tolist())
            self._n += total
            self._flush_buffer()
        else:
            for item, weight in zip(items, weights.tolist()):
                self.update(item, weight)

    def _flush_buffer(self) -> None:
        if len(self._buffer) >= self.s:
            buffered = self._buffer
            full = (len(buffered) // self.s) * self.s
            level0 = self._blocks.setdefault(0, [])
            for start in range(0, full, self.s):
                level0.append(
                    np.sort(np.array(buffered[start : start + self.s], dtype=np.float64))
                )
            self._buffer = buffered[full:]
        self._carry()

    def _carry(self) -> None:
        level = 0
        while level <= max(self._blocks, default=-1):
            blocks = self._blocks.get(level, [])
            while len(blocks) >= 2:
                right = blocks.pop()
                left = blocks.pop()
                merged = random_halving(left, right, self._rng)
                if level + 1 >= self.top_level:
                    self._spill_to_gk(merged, level + 1)
                else:
                    self._blocks.setdefault(level + 1, []).append(merged)
            if not blocks:
                self._blocks.pop(level, None)
            level += 1

    def _spill_to_gk(self, block: np.ndarray, level: int) -> None:
        """Absorb a block that reached the top level into the GK summary."""
        weight = 2**level
        for value in block:
            self._gk._insert(float(value), weight)
        self._gk.compress()
        # _insert counts weights into gk.n; keep our own n authoritative
        # (gk.n tracks the weight it summarizes, which is what its
        # compress threshold needs).

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def rank(self, x: float) -> float:
        x = float(x)
        total = float(sum(1 for v in self._buffer if v <= x))
        for level, blocks in self._blocks.items():
            weight = float(2**level)
            for block in blocks:
                total += weight * float(np.searchsorted(block, x, side="right"))
        total += self._gk.rank(x)
        return total

    def _sample_state(self):
        parts: List[np.ndarray] = [np.asarray(self._buffer, dtype=np.float64)]
        weights: List[np.ndarray] = [np.ones(len(self._buffer))]
        for level, blocks in self._blocks.items():
            w = float(2**level)
            for block in blocks:
                parts.append(np.asarray(block, dtype=np.float64))
                weights.append(np.full(len(block), w))
        # GK tuples enter with their gap weights; their value ordering
        # is exact, so this treats the GK part as a weighted sample set.
        if self._gk._tuples:
            parts.append(
                np.array([v for v, _g, _d in self._gk._tuples], dtype=np.float64)
            )
            weights.append(
                np.array([float(g) for _v, g, _d in self._gk._tuples])
            )
        return np.concatenate(parts), np.concatenate(weights)

    def quantile(self, q: float) -> float:
        return self._view_quantile(q)

    def size(self) -> int:
        return (
            len(self._buffer)
            + sum(len(b) for blocks in self._blocks.values() for b in blocks)
            + self._gk.size()
        )

    # ------------------------------------------------------------------
    # Merge
    # ------------------------------------------------------------------

    def compatible_with(self, other: "HybridQuantiles") -> Optional[str]:
        assert isinstance(other, HybridQuantiles)
        if abs(other.epsilon - self.epsilon) > 1e-12:
            return f"epsilon mismatch: {self.epsilon} vs {other.epsilon}"
        return None

    def _merge_same_type(self, other: "HybridQuantiles") -> None:
        assert isinstance(other, HybridQuantiles)
        self._buffer.extend(other._buffer)
        for level, blocks in other._blocks.items():
            self._blocks.setdefault(level, []).extend(b.copy() for b in blocks)
        if other._gk.size():
            self._gk.merge(other._gk)
        self._n += other._n
        self._flush_buffer()

    def _merge_many_same_type(self, others) -> None:
        # one carry pass over the union of all bottom structures; GK
        # tops still fold sequentially (GK merge is inherently pairwise
        # weighted reinsertion)
        for other in others:
            self._buffer.extend(other._buffer)
            for level, blocks in other._blocks.items():
                self._blocks.setdefault(level, []).extend(b.copy() for b in blocks)
            if other._gk.size():
                self._gk.merge(other._gk)
            self._n += other._n
        self._flush_buffer()

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "epsilon": self.epsilon,
            "n": self._n,
            "buffer": [float(v) for v in self._buffer],
            "blocks": {
                str(level): [[float(v) for v in block] for block in blocks]
                for level, blocks in self._blocks.items()
            },
            "gk": self._gk.to_dict(),
            "seed": int(self._rng.integers(0, 2**63 - 1)),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "HybridQuantiles":
        summary = cls(epsilon=payload["epsilon"], rng=payload["seed"])
        summary._buffer = [float(v) for v in payload["buffer"]]
        summary._blocks = {
            int(level): [np.array(block, dtype=np.float64) for block in blocks]
            for level, blocks in payload["blocks"].items()
        }
        summary._gk = GKQuantiles.from_dict(payload["gk"])
        summary._n = payload["n"]
        return summary
