"""The Greenwald-Khanna (GK) quantile summary.

GK is the classic deterministic streaming quantile summary: space
``O((1/eps) log(eps n))`` with additive rank error ``eps * n``.  In the
paper it plays two roles:

1. **substrate** — the hybrid summary of Section 3.3 uses GK for the
   heavy (high-weight) part of the structure;
2. **negative baseline** — GK is *not* mergeable: any merge procedure
   must either grow the summary or lose accuracy.  The merge
   implemented here is the standard "one-way" weighted reinsertion
   followed by compression; each merge-and-compress generation adds up
   to ``eps * n`` fresh rank error, so the realized error after a
   depth-``d`` merge tree grows like ``d * eps * n``.  Benchmark E8
   measures exactly this degradation against the mergeable summaries.

The summary keeps tuples ``(v, g, delta)`` sorted by value, where ``g``
is the gap of minimal ranks between consecutive tuples and ``delta``
the extra uncertainty; the invariant ``g + delta <= 2 * eps * n``
bounds the rank error by ``eps * n``.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, List, Optional

import numpy as np

from ..core.base import normalize_batch
from ..core.exceptions import EmptySummaryError, ParameterError
from ..core.registry import register_summary
from .estimator import QuantileSummary, check_quantile

__all__ = ["GKQuantiles"]


@register_summary("gk_quantiles")
class GKQuantiles(QuantileSummary):
    """Greenwald-Khanna summary with target rank error ``epsilon * n``.

    ``merge_generations`` counts how many merge events contributed to
    this summary; the realized guarantee after merging is roughly
    ``epsilon * n * (1 + merge_generations)`` — GK's non-mergeability,
    quantified (see module docstring).
    """

    def __init__(self, epsilon: float) -> None:
        super().__init__()
        if not 0 < epsilon < 1:
            raise ParameterError(f"epsilon must be in (0, 1), got {epsilon!r}")
        self.epsilon = float(epsilon)
        # tuples [v, g, delta] sorted by v
        self._tuples: List[List[float]] = []
        self._since_compress = 0
        self.merge_generations = 0

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def update(self, item: float, weight: int = 1) -> None:
        if weight <= 0:
            raise ParameterError(f"weight must be positive, got {weight!r}")
        self._insert(float(item), int(weight))
        self._since_compress += 1
        if self._since_compress >= max(1, int(1.0 / (2.0 * self.epsilon))):
            self.compress()

    def update_batch(
        self,
        items: Any,
        weights: Optional[Any] = None,
    ) -> None:
        """Bulk insertion: one sort, one linear merge, one compression.

        The generic fallback pays a ``bisect`` + ``list.insert`` (both
        O(size)) per item plus a compression every ``1/(2 eps)``
        updates.  Sorting the batch once lets all tuples merge into the
        summary in a single linear pass, with one final compression.
        Each tuple is created exactly as :meth:`_insert` would have
        (same weight splitting, same ``delta`` from its successor), so
        the GK invariant ``g + delta <= 2 eps n`` — and with it the
        rank guarantee — is preserved; only the compression schedule
        differs, which the guarantee does not depend on.
        """
        items, weights, total = normalize_batch(items, weights)
        if total == 0:
            return
        if weights is None:
            self._bulk_insert_units(np.sort(np.asarray(items, dtype=float)))
        else:
            pairs = sorted(zip((float(v) for v in items), weights.tolist()))
            self._bulk_insert(pairs)
        self.compress()

    def _bulk_insert_units(self, values: "np.ndarray") -> None:
        """Vectorized :meth:`_bulk_insert` for unit weights.

        With ``weight == 1`` every new tuple has ``g == 1`` (the weight
        split never triggers), so positions and successor deltas can be
        computed in bulk: ``searchsorted`` finds each value's slot among
        the *old* tuples, and its delta is its old successor's
        ``g + delta - 1`` (0 at either boundary) — exactly what the
        scalar path computes, minus 200k Python-level iterations.
        """
        old = self._tuples
        new_deltas: "np.ndarray"
        if not old:
            positions = np.zeros(len(values), dtype=np.intp)
            new_deltas = np.zeros(len(values))
        else:
            old_keys = np.array([t[0] for t in old])
            successor = np.maximum(
                np.array([t[1] + t[2] - 1.0 for t in old]), 0.0
            )
            positions = np.searchsorted(old_keys, values, side="right")
            inside = positions < len(old)
            new_deltas = np.where(
                inside, successor[np.minimum(positions, len(old) - 1)], 0.0
            )
            if positions[0] == 0:
                # the very first insertion has no predecessor -> delta 0
                new_deltas[0] = 0.0
        new_tuples = [
            [v, 1.0, d] for v, d in zip(values.tolist(), new_deltas.tolist())
        ]
        counts = np.bincount(positions, minlength=len(old) + 1).tolist()
        out: List[List[float]] = []
        index = 0
        for j, old_tuple in enumerate(old):
            if counts[j]:
                out.extend(new_tuples[index : index + counts[j]])
                index += counts[j]
            out.append(old_tuple)
        out.extend(new_tuples[index:])
        self._tuples = out
        self._n += len(values)

    def _bulk_insert(self, pairs: List[Any]) -> None:
        """Merge value-sorted ``(value, weight)`` pairs into the tuple list.

        Single linear pass replaying :meth:`_insert`'s semantics: a new
        tuple's ``delta`` comes from its successor — necessarily a
        not-yet-consumed *old* tuple, since every new value inserted so
        far sorts at or before the current one — and large weights
        split into gaps of at most ``max(1, eps * (n + remaining))``.
        """
        old = self._tuples
        out: List[List[float]] = []
        j = 0
        eps = self.epsilon
        for value, weight in pairs:
            while j < len(old) and old[j][0] <= value:
                out.append(old[j])
                j += 1
            remaining = int(weight)
            while remaining > 0:
                limit = max(1, int(eps * (self._n + remaining)))
                g = min(remaining, limit)
                if not out or j >= len(old):
                    delta = 0.0
                else:
                    delta = max(old[j][1] + old[j][2] - 1.0, 0.0)
                out.append([value, float(g), delta])
                self._n += g
                remaining -= g
        out.extend(old[j:])
        self._tuples = out

    def _insert(self, value: float, weight: int) -> None:
        """Insert ``weight`` exact copies of ``value``.

        Large weights are split into tuples of gap at most
        ``eps * n`` each so the GK invariant ``g + delta <= 2 eps n``
        (and with it the rank guarantee) survives weighted insertion —
        needed by the hybrid summary, whose carries arrive with weight
        ``2^level``.
        """
        remaining = weight
        while remaining > 0:
            limit = max(1, int(self.epsilon * (self._n + remaining)))
            g = min(remaining, limit)
            self._insert_tuple(value, g)
            remaining -= g

    def _insert_tuple(self, value: float, g: int) -> None:
        tuples = self._tuples
        keys = [t[0] for t in tuples]
        pos = bisect.bisect_right(keys, value)
        if pos == 0 or pos == len(tuples):
            delta = 0.0
        else:
            delta = tuples[pos][1] + tuples[pos][2] - 1
            delta = max(delta, 0.0)
        tuples.insert(pos, [value, float(g), delta])
        self._n += g

    def compress(self) -> None:
        """Merge adjacent tuples while the GK invariant allows it.

        One backward pass; merges cascade into the accumulating
        successor.  Building a fresh list keeps the pass linear (the
        in-place ``del`` variant is quadratic on the long uncompressed
        runs :meth:`update_batch` produces); the first and last tuples
        are never merged away — they pin the observed min and max.
        """
        self._since_compress = 0
        tuples = self._tuples
        if len(tuples) <= 2:
            return
        threshold = 2.0 * self.epsilon * self._n
        out = [tuples[-1]]
        for i in range(len(tuples) - 2, 0, -1):
            current = tuples[i]
            successor = out[-1]
            if current[1] + successor[1] + successor[2] <= threshold:
                successor[1] = current[1] + successor[1]
            else:
                out.append(current)
        out.append(tuples[0])
        out.reverse()
        self._tuples = out

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def rank(self, x: float) -> float:
        if not self._tuples:
            return 0.0
        x = float(x)
        # true rank(x) for v_i <= x < v_{i+1} lies in
        # [r_min(i), r_min(i+1) + delta_{i+1} - 1]; answer the midpoint.
        r_min = 0.0
        index = -1
        for i, (v, g, _delta) in enumerate(self._tuples):
            if v > x:
                break
            r_min += g
            index = i
        if index == -1:
            return 0.0
        if index == len(self._tuples) - 1:
            return r_min + self._tuples[index][2] / 2.0
        next_g, next_delta = self._tuples[index + 1][1], self._tuples[index + 1][2]
        return r_min + max(next_g + next_delta - 1.0, 0.0) / 2.0

    def quantile(self, q: float) -> float:
        q = check_quantile(q)
        if not self._tuples:
            raise EmptySummaryError("quantile query on an empty summary")
        target = q * self._n
        margin = self.epsilon * self._n
        # textbook select: answer the predecessor of the first tuple
        # whose r_max exceeds target + eps*n; the invariant
        # g + delta <= 2*eps*n then pins the answer's true rank within
        # [target - eps*n, target + eps*n].
        r_min = 0.0
        previous_value = self._tuples[0][0]
        for v, g, delta in self._tuples:
            r_min += g
            if r_min + delta > target + margin:
                return previous_value
            previous_value = v
        return previous_value

    def size(self) -> int:
        return len(self._tuples)

    @property
    def error_bound(self) -> float:
        """Realized worst-case rank error ``max(g + delta) / 2``."""
        if not self._tuples:
            return 0.0
        return max(g + delta for _, g, delta in self._tuples) / 2.0

    # ------------------------------------------------------------------
    # Merge (one-way, degrades — GK is the non-mergeable baseline)
    # ------------------------------------------------------------------

    def compatible_with(self, other: "GKQuantiles") -> Optional[str]:
        assert isinstance(other, GKQuantiles)
        if abs(other.epsilon - self.epsilon) > 1e-12:
            return f"epsilon mismatch: {self.epsilon} vs {other.epsilon}"
        return None

    def _merge_same_type(self, other: "GKQuantiles") -> None:
        assert isinstance(other, GKQuantiles)
        # Weighted reinsertion: each tuple of `other` collapses its g
        # items onto the single value v (rank slack delta is dropped),
        # which is what costs fresh error every generation.
        for v, g, _delta in other._tuples:
            self._insert(v, int(g))
        self.compress()
        self.merge_generations = (
            max(self.merge_generations, other.merge_generations) + 1
        )

    def _merge_many_same_type(self, others: Any) -> None:
        """k-way merge: one combined reinsertion, one compression.

        The sequential fold reinserts and compresses once per operand,
        paying fresh rank error *per generation*; combining every
        operand's tuples into a single sorted reinsertion costs only
        one generation for the whole group — the k-way merge is not
        just faster, it degrades less (E8's per-generation error
        growth, paid once instead of ``len(others)`` times).
        """
        pairs = []
        top_generation = self.merge_generations
        for other in others:
            top_generation = max(top_generation, other.merge_generations)
            pairs.extend((float(v), int(g)) for v, g, _delta in other._tuples)
        pairs.sort()
        self._bulk_insert(pairs)
        self.compress()
        self.merge_generations = top_generation + 1

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "epsilon": self.epsilon,
            "n": self._n,
            "merge_generations": self.merge_generations,
            "tuples": [[v, g, d] for v, g, d in self._tuples],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "GKQuantiles":
        summary = cls(epsilon=payload["epsilon"])
        summary._tuples = [[v, g, d] for v, g, d in payload["tuples"]]
        summary._n = payload["n"]
        summary.merge_generations = payload["merge_generations"]
        return summary
