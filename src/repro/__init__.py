"""repro — a full reproduction of "Mergeable Summaries" (PODS 2012).

A summary is *mergeable* when two summaries with error parameter
``eps`` combine into one summary for the union of their datasets with
the **same** error and size bounds, under arbitrary merge sequences.
This package implements every summary family the paper analyzes:

- frequency / heavy hitters: :class:`repro.frequency.MisraGries`,
  :class:`repro.frequency.SpaceSaving` (Section 2);
- quantiles: :mod:`repro.quantiles` (Section 3);
- eps-approximations of range spaces: :mod:`repro.ranges` (Section 4);
- eps-kernels for directional width: :mod:`repro.kernels` (Section 5);

plus the distributed-aggregation simulator (:mod:`repro.distributed`),
synthetic workloads (:mod:`repro.workloads`) and the error/bounds
toolkit (:mod:`repro.analysis`) used by the benchmark harness.

Quickstart::

    from repro import MisraGries, merge_all
    from repro.workloads import zipf_stream, chunk_evenly

    shards = chunk_evenly(zipf_stream(100_000, rng=7), 16)
    summaries = [MisraGries(64).extend(shard) for shard in shards]
    merged = merge_all(summaries, strategy="random", rng=7)
    print(merged.heavy_hitters(0.05))
"""

from .core import (
    EmptySummaryError,
    SummaryBundle,
    MergeError,
    ParameterError,
    QueryError,
    ReproError,
    SerializationError,
    Summary,
    dumps,
    loads,
    merge_all,
    merge_chain,
    merge_kway,
    merge_random_tree,
    merge_tree,
    ParallelExecutor,
    registered_names,
)
from .frequency import (
    CountMin,
    CountSketch,
    ExactCounter,
    MajorityVote,
    MisraGries,
    SpaceSaving,
)
from .decay import DecayedMisraGries, WindowedMisraGries
from .kernels import EpsKernel
from .quantiles import (
    BottomKSample,
    EqualWeightQuantiles,
    ExactQuantiles,
    GKQuantiles,
    HybridQuantiles,
    KLLQuantiles,
    MergeableQuantiles,
    MomentSketch,
    MRLQuantiles,
)
from .ranges import EpsApproximation
from .sketches import AmsF2Sketch, BloomFilter, HyperLogLog, KMinValues
from .store import CubeStore, SegmentStore

# importing .windows installs the registration hook that derives a
# windowed.<name> variant for every windowable summary type above (the
# hook replays over everything already registered, so import order does
# not matter for coverage — last is simply clearest)
from .windows import WindowView, WindowedSummary, windowed_merge_all

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Summary",
    "SummaryBundle",
    "ReproError",
    "ParameterError",
    "MergeError",
    "QueryError",
    "SerializationError",
    "EmptySummaryError",
    "merge_all",
    "merge_chain",
    "merge_tree",
    "merge_random_tree",
    "merge_kway",
    "ParallelExecutor",
    "dumps",
    "loads",
    "registered_names",
    "MisraGries",
    "SpaceSaving",
    "MajorityVote",
    "CountMin",
    "CountSketch",
    "ExactCounter",
    "ExactQuantiles",
    "GKQuantiles",
    "EqualWeightQuantiles",
    "MergeableQuantiles",
    "HybridQuantiles",
    "MRLQuantiles",
    "BottomKSample",
    "EpsApproximation",
    "EpsKernel",
    "KMinValues",
    "HyperLogLog",
    "BloomFilter",
    "AmsF2Sketch",
    "DecayedMisraGries",
    "WindowedMisraGries",
    "KLLQuantiles",
    "MomentSketch",
    "SegmentStore",
    "CubeStore",
    "WindowedSummary",
    "WindowView",
    "windowed_merge_all",
]
