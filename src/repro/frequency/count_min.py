"""CountMin sketch — the linear-sketch baseline for frequency estimation.

CountMin (Cormode & Muthukrishnan) is a *linear* sketch: the sketch of
``A union B`` is the entry-wise sum of the sketches, so it is trivially
mergeable — the paper cites linear sketches as the easy-but-costly
mergeable baseline: width ``2/eps`` and depth ``log(1/delta)`` counters
versus Misra-Gries' deterministic ``1/eps`` counters, plus randomness
and the need for shared hash functions across all sites.

The benchmark ``bench_heavy_hitters`` quantifies this trade-off
empirically against MG/SS.

Guarantee: for every item, ``f(x) <= estimate(x)``, and with probability
``1 - delta``, ``estimate(x) <= f(x) + eps * n``.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, Optional, Sequence

import numpy as np

from ..core.base import Summary, normalize_batch
from ..core.exceptions import ParameterError
from ..core.hashing import hash_batch, stable_hash
from ..core.registry import register_summary

__all__ = ["CountMin"]


@register_summary("count_min")
class CountMin(Summary):
    """CountMin sketch with ``depth`` rows of ``width`` counters.

    Parameters
    ----------
    width:
        Counters per row; choose ``ceil(2/eps)`` for additive error
        ``eps * n``.
    depth:
        Independent rows; choose ``ceil(log2(1/delta))`` for failure
        probability ``delta``.
    seed:
        Hash seed.  Two sketches merge only when built with identical
        ``width``, ``depth`` and ``seed`` — the coordination cost of
        linear sketches that deterministic mergeable summaries avoid.
    """

    def __init__(self, width: int, depth: int, seed: int = 0) -> None:
        super().__init__()
        if width < 1 or depth < 1:
            raise ParameterError(
                f"width and depth must be >= 1, got {width!r} x {depth!r}"
            )
        self.width = int(width)
        self.depth = int(depth)
        self.seed = int(seed)
        self._table = np.zeros((self.depth, self.width), dtype=np.int64)

    @classmethod
    def from_error(cls, epsilon: float, delta: float, seed: int = 0) -> "CountMin":
        """Sketch with additive error ``eps * n`` w.p. ``1 - delta``."""
        if not 0 < epsilon < 1:
            raise ParameterError(f"epsilon must be in (0, 1), got {epsilon!r}")
        if not 0 < delta < 1:
            raise ParameterError(f"delta must be in (0, 1), got {delta!r}")
        width = math.ceil(math.e / epsilon)
        depth = max(1, math.ceil(math.log(1.0 / delta)))
        return cls(width=width, depth=depth, seed=seed)

    def _row_indices(self, item: Any) -> np.ndarray:
        return np.array(
            [
                stable_hash(item, seed=self.seed * 1_000_003 + row) % self.width
                for row in range(self.depth)
            ],
            dtype=np.int64,
        )

    def update(self, item: Any, weight: int = 1) -> None:
        if weight <= 0:
            raise ParameterError(f"weight must be positive, got {weight!r}")
        cols = self._row_indices(item)
        self._table[np.arange(self.depth), cols] += weight
        self._n += weight

    def update_batch(
        self,
        items: Iterable[Any],
        weights: Optional[Sequence[int]] = None,
    ) -> None:
        items, weights, total = normalize_batch(items, weights)
        if not len(items):
            return
        for row in range(self.depth):
            hashes = hash_batch(items, seed=self.seed * 1_000_003 + row)
            cols = (hashes % np.uint64(self.width)).astype(np.int64)
            if weights is None:
                self._table[row] += np.bincount(cols, minlength=self.width).astype(
                    np.int64
                )
            else:
                np.add.at(self._table[row], cols, weights)
        self._n += total

    def estimate(self, item: Any) -> int:
        """Upper-bound frequency estimate (min over rows)."""
        cols = self._row_indices(item)
        return int(self._table[np.arange(self.depth), cols].min())

    def upper_bound(self, item: Any) -> int:
        return self.estimate(item)

    def lower_bound(self, item: Any) -> int:
        """CountMin offers no nontrivial per-item lower bound."""
        return 0

    def size(self) -> int:
        """Number of stored counters (``width * depth``)."""
        return self.width * self.depth

    def compatible_with(self, other: "Summary") -> Optional[str]:
        assert isinstance(other, CountMin)
        if (self.width, self.depth, self.seed) != (other.width, other.depth, other.seed):
            return (
                f"sketch geometry/seed mismatch: "
                f"({self.width},{self.depth},{self.seed}) vs "
                f"({other.width},{other.depth},{other.seed})"
            )
        return None

    def _merge_same_type(self, other: "Summary") -> None:
        assert isinstance(other, CountMin)
        self._table += other._table
        self._n += other._n

    def _merge_many_same_type(self, others: Sequence["Summary"]) -> None:
        # linear sketch: the s-way merge is one stacked entry-wise sum
        self._table += np.sum(
            np.stack([o._table for o in others]), axis=0  # type: ignore[attr-defined]
        )
        self._n += sum(o._n for o in others)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "width": self.width,
            "depth": self.depth,
            "seed": self.seed,
            "n": self._n,
            "table": self._table.tolist(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CountMin":
        sketch = cls(payload["width"], payload["depth"], payload["seed"])
        sketch._table = np.array(payload["table"], dtype=np.int64)
        sketch._n = payload["n"]
        return sketch
