"""The Misra-Gries (MG) frequency summary and its mergeable merge.

The MG summary with ``k`` counters processes a stream of ``n`` item
occurrences and guarantees, for every item ``x`` with true frequency
``f(x)``::

    f(x) - n/(k+1)  <=  estimate(x)  <=  f(x)

The central result reproduced here is the paper's Theorem (Section 2):
MG summaries are **fully mergeable**.  Two MG summaries with ``k``
counters merge into one MG summary with ``k`` counters whose error bound
is ``(n1 + n2)/(k+1)`` — i.e. exactly the bound of a single-stream
summary over the union, regardless of how many merges produced the
operands.  The merge is *combine + prune*:

1. combine: add the two counter sets item-wise (no error);
2. prune: if more than ``k`` counters remain, subtract the ``(k+1)``-st
   largest counter value from every counter and drop the non-positive
   ones (at most ``k`` survive).

The proof tracks the invariant ``(k+1) * deduction <= n - stored_mass``
which this implementation maintains explicitly and tests verify.

Implementation notes
--------------------
Updates use the standard lazy-decrement technique: instead of physically
subtracting the decrement from every counter (``O(k)`` per decrement
event), a global decrement accumulator ``D`` is kept and counters store
``value + D_at_insert``.  A min-heap with lazy deletion finds the
minimum surviving counter in ``O(log k)`` amortized time, so updates are
``O(log k)`` amortized instead of ``O(k)``.
"""

from __future__ import annotations

import heapq
import math
from collections import Counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.base import Summary, normalize_batch
from ..core.exceptions import ParameterError
from ..core.items import plain
from ..core.registry import register_summary
from .prune import get_prune_rule

__all__ = ["MisraGries"]


@register_summary("misra_gries")
class MisraGries(Summary):
    """Misra-Gries heavy-hitter summary with ``k`` counters.

    Parameters
    ----------
    k:
        Number of counters (``k >= 1``).  For a target error ``eps`` use
        :meth:`from_epsilon`, which picks ``k = ceil(1/eps)`` so that the
        guaranteed error ``n/(k+1)`` is below ``eps * n``.

    Attributes
    ----------
    deduction:
        Upper bound on the under-estimation of any item's frequency;
        never exceeds ``n / (k+1)``, including across arbitrary merges.
    """

    def __init__(self, k: int, prune_rule: str = "paper") -> None:
        super().__init__()
        if not isinstance(k, int) or k < 1:
            raise ParameterError(f"k must be a positive integer, got {k!r}")
        self.k = k
        self.prune_rule = prune_rule
        self._prune = get_prune_rule(prune_rule)
        # item -> stored value + decrement level at insertion time
        self._adjusted: Dict[Any, int] = {}
        # global decrement accumulator: actual(x) = adjusted(x) - offset
        self._offset = 0
        # total decrement ever applied == max undercount of any item
        self._deduction = 0
        # min-heap of (adjusted_value, seq, item); the monotonic ``seq``
        # breaks value ties so heterogeneous item types never compare.
        # Entries go stale on updates (lazy deletion).
        self._heap: List[Tuple[int, int, Any]] = []
        self._heap_seq = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_epsilon(cls, epsilon: float) -> "MisraGries":
        """Summary guaranteeing error ``<= epsilon * n`` under any merges."""
        if not 0 < epsilon < 1:
            raise ParameterError(f"epsilon must be in (0, 1), got {epsilon!r}")
        return cls(k=math.ceil(1.0 / epsilon))

    # ------------------------------------------------------------------
    # Streaming updates
    # ------------------------------------------------------------------

    def update(self, item: Any, weight: int = 1) -> None:
        """Fold ``weight`` occurrences of ``item`` into the summary."""
        if weight <= 0:
            raise ParameterError(f"weight must be positive, got {weight!r}")
        self._n += weight
        adjusted = self._adjusted
        if item in adjusted:
            adjusted[item] += weight
            self._heap_push(item)
            self._compact_heap_if_needed()
            return
        if len(adjusted) < self.k:
            adjusted[item] = weight + self._offset
            self._heap_push(item)
            return
        # Summary full: decrement everyone (lazily) by the smaller of the
        # newcomer's weight and the minimum surviving counter value.
        minimum = self._current_min()
        decrement = min(weight, minimum)
        self._offset += decrement
        self._deduction += decrement
        if weight > decrement:
            adjusted[item] = weight + self._offset - decrement
            self._heap_push(item)
        self._evict_dead()

    def update_batch(self, items, weights=None) -> None:
        # pre-aggregate so each distinct item costs one weighted update
        # (O(log k) amortized) instead of one per occurrence
        items, weights, _ = normalize_batch(items, weights)
        aggregated: Counter = Counter()
        if weights is None:
            aggregated.update(
                items.tolist() if hasattr(items, "tolist") else items
            )
        else:
            for item, weight in zip(items, weights.tolist()):
                aggregated[plain(item)] += weight
        for item, weight in aggregated.items():
            self.update(item, weight)

    def _heap_push(self, item: Any) -> None:
        self._heap_seq += 1
        heapq.heappush(self._heap, (self._adjusted[item], self._heap_seq, item))

    def _current_min(self) -> int:
        """Actual value of the minimum live counter (summary full)."""
        heap, adjusted = self._heap, self._adjusted
        while heap:
            value, _seq, item = heap[0]
            if adjusted.get(item) == value:
                return value - self._offset
            heapq.heappop(heap)  # stale entry
        raise AssertionError("heap empty while summary reported full")

    def _evict_dead(self) -> None:
        """Drop counters whose actual value reached zero."""
        heap, adjusted, offset = self._heap, self._adjusted, self._offset
        while heap:
            value, _seq, item = heap[0]
            if adjusted.get(item) != value:
                heapq.heappop(heap)
                continue
            if value - offset > 0:
                return
            heapq.heappop(heap)
            del adjusted[item]

    def _compact_heap_if_needed(self) -> None:
        """Rebuild the heap when stale entries dominate it.

        Every counter touch pushes a fresh heap entry, so the heap can
        grow linearly with the stream; rebuilding once it exceeds a
        small multiple of ``k`` keeps memory ``O(k)`` without changing
        the amortized update cost.
        """
        if len(self._heap) > 8 * self.k + 16:
            self._heap = [
                (value, seq, item)
                for seq, (item, value) in enumerate(self._adjusted.items())
            ]
            self._heap_seq = len(self._heap)
            heapq.heapify(self._heap)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def deduction(self) -> int:
        """Maximum possible under-estimation (the paper's error term)."""
        return self._deduction

    @property
    def error_bound(self) -> float:
        """The a-priori guarantee ``n / (k+1)`` (``deduction`` never exceeds it)."""
        return self._n / (self.k + 1)

    def estimate(self, item: Any) -> int:
        """Lower-bound frequency estimate (0 for unmonitored items)."""
        value = self._adjusted.get(item)
        if value is None:
            return 0
        return value - self._offset

    def lower_bound(self, item: Any) -> int:
        """Alias of :meth:`estimate` — MG never over-estimates."""
        return self.estimate(item)

    def upper_bound(self, item: Any) -> int:
        """Upper bound on the item's true frequency."""
        return self.estimate(item) + self._deduction

    def counters(self) -> Dict[Any, int]:
        """Snapshot of the monitored items and their estimates."""
        offset = self._offset
        return {item: value - offset for item, value in self._adjusted.items()}

    def __contains__(self, item: Any) -> bool:
        return item in self._adjusted

    def size(self) -> int:
        return len(self._adjusted)

    # ------------------------------------------------------------------
    # Merge (combine + prune, the paper's algorithm)
    # ------------------------------------------------------------------

    def compatible_with(self, other: "Summary") -> Optional[str]:
        assert isinstance(other, MisraGries)
        if other.k != self.k:
            return f"k mismatch: {self.k} vs {other.k}"
        if other.prune_rule != self.prune_rule:
            return f"prune rule mismatch: {self.prune_rule} vs {other.prune_rule}"
        return None

    def _merge_same_type(self, other: "Summary") -> None:
        assert isinstance(other, MisraGries)
        combined = self.counters()
        for item, value in other.counters().items():
            combined[item] = combined.get(item, 0) + value
        total_n = self._n + other._n
        pruned, cut = self._prune(combined, self.k)
        total_deduction = self._deduction + other._deduction + cut
        self._replace_state(pruned, total_n, total_deduction)

    def _merge_many_same_type(self, others: Sequence["Summary"]) -> None:
        # s-way combine + ONE prune.  A single prune cuts at most as
        # much as the s-1 sequential prunes would, so the invariant
        # (k+1) * deduction <= n - stored_mass still holds.
        combined = self.counters()
        total_n = self._n
        total_deduction = self._deduction
        for other in others:
            assert isinstance(other, MisraGries)
            for item, value in other.counters().items():
                combined[item] = combined.get(item, 0) + value
            total_n += other._n
            total_deduction += other._deduction
        pruned, cut = self._prune(combined, self.k)
        self._replace_state(pruned, total_n, total_deduction + cut)

    def _replace_state(
        self, counters: Dict[Any, int], n: int, deduction: int
    ) -> None:
        self._adjusted = dict(counters)
        self._offset = 0
        self._deduction = deduction
        self._n = n
        self._heap = [
            (value, seq, item) for seq, (item, value) in enumerate(counters.items())
        ]
        self._heap_seq = len(self._heap)
        heapq.heapify(self._heap)

    # ------------------------------------------------------------------
    # Heavy hitters
    # ------------------------------------------------------------------

    def heavy_hitters(self, phi: float) -> Dict[Any, int]:
        """Candidates for items with true frequency ``>= phi * n``.

        Returns every monitored item whose *upper bound* reaches the
        threshold, so no true ``phi``-heavy hitter is missed (the
        classic no-false-negative guarantee); items with true frequency
        below ``(phi - 1/(k+1)) * n`` are guaranteed absent.
        """
        if not 0 < phi <= 1:
            raise ParameterError(f"phi must be in (0, 1], got {phi!r}")
        threshold = phi * self._n
        return {
            item: estimate
            for item, estimate in self.counters().items()
            if estimate + self._deduction >= threshold
        }

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "k": self.k,
            "prune_rule": self.prune_rule,
            "n": self._n,
            "deduction": self._deduction,
            "counters": [
                [plain(item), value] for item, value in self.counters().items()
            ],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "MisraGries":
        summary = cls(k=payload["k"], prune_rule=payload.get("prune_rule", "paper"))
        counters = {item: value for item, value in payload["counters"]}
        summary._replace_state(counters, payload["n"], payload["deduction"])
        return summary
