"""phi-heavy-hitter extraction and quality accounting.

The heavy-hitters problem asks for every item with true frequency at
least ``phi * n``.  Any frequency summary with additive error
``eps * n`` (``eps < phi``) answers it with the classic two-sided
guarantee: report every item whose upper bound reaches ``phi * n`` —
then no true heavy hitter is missed, and nothing with frequency below
``(phi - eps) * n`` is reported.

This module turns that guarantee into measurable quantities for the
benchmark harness: given a summary, the ground truth and ``phi``, it
computes the reported set, precision, recall, and whether the
no-false-negative guarantee held (it must, whenever ``eps <= phi``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Set

from ..core.exceptions import ParameterError

__all__ = ["HeavyHitterReport", "evaluate_heavy_hitters"]


@dataclass
class HeavyHitterReport:
    """Outcome of a heavy-hitter query against ground truth."""

    phi: float
    n: int
    reported: Dict[Any, int]
    true_heavy: Set[Any] = field(repr=False)
    precision: float = 0.0
    recall: float = 0.0
    false_positives: Set[Any] = field(default_factory=set, repr=False)
    false_negatives: Set[Any] = field(default_factory=set, repr=False)

    @property
    def guarantee_held(self) -> bool:
        """True when every true heavy hitter was reported."""
        return not self.false_negatives


def evaluate_heavy_hitters(
    summary: Any, truth: Dict[Any, int], phi: float
) -> HeavyHitterReport:
    """Evaluate ``summary.heavy_hitters(phi)`` against exact counts.

    ``summary`` is any object exposing ``heavy_hitters(phi)`` and ``n``
    (all frequency summaries in this library); ``truth`` maps items to
    exact frequencies over the same data.
    """
    if not 0 < phi <= 1:
        raise ParameterError(f"phi must be in (0, 1], got {phi!r}")
    n = summary.n
    if n != sum(truth.values()):
        raise ParameterError(
            f"summary n={n} does not match ground-truth total {sum(truth.values())}; "
            "heavy-hitter evaluation requires the same underlying dataset"
        )
    threshold = phi * n
    true_heavy = {item for item, count in truth.items() if count >= threshold}
    reported = summary.heavy_hitters(phi)
    reported_set = set(reported)
    tp = len(reported_set & true_heavy)
    precision = tp / len(reported_set) if reported_set else 1.0
    recall = tp / len(true_heavy) if true_heavy else 1.0
    return HeavyHitterReport(
        phi=phi,
        n=n,
        reported=reported,
        true_heavy=true_heavy,
        precision=precision,
        recall=recall,
        false_positives=reported_set - true_heavy,
        false_negatives=true_heavy - reported_set,
    )
