"""CountSketch — the unbiased linear-sketch baseline.

CountSketch (Charikar, Chen, Farach-Colton) hashes each item to one
counter per row with a random sign; the median-of-rows estimator is
unbiased with standard deviation ``O(sqrt(F2)/sqrt(width))``.  Like
CountMin it is a linear sketch and therefore trivially mergeable by
entry-wise addition; it appears in the benchmarks as the second
linear-sketch baseline, stronger on low-skew streams (error scales with
the residual L2 norm rather than L1).
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, Optional, Sequence

import numpy as np

from ..core.base import Summary, normalize_batch
from ..core.exceptions import ParameterError
from ..core.hashing import hash_batch, stable_hash
from ..core.registry import register_summary

__all__ = ["CountSketch"]


@register_summary("count_sketch")
class CountSketch(Summary):
    """CountSketch with ``depth`` rows of ``width`` signed counters."""

    def __init__(self, width: int, depth: int, seed: int = 0) -> None:
        super().__init__()
        if width < 1 or depth < 1:
            raise ParameterError(
                f"width and depth must be >= 1, got {width!r} x {depth!r}"
            )
        if depth % 2 == 0:
            # an odd depth makes the median an actual table entry
            depth += 1
        self.width = int(width)
        self.depth = int(depth)
        self.seed = int(seed)
        self._table = np.zeros((self.depth, self.width), dtype=np.int64)

    @classmethod
    def from_error(cls, epsilon: float, delta: float, seed: int = 0) -> "CountSketch":
        """Sketch with additive error ``eps * sqrt(F2)`` w.p. ``1 - delta``."""
        if not 0 < epsilon < 1:
            raise ParameterError(f"epsilon must be in (0, 1), got {epsilon!r}")
        if not 0 < delta < 1:
            raise ParameterError(f"delta must be in (0, 1), got {delta!r}")
        width = math.ceil(3.0 / (epsilon * epsilon))
        depth = max(1, math.ceil(math.log(1.0 / delta)))
        return cls(width=width, depth=depth, seed=seed)

    def _bucket_and_sign(self, item: Any, row: int) -> tuple[int, int]:
        h = stable_hash(item, seed=self.seed * 1_000_003 + row)
        bucket = h % self.width
        sign = 1 if (h >> 32) & 1 else -1
        return bucket, sign

    def update(self, item: Any, weight: int = 1) -> None:
        if weight <= 0:
            raise ParameterError(f"weight must be positive, got {weight!r}")
        for row in range(self.depth):
            bucket, sign = self._bucket_and_sign(item, row)
            self._table[row, bucket] += sign * weight
        self._n += weight

    def update_batch(
        self,
        items: Iterable[Any],
        weights: Optional[Sequence[int]] = None,
    ) -> None:
        items, weights, total = normalize_batch(items, weights)
        if not len(items):
            return
        for row in range(self.depth):
            hashes = hash_batch(items, seed=self.seed * 1_000_003 + row)
            buckets = (hashes % np.uint64(self.width)).astype(np.int64)
            signs = np.where(
                (hashes >> np.uint64(32)) & np.uint64(1), np.int64(1), np.int64(-1)
            )
            deltas = signs if weights is None else signs * weights
            np.add.at(self._table[row], buckets, deltas)
        self._n += total

    def estimate(self, item: Any) -> int:
        """Median-of-rows unbiased frequency estimate (may be negative)."""
        values = []
        for row in range(self.depth):
            bucket, sign = self._bucket_and_sign(item, row)
            values.append(sign * self._table[row, bucket])
        return int(np.median(values))

    def size(self) -> int:
        return self.width * self.depth

    def compatible_with(self, other: "Summary") -> Optional[str]:
        assert isinstance(other, CountSketch)
        if (self.width, self.depth, self.seed) != (other.width, other.depth, other.seed):
            return (
                f"sketch geometry/seed mismatch: "
                f"({self.width},{self.depth},{self.seed}) vs "
                f"({other.width},{other.depth},{other.seed})"
            )
        return None

    def _merge_same_type(self, other: "Summary") -> None:
        assert isinstance(other, CountSketch)
        self._table += other._table
        self._n += other._n

    def _merge_many_same_type(self, others: Sequence["Summary"]) -> None:
        # linear sketch: the s-way merge is one stacked entry-wise sum
        self._table += np.sum(
            np.stack([o._table for o in others]), axis=0  # type: ignore[attr-defined]
        )
        self._n += sum(o._n for o in others)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "width": self.width,
            "depth": self.depth,
            "seed": self.seed,
            "n": self._n,
            "table": self._table.tolist(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CountSketch":
        sketch = cls(payload["width"], payload["depth"], payload["seed"])
        sketch._table = np.array(payload["table"], dtype=np.int64)
        sketch._n = payload["n"]
        return sketch
