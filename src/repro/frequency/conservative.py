"""CountMin with conservative update — a *non-mergeable* cautionary tale.

Conservative update (Estan & Varghese) tightens CountMin's streaming
accuracy: on an update, only the cells equal to the current minimum
estimate are incremented, so collisions inflate counters far less.

The catch — and the reason this class exists in a mergeable-summaries
library — is that conservative update **breaks linearity**: the sketch
is no longer a linear function of the frequency vector, so adding two
tables is *not* the sketch of the union.  The sum remains a sound upper
bound (both operands over-estimate), but the accuracy advantage over
plain CountMin evaporates at the first merge and keeps eroding with
depth.  Benchmark E20 quantifies exactly this: conservative update wins
sequentially and converges to (or past) plain CountMin after merging —
a concrete instance of the paper's theme that streaming accuracy tricks
do not automatically survive mergeability requirements.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from ..core.base import Summary
from ..core.exceptions import ParameterError
from ..core.hashing import stable_hash
from ..core.registry import register_summary

__all__ = ["ConservativeCountMin"]


@register_summary("conservative_count_min")
class ConservativeCountMin(Summary):
    """CountMin with conservative update (non-linear; merge degrades).

    Same geometry/seed parameters as :class:`repro.frequency.CountMin`;
    ``merge_generations`` counts how many merges contributed, since
    each one costs part of the conservative-update advantage.
    """

    def __init__(self, width: int, depth: int, seed: int = 0) -> None:
        super().__init__()
        if width < 1 or depth < 1:
            raise ParameterError(
                f"width and depth must be >= 1, got {width!r} x {depth!r}"
            )
        self.width = int(width)
        self.depth = int(depth)
        self.seed = int(seed)
        self._table = np.zeros((self.depth, self.width), dtype=np.int64)
        self.merge_generations = 0

    def _row_indices(self, item: Any) -> np.ndarray:
        return np.array(
            [
                stable_hash(item, seed=self.seed * 1_000_003 + row) % self.width
                for row in range(self.depth)
            ],
            dtype=np.int64,
        )

    def update(self, item: Any, weight: int = 1) -> None:
        if weight <= 0:
            raise ParameterError(f"weight must be positive, got {weight!r}")
        rows = np.arange(self.depth)
        cols = self._row_indices(item)
        cells = self._table[rows, cols]
        # conservative rule: raise every cell only as far as the new
        # lower bound (current estimate + weight) requires
        target = cells.min() + weight
        self._table[rows, cols] = np.maximum(cells, target)
        self._n += weight

    def estimate(self, item: Any) -> int:
        cols = self._row_indices(item)
        return int(self._table[np.arange(self.depth), cols].min())

    def upper_bound(self, item: Any) -> int:
        return self.estimate(item)

    def size(self) -> int:
        return self.width * self.depth

    def compatible_with(self, other: "ConservativeCountMin") -> Optional[str]:
        assert isinstance(other, ConservativeCountMin)
        mine = (self.width, self.depth, self.seed)
        theirs = (other.width, other.depth, other.seed)
        if mine != theirs:
            return f"sketch geometry/seed mismatch: {mine} vs {theirs}"
        return None

    def _merge_same_type(self, other: "ConservativeCountMin") -> None:
        # table addition: sound (both over-estimate) but no longer a
        # conservative-update sketch of the union — see module docstring
        assert isinstance(other, ConservativeCountMin)
        self._table += other._table
        self._n += other._n
        self.merge_generations = (
            max(self.merge_generations, other.merge_generations) + 1
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "width": self.width,
            "depth": self.depth,
            "seed": self.seed,
            "n": self._n,
            "merge_generations": self.merge_generations,
            "table": self._table.tolist(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ConservativeCountMin":
        sketch = cls(payload["width"], payload["depth"], payload["seed"])
        sketch._table = np.array(payload["table"], dtype=np.int64)
        sketch._n = payload["n"]
        sketch.merge_generations = payload["merge_generations"]
        return sketch
