"""Boyer-Moore majority vote: the ``k = 1`` corner of Misra-Gries.

The majority-vote algorithm is exactly a Misra-Gries summary with a
single counter; it finds the (unique, if any) item occurring more than
``n/2`` times.  The paper's merge rule specializes to the well-known
"weighted majority combine": when two votes disagree, the larger count
absorbs the smaller as deduction.

Provided both as a pedagogical minimal mergeable summary and as a test
fixture (its behaviour is simple enough to verify by hand).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..core.base import Summary
from ..core.exceptions import EmptySummaryError, ParameterError
from ..core.items import plain
from ..core.registry import register_summary

__all__ = ["MajorityVote"]


@register_summary("majority_vote")
class MajorityVote(Summary):
    """Single-counter mergeable majority-candidate summary."""

    def __init__(self) -> None:
        super().__init__()
        self._candidate: Any = None
        self._count = 0
        self._deduction = 0

    def update(self, item: Any, weight: int = 1) -> None:
        if weight <= 0:
            raise ParameterError(f"weight must be positive, got {weight!r}")
        self._n += weight
        if self._count == 0:
            self._candidate = item
            self._count = weight
        elif item == self._candidate:
            self._count += weight
        else:
            absorbed = min(weight, self._count)
            self._count -= absorbed
            self._deduction += absorbed
            if weight > absorbed:
                self._candidate = item
                self._count = weight - absorbed
            elif self._count == 0:
                self._candidate = None

    @property
    def candidate(self) -> Any:
        """The current majority candidate (None when no counter survives)."""
        if self.is_empty:
            raise EmptySummaryError("majority vote over an empty summary")
        return self._candidate

    @property
    def deduction(self) -> int:
        """Maximum under-estimation of the candidate's true count (``<= n/2``)."""
        return self._deduction

    def estimate(self, item: Any) -> int:
        """Lower-bound count (nonzero only for the surviving candidate)."""
        if self._count > 0 and item == self._candidate:
            return self._count
        return 0

    def upper_bound(self, item: Any) -> int:
        return self.estimate(item) + self._deduction

    def size(self) -> int:
        return 1 if self._count > 0 else 0

    def _merge_same_type(self, other: "Summary") -> None:
        assert isinstance(other, MajorityVote)
        self._n += other._n
        self._deduction += other._deduction
        if other._count == 0:
            return
        if self._count == 0 or other._candidate == self._candidate:
            if self._count == 0:
                self._candidate = other._candidate
                self._count = other._count
            else:
                self._count += other._count
            return
        absorbed = min(self._count, other._count)
        self._deduction += absorbed
        if other._count > self._count:
            self._candidate = other._candidate
        self._count = abs(self._count - other._count)
        if self._count == 0:
            self._candidate = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n": self._n,
            "candidate": plain(self._candidate),
            "count": self._count,
            "deduction": self._deduction,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "MajorityVote":
        summary = cls()
        summary._n = payload["n"]
        summary._candidate = payload["candidate"]
        summary._count = payload["count"]
        summary._deduction = payload["deduction"]
        return summary
