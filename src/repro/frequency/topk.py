"""Top-k reporting with order guarantees from any frequency summary.

Heavy-hitter summaries give per-item *intervals* ``[lower, upper]``
around every frequency.  That is enough to say more than "here are the
candidates": if ``lower(a) > upper(b)`` then ``a`` truly occurs more
often than ``b`` — the order is *certified*, not just estimated.

:class:`TopKReport` computes, from any summary exposing ``counters()``,
``lower_bound`` and ``upper_bound`` (MisraGries, SpaceSaving,
DecayedMisraGries after adaptation), the best-effort top-k list along
with exactly which of its order relations are guaranteed and which
could flip under the summary's error — the report a monitoring UI
actually needs to render "#1 vs #2 (too close to call)" honestly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Tuple

from ..core.exceptions import ParameterError

__all__ = ["TopKEntry", "TopKReport", "top_k"]


@dataclass(frozen=True)
class TopKEntry:
    """One ranked item with its frequency interval."""

    rank: int
    item: Any
    estimate: int
    lower: int
    upper: int

    @property
    def uncertainty(self) -> int:
        return self.upper - self.lower


@dataclass
class TopKReport:
    """Ranked candidates plus certified/ambiguous order relations."""

    k: int
    entries: List[TopKEntry]
    #: adjacent pairs (rank i, rank i+1) whose order is guaranteed
    certified_pairs: List[Tuple[int, int]] = field(default_factory=list)
    #: adjacent pairs that could swap within the error intervals
    ambiguous_pairs: List[Tuple[int, int]] = field(default_factory=list)
    #: True when the *membership* of the top-k set is guaranteed, i.e.
    #: every reported item's lower bound beats the best excluded upper
    membership_certified: bool = False

    @property
    def fully_certified(self) -> bool:
        """True when membership and the entire order are guaranteed."""
        return self.membership_certified and not self.ambiguous_pairs

    def items(self) -> List[Any]:
        return [entry.item for entry in self.entries]


def top_k(summary: Any, k: int) -> TopKReport:
    """Best-effort top-``k`` with certified-order accounting.

    ``summary`` must expose ``counters()`` (monitored items with
    estimates), ``lower_bound(item)`` and ``upper_bound(item)``.
    """
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k!r}")
    counters = summary.counters()
    ranked = sorted(counters.items(), key=lambda kv: -kv[1])
    top = ranked[:k]
    rest = ranked[k:]

    entries = [
        TopKEntry(
            rank=i + 1,
            item=item,
            estimate=estimate,
            lower=summary.lower_bound(item),
            upper=summary.upper_bound(item),
        )
        for i, (item, estimate) in enumerate(top)
    ]

    certified: List[Tuple[int, int]] = []
    ambiguous: List[Tuple[int, int]] = []
    for above, below in zip(entries, entries[1:]):
        if above.lower > below.upper:
            certified.append((above.rank, below.rank))
        else:
            ambiguous.append((above.rank, below.rank))

    if entries:
        weakest_reported = min(entry.lower for entry in entries)
        best_excluded = max(
            (summary.upper_bound(item) for item, _ in rest), default=-1
        )
        membership_certified = weakest_reported > best_excluded
    else:
        membership_certified = False

    return TopKReport(
        k=k,
        entries=entries,
        certified_pairs=certified,
        ambiguous_pairs=ambiguous,
        membership_certified=membership_certified,
    )
