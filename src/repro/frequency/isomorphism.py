"""Explicit MG <-> SpaceSaving isomorphism (paper Section 2).

The paper proves that running Misra-Gries with ``k - 1`` counters and
classic SpaceSaving with ``k`` counters over the *same* stream produces
isomorphic states: for every item monitored by both,

    ss_count(x) - ss_min_equivalent == mg_count(x)

where the shift is the total decrement performed by MG (equivalently,
the mass SpaceSaving attributes to evictions).  This module provides

- :func:`classic_space_saving` — an independent, textbook reference
  implementation of the SpaceSaving stream algorithm (kept deliberately
  separate from :class:`repro.frequency.SpaceSaving`, which stores the
  MG image internally), used by tests to validate the isomorphism;
- :func:`mg_image_of_classic_ss` — derive the MG-style lower-bound state
  from a classic SS state;
- :func:`verify_isomorphism` — run both algorithms on a stream and check
  the correspondence, returning a report dict.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Tuple

from ..core.exceptions import ParameterError
from .misra_gries import MisraGries

__all__ = [
    "classic_space_saving",
    "mg_image_of_classic_ss",
    "verify_isomorphism",
]


def classic_space_saving(stream: Iterable[Any], k: int) -> Dict[Any, Tuple[int, int]]:
    """Textbook SpaceSaving: returns ``{item: (count, error)}``.

    ``count`` upper-bounds the item's true frequency; ``error`` is the
    count the item inherited when it evicted the previous minimum, so
    ``count - error`` lower-bounds the true frequency.
    """
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k!r}")
    counters: Dict[Any, List[int]] = {}
    for item in stream:
        if item in counters:
            counters[item][0] += 1
        elif len(counters) < k:
            counters[item] = [1, 0]
        else:
            victim = min(counters, key=lambda key: counters[key][0])
            floor = counters[victim][0]
            del counters[victim]
            counters[item] = [floor + 1, floor]
    return {item: (count, error) for item, (count, error) in counters.items()}


def mg_image_of_classic_ss(
    ss_state: Dict[Any, Tuple[int, int]], k: int
) -> Dict[Any, int]:
    """MG-style lower-bound counters derived from a classic SS state.

    Subtracts the SS minimum counter value (the paper's shift) from
    every counter and drops the non-positive results; when the SS
    summary is not yet full no shift is applied (the counts are exact).
    """
    if not ss_state:
        return {}
    shift = min(count for count, _ in ss_state.values()) if len(ss_state) >= k else 0
    return {
        item: count - shift
        for item, (count, _) in ss_state.items()
        if count - shift > 0
    }


def verify_isomorphism(stream: Iterable[Any], k: int) -> Dict[str, Any]:
    """Run MG(k-1) and classic SS(k) on ``stream``; compare their states.

    Returns a report with the two states, the shift, and ``matches``
    (True when the MG image of the SS state equals the MG state).  The
    correspondence is exact whenever the stream fills the SS summary and
    tie-breaking never matters (distinct counter values at eviction
    time); ties can make the *monitored sets* differ while the
    guarantees still hold, so the report also carries
    ``bounds_consistent`` which checks the guarantee-level agreement and
    never depends on tie-breaking.
    """
    items = list(stream)
    mg = MisraGries(k - 1)
    # the classic SS simulator below consumes the stream one occurrence
    # at a time, so MG must too — batched ingestion pre-aggregates and
    # would process a different (reordered) update sequence
    for item in items:
        mg.update(item)
    ss_state = classic_space_saving(items, k)
    image = mg_image_of_classic_ss(ss_state, k)
    mg_counters = mg.counters()

    shift = (
        min(count for count, _ in ss_state.values())
        if len(ss_state) >= k and ss_state
        else 0
    )
    exact = dict(image) == dict(mg_counters)

    # Guarantee-level consistency: both states bound every monitored
    # item's true frequency within n/k of each other.
    n = len(items)
    bound = n / k
    keys = set(image) | set(mg_counters)
    bounds_consistent = all(
        abs(image.get(key, 0) - mg_counters.get(key, 0)) <= bound for key in keys
    )
    return {
        "n": n,
        "k": k,
        "shift": shift,
        "mg_counters": mg_counters,
        "ss_state": ss_state,
        "ss_mg_image": image,
        "matches": exact,
        "bounds_consistent": bounds_consistent,
    }
