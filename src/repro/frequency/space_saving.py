"""The SpaceSaving (SS) frequency summary, mergeable via the MG isomorphism.

SpaceSaving with ``k`` counters (Metwally et al.) guarantees, for every
item ``x`` with true frequency ``f(x)``::

    f(x)  <=  estimate(x)  <=  f(x) + n/k        (monitored items)
    f(x)  <=  n/k                                 (unmonitored items)

i.e. SS *over*-estimates, symmetric to MG which under-estimates.

A key structural result of the paper (Section 2) is that the MG and SS
summaries are **isomorphic**: the SpaceSaving state on a stream equals
the Misra-Gries state (with one fewer counter) shifted by the SS minimum
counter value.  This implementation takes the isomorphism as its
internal representation: a :class:`SpaceSaving` with ``k`` counters *is*
an MG summary with ``k - 1`` counters plus the accumulated deduction
``Delta``; estimates are reported as ``mg_estimate + Delta`` which
restores the SS over-estimation semantics exactly:

- monitored:    ``f <= estimate <= f + Delta``  with ``Delta <= n/k``;
- unmonitored:  ``f <= Delta <= n/k``.

Mergeability is then inherited verbatim from the MG merge (combine +
prune with ``k - 1`` counters), which is precisely how the paper proves
SS mergeable.  :mod:`repro.frequency.isomorphism` provides the explicit
state conversions and a reference classic-SS simulator used by the test
suite to validate the isomorphism empirically.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional, Sequence

from ..core.base import Summary
from ..core.exceptions import ParameterError
from ..core.registry import register_summary
from .misra_gries import MisraGries

__all__ = ["SpaceSaving"]


@register_summary("space_saving")
class SpaceSaving(Summary):
    """SpaceSaving heavy-hitter summary with ``k`` counters.

    Parameters
    ----------
    k:
        Number of counters (``k >= 2``: SS with one counter carries no
        information beyond ``n``).  For error ``eps`` use
        :meth:`from_epsilon` (picks ``k = ceil(1/eps)`` so the error
        ``n/k <= eps * n``).
    """

    def __init__(self, k: int, prune_rule: str = "paper") -> None:
        super().__init__()
        if not isinstance(k, int) or k < 2:
            raise ParameterError(f"k must be an integer >= 2, got {k!r}")
        self.k = k
        self.prune_rule = prune_rule
        self._core = MisraGries(k - 1, prune_rule=prune_rule)

    @classmethod
    def from_epsilon(cls, epsilon: float) -> "SpaceSaving":
        """Summary guaranteeing error ``<= epsilon * n`` under any merges."""
        if not 0 < epsilon < 1:
            raise ParameterError(f"epsilon must be in (0, 1), got {epsilon!r}")
        return cls(k=max(2, math.ceil(1.0 / epsilon)))

    # ------------------------------------------------------------------
    # Streaming updates
    # ------------------------------------------------------------------

    def update(self, item: Any, weight: int = 1) -> None:
        """Fold ``weight`` occurrences of ``item`` into the summary."""
        self._core.update(item, weight)
        self._n = self._core.n

    def update_batch(self, items, weights=None) -> None:
        self._core.update_batch(items, weights)
        self._n = self._core.n

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def deduction(self) -> int:
        """Maximum over-estimation of any estimate (``<= n/k``)."""
        return self._core.deduction

    @property
    def error_bound(self) -> float:
        """The a-priori guarantee ``n / k``."""
        return self._n / self.k

    def estimate(self, item: Any) -> int:
        """SS-style upper-bound estimate (``deduction`` for unmonitored items)."""
        return self._core.estimate(item) + self._core.deduction

    def upper_bound(self, item: Any) -> int:
        """Alias of :meth:`estimate` — SS never under-estimates."""
        return self.estimate(item)

    def lower_bound(self, item: Any) -> int:
        """Guaranteed lower bound on the item's true frequency."""
        return self._core.estimate(item)

    def counters(self) -> Dict[Any, int]:
        """Snapshot of monitored items with their SS (upper-bound) estimates."""
        deduction = self._core.deduction
        return {
            item: value + deduction for item, value in self._core.counters().items()
        }

    def __contains__(self, item: Any) -> bool:
        return item in self._core

    def size(self) -> int:
        return self._core.size()

    # ------------------------------------------------------------------
    # Merge — inherited from the MG merge through the isomorphism
    # ------------------------------------------------------------------

    def compatible_with(self, other: "Summary") -> Optional[str]:
        assert isinstance(other, SpaceSaving)
        if other.k != self.k:
            return f"k mismatch: {self.k} vs {other.k}"
        if other.prune_rule != self.prune_rule:
            return f"prune rule mismatch: {self.prune_rule} vs {other.prune_rule}"
        return None

    def _merge_same_type(self, other: "Summary") -> None:
        assert isinstance(other, SpaceSaving)
        self._core.merge(other._core)
        self._n = self._core.n

    def _merge_many_same_type(self, others: Sequence["Summary"]) -> None:
        # one combine + one prune in the underlying MG core
        self._core.merge_many(
            [other._core for other in others]  # type: ignore[attr-defined]
        )
        self._n = self._core.n

    # ------------------------------------------------------------------
    # Heavy hitters
    # ------------------------------------------------------------------

    def heavy_hitters(self, phi: float) -> Dict[Any, int]:
        """Candidates for items with true frequency ``>= phi * n``.

        SS estimates are upper bounds, so keeping every monitored item
        whose estimate reaches ``phi * n`` misses no true heavy hitter.
        """
        if not 0 < phi <= 1:
            raise ParameterError(f"phi must be in (0, 1], got {phi!r}")
        threshold = phi * self._n
        return {
            item: estimate
            for item, estimate in self.counters().items()
            if estimate >= threshold
        }

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {"k": self.k, "prune_rule": self.prune_rule, "core": self._core.to_dict()}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SpaceSaving":
        summary = cls(k=payload["k"], prune_rule=payload.get("prune_rule", "paper"))
        summary._core = MisraGries.from_dict(payload["core"])
        summary._n = summary._core.n
        return summary
