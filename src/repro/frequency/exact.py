"""Exact frequency counter — ground truth and trivially mergeable baseline.

Keeps one counter per distinct item (space ``Theta(d)`` for ``d``
distinct items), so it is *not* a sublinear summary; it exists as the
oracle against which every sketch's error is measured, and as the
degenerate "mergeable with zero error, unbounded size" corner of the
size/error trade-off the paper's Table 1 maps out.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, Optional

from ..core.base import Summary, normalize_batch
from ..core.exceptions import ParameterError
from ..core.items import plain
from ..core.registry import register_summary

__all__ = ["ExactCounter"]


@register_summary("exact_counter")
class ExactCounter(Summary):
    """Exact per-item frequency counts (the ground-truth oracle)."""

    def __init__(self) -> None:
        super().__init__()
        self._counts: Counter = Counter()

    def update(self, item: Any, weight: int = 1) -> None:
        if weight <= 0:
            raise ParameterError(f"weight must be positive, got {weight!r}")
        self._counts[item] += weight
        self._n += weight

    def update_batch(self, items, weights=None) -> None:
        items, weights, total = normalize_batch(items, weights)
        if weights is None:
            self._counts.update(
                items.tolist() if hasattr(items, "tolist") else items
            )
        else:
            for item, weight in zip(items, weights.tolist()):
                self._counts[plain(item)] += weight
        self._n += total

    def estimate(self, item: Any) -> int:
        """Exact frequency of ``item`` (0 if never seen)."""
        return self._counts.get(item, 0)

    def lower_bound(self, item: Any) -> int:
        return self.estimate(item)

    def upper_bound(self, item: Any) -> int:
        return self.estimate(item)

    @property
    def deduction(self) -> int:
        """Exact counts carry no error."""
        return 0

    def counters(self) -> Dict[Any, int]:
        return dict(self._counts)

    def __contains__(self, item: Any) -> bool:
        return item in self._counts

    def size(self) -> int:
        return len(self._counts)

    def heavy_hitters(self, phi: float) -> Dict[Any, int]:
        """Items with true frequency ``>= phi * n`` (exact, no candidates)."""
        if not 0 < phi <= 1:
            raise ParameterError(f"phi must be in (0, 1], got {phi!r}")
        threshold = phi * self._n
        return {
            item: count for item, count in self._counts.items() if count >= threshold
        }

    def _merge_same_type(self, other: "Summary") -> None:
        assert isinstance(other, ExactCounter)
        self._counts.update(other._counts)
        self._n += other._n

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n": self._n,
            "counts": [[plain(item), c] for item, c in self._counts.items()],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ExactCounter":
        summary = cls()
        summary._counts = Counter({item: c for item, c in payload["counts"]})
        summary._n = payload["n"]
        return summary
