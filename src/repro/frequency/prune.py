"""Prune rules for the combine-and-prune merge of counter summaries.

The merge of two Misra-Gries summaries first *combines* (adds counters
item-wise — error free) and then, when more than ``kappa`` counters
survive, *prunes* back to at most ``kappa``.  Both rules below reduce
the stored mass by exactly ``(kappa + 1) * cut`` where ``cut`` is the
``(kappa + 1)``-st largest combined value, so both preserve the paper's
inductive invariant ``(kappa + 1) * deduction <= n - stored_mass`` and
hence the ``n/(kappa + 1)`` error bound under arbitrary merge
sequences.  They differ in how the removed mass is distributed:

``paper`` (Agarwal et al., PODS'12)
    subtract ``cut`` from *every* counter and drop the non-positive
    ones.  Every surviving counter loses exactly ``cut``.

``cafaro`` (Cafaro, Tempesta & Pulimeno — **extension, not part of the
PODS'12 claims**; this is the closed-form from the mismatched paper
text shipped with this task)
    emulate a run of the Frequent algorithm over the combined counters:
    with combined values ``f_1 <= ... <= f_L`` (padded with zeros to
    ``L = 2 * kappa``), the survivors are the top ``kappa`` values and
    the ``i``-th smallest survivor keeps
    ``f_{kappa+i} - f_kappa + f_{i-1}`` (``f_0 = 0``) — i.e. part of the
    subtracted mass is added back, reducing the *total* error while the
    per-item worst case stays ``cut``.

Both rules return the surviving counters plus the per-item deduction
increase (``cut``), which the caller folds into the summary's running
``deduction``.  Benchmark E12 (``bench_ablation_prune``) measures the
total-error gap between the two.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Tuple

from ..core.exceptions import ParameterError

__all__ = ["prune_paper", "prune_cafaro", "get_prune_rule", "PRUNE_RULES"]

PruneResult = Tuple[Dict[Any, int], int]


def prune_paper(combined: Dict[Any, int], kappa: int) -> PruneResult:
    """Agarwal et al. prune: subtract the ``(kappa+1)``-st largest value."""
    if len(combined) <= kappa:
        return dict(combined), 0
    values = sorted(combined.values(), reverse=True)
    cut = values[kappa]
    pruned = {item: value - cut for item, value in combined.items() if value > cut}
    return pruned, cut


def prune_cafaro(combined: Dict[Any, int], kappa: int) -> PruneResult:
    """Cafaro et al. closed-form prune (extension / ablation).

    Emulates running the Frequent algorithm with ``kappa`` counters over
    the combined counters, giving the same per-item worst-case deduction
    as :func:`prune_paper` but a strictly smaller total error whenever
    any of the ``kappa - 1`` smallest combined values is nonzero.
    """
    if len(combined) <= kappa:
        return dict(combined), 0
    # ascending order; pad with zeros to exactly 2*kappa entries
    ascending = sorted(combined.items(), key=lambda kv: kv[1])
    pad = 2 * kappa - len(ascending)
    if pad < 0:
        raise ParameterError(
            f"combined summary has {len(ascending)} counters; a combine of two "
            f"kappa={kappa} summaries can hold at most {2 * kappa}"
        )
    values = [0] * pad + [value for _, value in ascending]
    items = [None] * pad + [item for item, _ in ascending]
    cut = values[kappa - 1]  # f_kappa in 1-indexed notation
    pruned: Dict[Any, int] = {}
    for i in range(1, kappa + 1):  # survivor index, 1-indexed
        item = items[kappa + i - 1]
        carried_back = values[i - 2] if i >= 2 else 0  # f_{i-1}, f_0 = 0
        value = values[kappa + i - 1] - cut + carried_back
        if item is not None and value > 0:
            pruned[item] = value
    return pruned, cut


PRUNE_RULES: Dict[str, Callable[[Dict[Any, int], int], PruneResult]] = {
    "paper": prune_paper,
    "cafaro": prune_cafaro,
}


def get_prune_rule(name: str) -> Callable[[Dict[Any, int], int], PruneResult]:
    """Look up a prune rule by name (``"paper"`` or ``"cafaro"``)."""
    try:
        return PRUNE_RULES[name]
    except KeyError:
        raise ParameterError(
            f"unknown prune rule {name!r}; choose from {sorted(PRUNE_RULES)}"
        ) from None
