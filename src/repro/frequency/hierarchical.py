"""Dyadic hierarchy of Misra-Gries summaries: ranges and hierarchical HH.

A classical composition on top of any mergeable frequency summary: keep
one summary per *dyadic level* of an integer domain ``[0, 2^bits)``.
Level ``0`` monitors the items themselves, level ``j`` monitors dyadic
blocks of length ``2^j`` (item ``x`` maps to block ``x >> j``).  This
single structure answers, with guarantees inherited from MG:

- **range counts**: any interval ``[lo, hi]`` splits into at most
  ``2 * bits`` dyadic blocks, so
  ``range_count`` sums ``O(bits)`` estimates, each with error
  ``<= n/(k+1)`` — total error ``O(bits * n / (k+1))``, deterministic;
- **hierarchical heavy hitters**: prefixes (CIDR-style) whose subtree
  mass reaches ``phi * n`` — the network-monitoring query ("which /16
  is hot?") that flat heavy hitters cannot answer;
- **mergeability**: merging two hierarchies is a level-wise MG merge,
  so every per-level guarantee survives arbitrary merge sequences —
  the paper's composition argument in action.

Space: ``(bits + 1) * k`` counters.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..core.base import Summary, normalize_batch
from ..core.exceptions import ParameterError
from ..core.registry import register_summary
from .misra_gries import MisraGries

__all__ = ["DyadicHierarchy"]


@register_summary("dyadic_hierarchy")
class DyadicHierarchy(Summary):
    """Per-dyadic-level MG summaries over an integer domain.

    Parameters
    ----------
    k:
        Counters per level.
    bits:
        Domain is ``[0, 2**bits)``; ``bits + 1`` levels are kept.
    """

    def __init__(self, k: int, bits: int) -> None:
        super().__init__()
        if not isinstance(k, int) or k < 1:
            raise ParameterError(f"k must be a positive integer, got {k!r}")
        if not 1 <= bits <= 40:
            raise ParameterError(f"bits must be in [1, 40], got {bits!r}")
        self.k = k
        self.bits = int(bits)
        self._levels: List[MisraGries] = [
            MisraGries(k) for _ in range(self.bits + 1)
        ]

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def _check_item(self, item: Any) -> int:
        value = int(item)
        if not 0 <= value < (1 << self.bits):
            raise ParameterError(
                f"item {value} outside the domain [0, 2^{self.bits})"
            )
        return value

    def update(self, item: Any, weight: int = 1) -> None:
        value = self._check_item(item)
        for level, summary in enumerate(self._levels):
            summary.update(value >> level, weight)
        self._n += weight

    def update_batch(self, items, weights=None) -> None:
        items, weights, total = normalize_batch(items, weights)
        if not len(items):
            return
        values = np.asarray(items)
        if values.dtype.kind not in ("i", "u"):
            values = np.array([int(item) for item in items])
        values = values.astype(np.int64)
        if (values < 0).any() or (values >= (1 << self.bits)).any():
            bad = values[(values < 0) | (values >= (1 << self.bits))][0]
            raise ParameterError(
                f"item {int(bad)} outside the domain [0, 2^{self.bits})"
            )
        for level, summary in enumerate(self._levels):
            summary.update_batch((values >> level).tolist(), weights)
        self._n += total

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def estimate(self, item: Any) -> int:
        """Lower-bound frequency of a single item (level 0)."""
        return self._levels[0].estimate(self._check_item(item))

    def prefix_estimate(self, prefix: int, level: int) -> int:
        """Lower-bound mass of the dyadic block ``prefix`` at ``level``
        (all items ``x`` with ``x >> level == prefix``)."""
        if not 0 <= level <= self.bits:
            raise ParameterError(f"level must be in [0, {self.bits}], got {level!r}")
        return self._levels[level].estimate(prefix)

    @property
    def deduction_per_level(self) -> int:
        """Worst per-estimate under-count at any level (``<= n/(k+1)``)."""
        return max(summary.deduction for summary in self._levels)

    def _dyadic_cover(self, lo: int, hi: int) -> List[Tuple[int, int]]:
        """Decompose ``[lo, hi]`` into maximal dyadic blocks
        (``(level, prefix)`` pairs, at most ``2 * bits`` of them)."""
        blocks: List[Tuple[int, int]] = []
        position = lo
        end = hi + 1
        while position < end:
            level = 0
            # grow the block while aligned and fitting
            while level < self.bits:
                size = 1 << (level + 1)
                if position % size == 0 and position + size <= end:
                    level += 1
                else:
                    break
            blocks.append((level, position >> level))
            position += 1 << level
        return blocks

    def range_count(self, lo: int, hi: int) -> int:
        """Lower-bound count of items in ``[lo, hi]`` (inclusive).

        Error: at most ``2 * bits * n/(k+1)`` below the truth, never
        above (MG under-estimates).
        """
        lo = self._check_item(lo)
        hi = self._check_item(hi)
        if lo > hi:
            raise ParameterError(f"empty range [{lo}, {hi}]")
        return sum(
            self._levels[level].estimate(prefix)
            for level, prefix in self._dyadic_cover(lo, hi)
        )

    def range_count_upper(self, lo: int, hi: int) -> int:
        """Upper bound on the count of items in ``[lo, hi]``."""
        lo = self._check_item(lo)
        hi = self._check_item(hi)
        if lo > hi:
            raise ParameterError(f"empty range [{lo}, {hi}]")
        return sum(
            self._levels[level].upper_bound(prefix)
            for level, prefix in self._dyadic_cover(lo, hi)
        )

    def hierarchical_heavy_hitters(self, phi: float) -> Dict[Tuple[int, int], int]:
        """Dyadic blocks with (possibly) ``>= phi * n`` mass, all levels.

        Returns ``{(level, prefix): lower_bound_estimate}``.  No true
        phi-heavy block is missed (each level keeps the MG
        no-false-negative property); blocks below
        ``(phi - 1/(k+1)) * n`` are guaranteed absent.
        """
        if not 0 < phi <= 1:
            raise ParameterError(f"phi must be in (0, 1], got {phi!r}")
        result: Dict[Tuple[int, int], int] = {}
        for level, summary in enumerate(self._levels):
            for prefix, estimate in summary.heavy_hitters(phi).items():
                result[(level, int(prefix))] = estimate
        return result

    def size(self) -> int:
        return sum(summary.size() for summary in self._levels)

    # ------------------------------------------------------------------
    # Merge — level-wise
    # ------------------------------------------------------------------

    def compatible_with(self, other: "DyadicHierarchy") -> Optional[str]:
        assert isinstance(other, DyadicHierarchy)
        if (self.k, self.bits) != (other.k, other.bits):
            return (
                f"hierarchy mismatch: (k={self.k}, bits={self.bits}) vs "
                f"(k={other.k}, bits={other.bits})"
            )
        return None

    def _merge_same_type(self, other: "DyadicHierarchy") -> None:
        assert isinstance(other, DyadicHierarchy)
        for mine, theirs in zip(self._levels, other._levels):
            mine.merge(theirs)
        self._n += other._n

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "k": self.k,
            "bits": self.bits,
            "n": self._n,
            "levels": [summary.to_dict() for summary in self._levels],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "DyadicHierarchy":
        hierarchy = cls(k=payload["k"], bits=payload["bits"])
        hierarchy._levels = [
            MisraGries.from_dict(state) for state in payload["levels"]
        ]
        hierarchy._n = payload["n"]
        return hierarchy
