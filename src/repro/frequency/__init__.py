"""Frequency-estimation summaries (paper Section 2) and baselines.

Mergeable summaries:

- :class:`MisraGries` — the paper's central deterministic result;
- :class:`SpaceSaving` — mergeable via the MG isomorphism;
- :class:`MajorityVote` — the single-counter special case;
- :class:`CountMin`, :class:`CountSketch` — linear-sketch baselines;
- :class:`ExactCounter` — ground truth.
"""

from .conservative import ConservativeCountMin
from .count_min import CountMin
from .count_sketch import CountSketch
from .exact import ExactCounter
from .heavy_hitters import HeavyHitterReport, evaluate_heavy_hitters
from .hierarchical import DyadicHierarchy
from .isomorphism import (
    classic_space_saving,
    mg_image_of_classic_ss,
    verify_isomorphism,
)
from .majority import MajorityVote
from .misra_gries import MisraGries
from .prune import PRUNE_RULES, get_prune_rule, prune_cafaro, prune_paper
from .space_saving import SpaceSaving
from .topk import TopKEntry, TopKReport, top_k

__all__ = [
    "MisraGries",
    "SpaceSaving",
    "MajorityVote",
    "CountMin",
    "ConservativeCountMin",
    "DyadicHierarchy",
    "CountSketch",
    "ExactCounter",
    "HeavyHitterReport",
    "evaluate_heavy_hitters",
    "classic_space_saving",
    "mg_image_of_classic_ss",
    "verify_isomorphism",
    "prune_paper",
    "prune_cafaro",
    "get_prune_rule",
    "PRUNE_RULES",
    "top_k",
    "TopKReport",
    "TopKEntry",
]
