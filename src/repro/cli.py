"""Command-line interface: build, merge, and query summaries from files.

A thin production-style front end over the library, mirroring how the
sketches ship in systems like Apache DataSketches: summaries are built
from newline-delimited item files, persisted in the library's JSON wire
format, merged across files, and queried — so a shell pipeline can run
a whole distributed-aggregation experiment.

Examples
--------
::

    python -m repro build --type misra_gries --arg k=64 \
        --input shard0.txt --out s0.json
    python -m repro build --type misra_gries --arg k=64 \
        --input shard1.txt --out s1.json
    python -m repro merge s0.json s1.json --out merged.json
    python -m repro query merged.json --heavy-hitters 0.01
    python -m repro inspect merged.json
    python -m repro simulate --type misra_gries --arg k=64 \
        --input items.txt --nodes 16 --topology balanced \
        --loss 0.2 --crash 0.05 --duplicate 0.2 --seed 7
    python -m repro store ingest --dir ./hits --type misra_gries \
        --arg k=64 --width 3600 --input items.txt --keys stamps.txt --wal
    python -m repro store compact --dir ./hits
    python -m repro store query --dir ./hits --lo 0 --hi 86400 \
        --heavy-hitters 0.01 --explain
    python -m repro store verify --dir ./hits
    python -m repro store recover --dir ./hits
    python -m repro store ingest --dir ./cube --type moment_sketch \
        --dims region,device --width 3600 --input records.jsonl
    python -m repro store compact --dir ./cube --budget 10000 \
        --workload shapes.json
    python -m repro store query --dir ./cube --lo 0 --hi 86400 \
        --where region=eu --group-by device --quantile 0.99 --explain
    python -m repro build --type misra_gries --arg k=64 \
        --window 1000 --eps 0.25 --input items.txt --out windowed.json
    python -m repro store query --dir ./hits --window 3600 \
        --window-eps 0.25 --heavy-hitters 0.01 --explain
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from .core import (
    MERGE_STRATEGIES,
    ReproError,
    dumps,
    get_summary_class,
    loads,
    merge_all,
    registered_codecs,
    registered_names,
)

__all__ = ["main"]


def _parse_item(token: str) -> Any:
    """Interpret a file line as int, then float, then raw string."""
    token = token.strip()
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        return token


def _parse_args_kv(pairs: Optional[List[str]]) -> Dict[str, Any]:
    """Parse repeated ``--arg name=value`` options into constructor kwargs."""
    kwargs: Dict[str, Any] = {}
    for pair in pairs or []:
        if "=" not in pair:
            raise SystemExit(f"--arg expects name=value, got {pair!r}")
        name, _, raw = pair.partition("=")
        try:
            kwargs[name] = ast.literal_eval(raw)
        except (ValueError, SyntaxError):
            kwargs[name] = raw
    return kwargs


def _read_items(path: str) -> List[Any]:
    text = Path(path).read_text()
    return [_parse_item(line) for line in text.splitlines() if line.strip()]


def _read_weights(path: str) -> List[int]:
    """Read a newline-delimited positive-integer weight file."""
    weights: List[int] = []
    for line in Path(path).read_text().splitlines():
        if not line.strip():
            continue
        try:
            weights.append(int(line))
        except ValueError:
            raise SystemExit(f"--weights file has a non-integer line: {line!r}")
    return weights


def _load_summary(path: str):
    return loads(Path(path).read_text())


def _cmd_build(args: argparse.Namespace) -> int:
    cls = get_summary_class(args.type)
    kwargs = _parse_args_kv(args.arg)
    summary = cls(**kwargs)
    if args.window is not None or args.eps is not None:
        # lift the (still empty) base summary to sliding-window
        # semantics; the registry resolves the windowed.<type> variant
        summary = summary.windowed(
            eps=args.eps if args.eps is not None else 0.25,
            window=args.window,
            granularity=args.granularity,
        )
    items = _read_items(args.input)
    weights = _read_weights(args.weights) if args.weights else None
    if weights is not None and len(weights) != len(items):
        raise SystemExit(
            f"--weights has {len(weights)} line(s) but --input has "
            f"{len(items)} item(s)"
        )
    # one batched (optionally weighted) ingestion call, not a per-line loop
    summary.extend(items, weights)
    Path(args.out).write_text(dumps(summary))
    built = getattr(type(summary), "registry_name", args.type)
    print(f"built {built}: n={summary.n} size={summary.size()} -> {args.out}")
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    summaries = [_load_summary(path) for path in args.inputs]
    # --seed is only forwarded when given; a seed on a deterministic
    # strategy is a user error that merge_all reports precisely
    merged = merge_all(summaries, strategy=args.strategy, rng=args.seed)
    Path(args.out).write_text(dumps(merged))
    print(
        f"merged {len(args.inputs)} summaries ({args.strategy}): "
        f"n={merged.n} size={merged.size()} -> {args.out}"
    )
    return 0


def _run_point_queries(summary, args: argparse.Namespace, prefix: str = "") -> bool:
    """Apply the shared ``--quantile``/``--estimate``/... flags; True if any ran."""
    ran_query = False
    if args.heavy_hitters is not None:
        ran_query = True
        for item, estimate in sorted(
            summary.heavy_hitters(args.heavy_hitters).items(), key=lambda kv: -kv[1]
        ):
            print(f"{prefix}{item}\t{estimate}")
    if args.quantile is not None:
        ran_query = True
        print(f"{prefix}{summary.quantile(args.quantile)}")
    if args.rank is not None:
        ran_query = True
        print(f"{prefix}{summary.rank(args.rank)}")
    if args.estimate is not None:
        ran_query = True
        print(f"{prefix}{summary.estimate(_parse_item(args.estimate))}")
    if args.distinct:
        ran_query = True
        print(f"{prefix}{summary.distinct()}")
    return ran_query


def _cmd_query(args: argparse.Namespace) -> int:
    summary = _load_summary(args.summary)
    from .windows import WindowedSummary

    if isinstance(summary, WindowedSummary):
        # point queries live on the base type: answer from the merged
        # view of the trailing window (the configured one by default)
        summary = summary.window_query(window=args.window).summary
    elif args.window is not None:
        from .core import ParameterError

        raise ParameterError("--window requires a windowed summary file")
    if not _run_point_queries(summary, args):
        raise SystemExit(
            "query needs one of --heavy-hitters/--quantile/--rank/"
            "--estimate/--distinct"
        )
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    summary = _load_summary(args.summary)
    print(f"type: {summary.registry_name}")
    print(f"n: {summary.n}")
    print(f"size: {summary.size()}")
    for attr in ("k", "epsilon", "s", "deduction", "error_bound"):
        value = getattr(summary, attr, None)
        if value is not None and not callable(value):
            print(f"{attr}: {value}")
    return 0


def _cmd_types(args: argparse.Namespace) -> int:
    for name in registered_names(kind=args.kind):
        print(name)
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from .engine import compile_aggregation, compile_fold, plan_step_waves

    if args.windowed:
        # bucket-aware fold over synthetic windowed operands: shows the
        # per-level slice/union/stitch structure the engine executes
        from .frequency import ExactCounter
        from .windows.fold import compile_windowed_fold

        parts = []
        for i in range(args.count):
            part = ExactCounter().windowed(eps=0.25, granularity=4)
            for j in range(32):
                part.update((i * 32 + j) % 7)
            parts.append(part)
        plan = compile_windowed_fold(parts)
    elif args.topology is not None:
        from .distributed import build_topology

        schedule = build_topology(
            args.topology, args.nodes, rng=args.seed if args.seed is not None else 0
        )
        plan = compile_aggregation(schedule)
    else:
        strategy = args.strategy or "tree"
        if args.seed is not None and not MERGE_STRATEGIES[strategy].uses_rng:
            raise SystemExit(
                f"--seed is only meaningful with a randomized strategy, "
                f"not {strategy!r}"
            )
        plan = compile_fold(strategy, args.count, rng=args.seed)
    print(plan.describe())
    if args.waves:
        if not plan.groupable:
            print("waves: (plan is not groupable; it always runs step by step)")
            return 0
        waves = plan_step_waves(
            plan.merge_steps,
            first_index=len(plan.build_steps),
            fuse=plan.fuse_fanin,
        )
        print(f"waves: {len(waves)} over {len(plan.merge_steps)} merge step(s)")
        for number, wave in enumerate(waves):
            rendered = ", ".join(
                f"{group.dst!r}<-[{', '.join(repr(s) for s in group.srcs)}]"
                for group in wave
            )
            print(f"  wave {number}: {rendered}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    import numpy as np

    from .analysis import degradation_report
    from .distributed import (
        PARTITIONERS,
        FaultModel,
        RetryPolicy,
        build_topology,
        run_aggregation,
    )

    cls = get_summary_class(args.type)
    kwargs = _parse_args_kv(args.arg)
    data = np.array(_read_items(args.input))
    fault_model = FaultModel(
        loss=args.loss,
        crash=args.crash,
        duplicate=args.duplicate,
        corruption=args.corruption,
        rng=args.seed,
    )
    result = run_aggregation(
        data,
        PARTITIONERS[args.partitioner](),
        lambda: cls(**kwargs),
        build_topology(args.topology, args.nodes, rng=args.seed),
        serialize=True,
        fault_model=fault_model,
        retry_policy=RetryPolicy(max_attempts=args.retries),
        exactly_once=not args.no_ledger,
        executor=args.workers,
    )
    stats = result.fault_stats
    report = degradation_report(result)
    if result.degraded_to_serial:
        print(
            "warning: --workers requested parallel execution but (part of) "
            "the run degraded to serial:"
        )
        for event in result.degradation_events:
            print(f"  - {event}")
    print(
        f"root: type={args.type} n={result.summary.n} size={result.summary.size()}"
    )
    print(
        f"run: nodes={result.nodes} topology={args.topology} "
        f"merges={result.merges} depth={result.depth} "
        f"bytes_shipped={result.bytes_shipped} "
        f"bytes_retransmitted={result.bytes_retransmitted}"
    )
    print(
        f"coverage: {result.coverage:.2%} "
        f"({report.delivered_leaves}/{result.nodes} leaves, "
        f"{report.delivered_records}/{report.total_records} records; "
        f"lost leaves: {report.lost_leaves or 'none'})"
    )
    print(
        f"faults: lost={stats.messages_lost} retries={stats.retries} "
        f"corrupted={stats.corrupted_payloads} "
        f"(detected {stats.corruption_detected}) "
        f"duplicates={stats.duplicates_delivered} "
        f"(suppressed {stats.duplicates_suppressed}, "
        f"merged {stats.duplicates_merged}) "
        f"crashed={stats.nodes_crashed} failed={stats.deliveries_failed}"
    )
    if args.out:
        Path(args.out).write_text(dumps(result.summary))
        print(f"root summary -> {args.out}")
    return 0


def _read_keys(path: str) -> List[float]:
    """Read a newline-delimited numeric key file (one key per item)."""
    keys: List[float] = []
    for line in Path(path).read_text().splitlines():
        if not line.strip():
            continue
        try:
            keys.append(float(line))
        except ValueError:
            raise SystemExit(f"--keys file has a non-numeric line: {line!r}")
    return keys


def _is_cube_dir(directory: str) -> bool:
    """True when the directory holds a dimension-cube manifest."""
    import json as _json

    manifest = Path(directory) / "manifest.json"
    if not manifest.exists():
        return False
    try:
        return _json.loads(manifest.read_text()).get("kind") == "cube"
    except (ValueError, OSError):
        return False


def _open_store(directory: str):
    from .store import load

    # the manifest names the kind; load() returns the matching class
    return load(directory)


def _read_records(path: str) -> List[Dict[str, Any]]:
    """Read a JSONL record file (one JSON object per line) for cube ingest."""
    import json as _json

    records: List[Dict[str, Any]] = []
    for lineno, line in enumerate(Path(path).read_text().splitlines(), 1):
        if not line.strip():
            continue
        try:
            obj = _json.loads(line)
        except ValueError:
            raise SystemExit(
                f"--input line {lineno} is not valid JSON (with --dims each "
                f"line must be a JSON object): {line!r}"
            )
        if not isinstance(obj, dict):
            raise SystemExit(
                f"--input line {lineno} must be a JSON object, "
                f"got {type(obj).__name__}"
            )
        records.append(obj)
    return records


def _cmd_store_ingest(args: argparse.Namespace) -> int:
    import os

    from .store import CubeStore, SegmentStore

    target = Path(args.dir)
    dims = (
        tuple(d.strip() for d in args.dims.split(",") if d.strip())
        if args.dims
        else None
    )
    if (target / "manifest.json").exists():
        if _is_cube_dir(args.dir):
            if args.wal:
                store = CubeStore.open_durable(
                    args.dir, fsync_every=args.fsync_every
                )
            else:
                store = CubeStore.open(args.dir)
            if dims and dims != store.dims:
                raise SystemExit(
                    f"{args.dir} is keyed by dims {list(store.dims)}; "
                    f"--dims must match or be omitted"
                )
        elif dims:
            raise SystemExit(
                f"{args.dir} is a flat store; --dims only applies when "
                f"creating a new cube"
            )
        elif args.wal:
            store = SegmentStore.open_durable(
                args.dir, fsync_every=args.fsync_every
            )
        else:
            store = _open_store(args.dir)
    else:
        if not args.type:
            raise SystemExit("--type is required when creating a new store")
        if dims:
            store = CubeStore(
                width=args.width,
                dims=dims,
                codec=args.codec,
                view_capacity=args.view_capacity,
            )
        else:
            store = SegmentStore(
                width=args.width,
                codec=args.codec,
                view_capacity=args.view_capacity,
            )
        store.add_member(
            "value", args.type, field="value", **_parse_args_kv(args.arg)
        )
        if args.wal:
            store.enable_wal(
                os.path.join(args.dir, "wal"), fsync_every=args.fsync_every
            )
    is_cube = isinstance(store, CubeStore)
    if is_cube:
        records = _read_records(args.input)
    else:
        records = [{"value": item} for item in _read_items(args.input)]
    keys = _read_keys(args.keys) if args.keys else None
    if keys is not None and len(keys) != len(records):
        raise SystemExit(
            f"--keys has {len(keys)} line(s) but --input has "
            f"{len(records)} item(s)"
        )
    weights = _read_weights(args.weights) if args.weights else None
    if weights is not None and len(weights) != len(records):
        raise SystemExit(
            f"--weights has {len(weights)} line(s) but --input has "
            f"{len(records)} item(s)"
        )
    stats = store.ingest(records, keys, weights)
    report = store.save(args.dir)
    wal_note = ""
    if args.wal:
        wal_note = (
            f" [wal seq {store.wal_seq}, "
            f"retired {report.get('wal_retired', 0)} file(s)]"
        )
    unit = "cells" if is_cube else "segments"
    created = stats["cells_created" if is_cube else "segments_created"]
    replaced = stats["cells_replaced" if is_cube else "segments_replaced"]
    print(
        f"ingested {stats['records']} records: "
        f"{unit} +{created} "
        f"(replaced {replaced}, "
        f"invalidated {stats['rollups_invalidated']} roll-ups) "
        f"-> {args.dir}{wal_note}"
    )
    return 0


def _read_workload(path: str):
    """Read a JSON workload file for ``repro store compact --workload``."""
    import json as _json

    try:
        workload = _json.loads(Path(path).read_text())
    except ValueError as exc:
        raise SystemExit(f"--workload file is not valid JSON: {exc}")
    if not isinstance(workload, list):
        raise SystemExit(
            "--workload must be a JSON list of query shapes "
            '(e.g. [{"group_by": ["region"], "weight": 3}])'
        )
    return workload


def _cmd_store_compact(args: argparse.Namespace) -> int:
    from .store import CubeStore

    store = _open_store(args.dir)
    if isinstance(store, CubeStore):
        workload = _read_workload(args.workload) if args.workload else None
        stats = store.compact(
            executor=args.workers, budget=args.budget, workload=workload
        )
        store.save(args.dir)
        print(
            f"compacted cube: {stats['masks']} mask(s) over "
            f"{stats['candidate_masks']} candidate(s), "
            f"built {stats['dim_cells_built']} dimension cell(s) + "
            f"{stats['time_rollups_built']} time roll-up(s), "
            f"{stats['merge_inputs']} merge inputs -> {args.dir}"
        )
        return 0
    if args.budget is not None or args.workload:
        raise SystemExit(
            f"{args.dir} is a flat store; --budget/--workload only apply "
            f"to dimension cubes"
        )
    stats = store.compact(executor=args.workers)
    store.save(args.dir)
    print(
        f"compacted {store.num_segments} segments: "
        f"built {stats['rollups_built']} roll-ups over {stats['levels']} "
        f"level(s), {stats['merge_inputs']} merge inputs -> {args.dir}"
    )
    return 0


def _parse_where(pairs: Optional[List[str]]) -> Optional[Dict[str, Any]]:
    """Parse repeated ``--where dim=value`` filters into a mapping."""
    if not pairs:
        return None
    where: Dict[str, Any] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--where expects dim=value, got {pair!r}")
        name, _, raw = pair.partition("=")
        where[name] = _parse_item(raw)
    return where


def _cmd_store_query(args: argparse.Namespace) -> int:
    from .store import CubeStore

    store = _open_store(args.dir)
    if isinstance(store, CubeStore):
        group_by = (
            tuple(g.strip() for g in args.group_by.split(",") if g.strip())
            if args.group_by
            else None
        )
        result = store.query(
            args.lo,
            args.hi,
            where=_parse_where(args.where),
            group_by=group_by,
            use_rollups=not args.no_rollups,
            window=args.window,
            window_eps=args.window_eps,
        )
        if args.explain:
            print(result.plan.describe())
        ran = False
        for key in sorted(result.groups, key=repr):
            prefix = ""
            if group_by:
                labels = ", ".join(
                    f"{dim}={value}" for dim, value in zip(group_by, key)
                )
                prefix = f"[{labels}] "
            ran = (
                _run_point_queries(result.groups[key]["value"], args, prefix)
                or ran
            )
        if not ran and not args.explain:
            raise SystemExit(
                "store query needs --explain or one of --heavy-hitters/"
                "--quantile/--rank/--estimate/--distinct"
            )
        return 0
    if args.where or args.group_by:
        raise SystemExit(
            f"{args.dir} is a flat store; --where/--group-by only apply "
            f"to dimension cubes"
        )
    result = store.query(
        args.lo,
        args.hi,
        use_rollups=not args.no_rollups,
        window=args.window,
        window_eps=args.window_eps,
    )
    if args.explain:
        print(result.plan.describe())
    ran = _run_point_queries(result["value"], args)
    if not ran and not args.explain:
        raise SystemExit(
            "store query needs --explain or one of --heavy-hitters/"
            "--quantile/--rank/--estimate/--distinct"
        )
    return 0


def _cmd_store_stats(args: argparse.Namespace) -> int:
    import json as _json

    print(_json.dumps(_open_store(args.dir).stats(), indent=2, sort_keys=True))
    return 0


def _cmd_store_recover(args: argparse.Namespace) -> int:
    import json as _json

    from .store import SegmentStore

    store, report = SegmentStore.recover(args.dir)
    if args.json:
        print(_json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(
            f"recovered {args.dir}: snapshot {report.snapshot_loaded} -> "
            f"{report.snapshot_committed}, replayed "
            f"{report.wal_records_replayed} WAL batch(es) "
            f"({report.records_recovered} records), retired "
            f"{report.wal_files_retired} log file(s)"
        )
        for entry in report.wal_quarantined:
            print(f"  quarantined WAL: {entry['file']} ({entry['reason']})")
        for entry in report.segments_quarantined:
            print(
                f"  quarantined segment {entry['id']}: {entry['file']} "
                f"({entry['reason']})"
            )
        if report.clean:
            print(f"  clean: {store.records} records served")
    return 0


def _cmd_store_verify(args: argparse.Namespace) -> int:
    import json as _json

    from .store import SegmentStore

    report = SegmentStore.verify(args.dir)
    if args.json:
        print(_json.dumps(report, indent=2, sort_keys=True))
    elif report["ok"]:
        segs = report["segments"]
        print(
            f"ok: {args.dir} (snapshot {report['snapshot']}, "
            f"{segs['ok']}/{segs['referenced']} segments verified, "
            f"{report['wal']['replayable']} replayable WAL batch(es))"
        )
    else:
        print(f"NOT ok: {args.dir}")
        if report.get("manifest") != "ok":
            print(f"  manifest: {report['manifest']}")
        for entry in report.get("segments", {}).get("corrupt", []):
            print(f"  corrupt segment {entry['id']}: {entry['reason']}")
        for seg_id in report.get("segments", {}).get("missing", []):
            print(f"  missing segment {seg_id}")
        for entry in report.get("wal", {}).get("torn", []):
            print(f"  torn WAL {entry['file']}: {entry['reason']}")
        for name in report.get("orphans", []):
            print(f"  orphan file: {name}")
        print("  run `repro store recover` to quarantine and re-commit")
    return 0 if report["ok"] else 1


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="mergeable summaries toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="build a summary from an item file")
    build.add_argument("--type", required=True, help="registered summary name")
    build.add_argument("--input", required=True, help="newline-delimited items")
    build.add_argument(
        "--weights",
        default=None,
        help="newline-delimited positive integer weights parallel to --input "
        "(pre-aggregated streams)",
    )
    build.add_argument("--out", required=True, help="output JSON path")
    build.add_argument(
        "--arg", action="append", help="constructor argument name=value", default=None
    )
    build.add_argument(
        "--window", type=float, default=None, metavar="N",
        help="lift to sliding-window semantics over the last N items "
        "(count-based; omit to window without expiry)",
    )
    build.add_argument(
        "--eps", type=float, default=None, metavar="E",
        help="window mass-envelope error (default 0.25; implies a "
        "windowed build even without --window)",
    )
    build.add_argument(
        "--granularity", type=float, default=1, metavar="G",
        help="items per level-0 window bucket (with --window/--eps)",
    )
    build.set_defaults(func=_cmd_build)

    merge = sub.add_parser("merge", help="merge summary files")
    merge.add_argument("inputs", nargs="+", help="summary JSON files")
    merge.add_argument("--out", required=True)
    merge.add_argument(
        # choices track the strategy registry; a new strategy shows up
        # here (and in `repro plan`) without touching the CLI
        "--strategy", default="tree", choices=sorted(MERGE_STRATEGIES)
    )
    merge.add_argument(
        "--seed", type=int, default=None,
        help="RNG seed (only the 'random' strategy accepts one)",
    )
    merge.set_defaults(func=_cmd_merge)

    query = sub.add_parser("query", help="query a summary file")
    query.add_argument("summary")
    query.add_argument("--heavy-hitters", type=float, default=None, metavar="PHI")
    query.add_argument("--quantile", type=float, default=None, metavar="Q")
    query.add_argument("--rank", type=float, default=None, metavar="X")
    query.add_argument("--estimate", default=None, metavar="ITEM")
    query.add_argument("--distinct", action="store_true")
    query.add_argument(
        "--window", type=float, default=None, metavar="N",
        help="for windowed summary files: query the trailing N items "
        "(default: the window the file was built with)",
    )
    query.set_defaults(func=_cmd_query)

    inspect = sub.add_parser("inspect", help="show a summary's metadata")
    inspect.add_argument("summary")
    inspect.set_defaults(func=_cmd_inspect)

    types = sub.add_parser("types", help="list registered summary types")
    types.add_argument(
        "--kind", default=None, choices=["base", "windowed"],
        help="filter: directly implemented types vs auto-derived "
        "windowed.<name> variants (default: all)",
    )
    types.set_defaults(func=_cmd_types)

    plan = sub.add_parser(
        "plan",
        help="compile a merge plan and print it without executing anything",
    )
    mode = plan.add_mutually_exclusive_group()
    mode.add_argument(
        "--strategy", default=None, choices=sorted(MERGE_STRATEGIES),
        help="fold strategy to compile (default: tree)",
    )
    mode.add_argument(
        "--topology", default=None,
        choices=["balanced", "chain", "star", "kary", "random"],
        help="compile a distributed aggregation schedule instead of a fold",
    )
    mode.add_argument(
        "--windowed", action="store_true",
        help="compile the bucket-aware windowed fold (per-level "
        "slice/union/stitch) over --count synthetic operands",
    )
    plan.add_argument("--count", type=int, default=8,
                      help="number of fold inputs (with --strategy/--windowed)")
    plan.add_argument("--nodes", type=int, default=16,
                      help="number of leaves (with --topology)")
    plan.add_argument("--seed", type=int, default=None,
                      help="RNG seed for random strategies/topologies")
    plan.add_argument("--waves", action="store_true",
                      help="also print the parallel wave packing")
    plan.set_defaults(func=_cmd_plan)

    simulate = sub.add_parser(
        "simulate",
        help="run a fault-injected distributed aggregation over an item file",
    )
    simulate.add_argument("--type", required=True, help="registered summary name")
    simulate.add_argument("--input", required=True, help="newline-delimited items")
    simulate.add_argument(
        "--arg", action="append", help="constructor argument name=value", default=None
    )
    simulate.add_argument("--nodes", type=int, default=16)
    simulate.add_argument(
        "--topology", default="balanced",
        choices=["balanced", "chain", "star", "kary", "random"],
    )
    simulate.add_argument(
        "--partitioner", default="contiguous",
        choices=["contiguous", "uniform", "sorted", "skewed"],
    )
    simulate.add_argument("--loss", type=float, default=0.0)
    simulate.add_argument("--crash", type=float, default=0.0)
    simulate.add_argument("--duplicate", type=float, default=0.0)
    simulate.add_argument("--corruption", type=float, default=0.0)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--workers", type=int, default=None,
                          help="parallel merge runtime worker count "
                               "(default: legacy scalar path)")
    simulate.add_argument("--retries", type=int, default=4,
                          help="delivery attempts per merge step")
    simulate.add_argument("--no-ledger", action="store_true",
                          help="disable exactly-once dedup (study the damage)")
    simulate.add_argument("--out", default=None,
                          help="write the root summary JSON here")
    simulate.set_defaults(func=_cmd_simulate)

    store = sub.add_parser(
        "store",
        help="segmented summary store: ingest keyed records, pre-merge "
        "dyadic roll-ups, answer range queries in O(log S) merges",
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)

    ingest = store_sub.add_parser(
        "ingest", help="append items to a store directory (created on first use)"
    )
    ingest.add_argument("--dir", required=True, help="store directory")
    ingest.add_argument("--input", required=True, help="newline-delimited items")
    ingest.add_argument(
        "--keys",
        default=None,
        help="newline-delimited numeric keys parallel to --input "
        "(default: arrival index)",
    )
    ingest.add_argument(
        "--weights",
        default=None,
        help="newline-delimited positive integer weights parallel to --input",
    )
    ingest.add_argument(
        "--type", default=None, help="summary type (required on first ingest)"
    )
    ingest.add_argument(
        "--arg", action="append", help="constructor argument name=value", default=None
    )
    ingest.add_argument(
        "--width", type=float, default=1.0,
        help="key width of one segment (first ingest only)",
    )
    ingest.add_argument(
        "--dims", default=None, metavar="D1,D2",
        help="comma-separated dimension names: create a dimension cube "
        "instead of a flat store (first ingest only; --input becomes "
        "JSONL records carrying the dims plus a 'value' field)",
    )
    ingest.add_argument(
        "--view-capacity", type=int, default=8, metavar="N",
        help="merged-query-view LRU size, 0 disables (first ingest only)",
    )
    ingest.add_argument(
        "--codec", default="json.v2", choices=registered_codecs(),
        help="segment persistence codec (first ingest only)",
    )
    ingest.add_argument(
        "--wal", action="store_true",
        help="write-ahead log the batch (durable before segments seal; "
        "crash-recoverable via `repro store recover`)",
    )
    ingest.add_argument(
        "--fsync-every", type=int, default=1, metavar="N",
        help="with --wal: fsync once per N batches (1 = every batch)",
    )
    ingest.set_defaults(func=_cmd_store_ingest)

    compact = store_sub.add_parser(
        "compact", help="build the dyadic roll-up tree over current segments"
    )
    compact.add_argument("--dir", required=True)
    compact.add_argument("--workers", type=int, default=None,
                         help="merge roll-up levels on a process pool")
    compact.add_argument(
        "--budget", type=int, default=None, metavar="CELLS",
        help="dimension cubes: cap on materialized lattice cells across "
        "all pre-aggregated masks",
    )
    compact.add_argument(
        "--workload", default=None, metavar="FILE",
        help="dimension cubes: JSON list of query shapes "
        '([{"where": ["region"], "group_by": ["device"], "weight": 2}]) '
        "steering which masks to materialize (default: observed queries)",
    )
    compact.set_defaults(func=_cmd_store_compact)

    squery = store_sub.add_parser(
        "query", help="answer a point query over a key range [lo, hi)"
    )
    squery.add_argument("--dir", required=True)
    squery.add_argument("--lo", type=float, default=None,
                        help="range start (with --hi; or use --window)")
    squery.add_argument("--hi", type=float, default=None,
                        help="range end; with --window: the window's "
                        "end anchor (default: end of the ingested span)")
    squery.add_argument(
        "--window", type=float, default=None, metavar="W",
        help="trailing window: the last W key units ending at --hi "
        "(default: end of the ingested span) instead of --lo/--hi",
    )
    squery.add_argument(
        "--window-eps", type=float, default=0.0, metavar="E",
        help="with --window: let the planner absorb one straddling "
        "roll-up whole (exponential-histogram rule) — at most a "
        "(1+E) mass overshoot for fewer merges",
    )
    squery.add_argument("--no-rollups", action="store_true",
                        help="force the naive one-merge-per-segment scan")
    squery.add_argument(
        "--where", action="append", default=None, metavar="DIM=VALUE",
        help="dimension cubes: filter to one dimension value (repeatable)",
    )
    squery.add_argument(
        "--group-by", default=None, metavar="D1,D2",
        help="dimension cubes: comma-separated dims to group results by",
    )
    squery.add_argument("--explain", action="store_true",
                        help="print the query plan before answering")
    squery.add_argument("--heavy-hitters", type=float, default=None, metavar="PHI")
    squery.add_argument("--quantile", type=float, default=None, metavar="Q")
    squery.add_argument("--rank", type=float, default=None, metavar="X")
    squery.add_argument("--estimate", default=None, metavar="ITEM")
    squery.add_argument("--distinct", action="store_true")
    squery.set_defaults(func=_cmd_store_query)

    sstats = store_sub.add_parser("stats", help="print store statistics as JSON")
    sstats.add_argument("--dir", required=True)
    sstats.set_defaults(func=_cmd_store_stats)

    recover = store_sub.add_parser(
        "recover",
        help="crash recovery: quarantine damage, replay the WAL, re-commit",
    )
    recover.add_argument("--dir", required=True)
    recover.add_argument("--json", action="store_true",
                         help="print the full recovery report as JSON")
    recover.set_defaults(func=_cmd_store_recover)

    sverify = store_sub.add_parser(
        "verify",
        help="read-only audit: manifest, segment checksums, WAL health "
        "(exit 1 when damaged)",
    )
    sverify.add_argument("--dir", required=True)
    sverify.add_argument("--json", action="store_true",
                         help="print the full audit report as JSON")
    sverify.set_defaults(func=_cmd_store_verify)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except (AttributeError, TypeError) as exc:
        print(f"error: unsupported operation for this summary type: {exc}",
              file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:  # e.g. `repro store stats | head`
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
