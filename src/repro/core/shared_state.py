"""Shared-memory state transport: zero-copy summary handoff between processes.

The persistent worker runtime (:mod:`repro.core.parallel`) keeps slot
state resident in long-lived workers and ships only *plan-step ids*
over the command pipes.  When a slot's value must move anyway — a wave
result handed to the coordinator, a stale slot synced into another
worker — the bulk bytes go through :mod:`multiprocessing.shared_memory`
blocks instead of being pickled across a pipe: the producer writes the
state into its *arena* once, and every consumer maps the same pages.
Only a small picklable *descriptor* (block name, offsets, shapes)
crosses the pipe.

Two export shapes:

- **adapted** — summary types whose bulk state is numpy arrays
  (CountMin / ConservativeCountMin / CountSketch tables, HyperLogLog
  registers, KLL compactor levels) register a :class:`StateAdapter`
  that splits the value into raw array buffers (written to the arena
  verbatim) plus a small pickled *shell* (the object with its arrays
  stripped).  Store segments are adapted member-wise with the same
  adapters.
- **pickled** — everything else is pickled whole, but the pickle bytes
  still live in the arena, so pipes never carry payloads.

Imports default to ``copy=True``: the consumer materializes a private
copy and the arena page can be retired.  ``copy=False`` returns views
into the shared block — valid only while the block exists, used for
read-only peeks.

Crash safety: producers never mutate previously exported bytes (the
arena is append-only), so a consumer can re-import any descriptor it
has seen even after the producing worker died mid-wave — the
exactly-once recovery path in the engine depends on this.
"""

from __future__ import annotations

import pickle
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

import numpy as np

from .exceptions import ParameterError

__all__ = [
    "StateAdapter",
    "ShmArena",
    "BlockCache",
    "export_value",
    "import_value",
    "shared_memory_available",
    "register_state_adapter",
]

#: minimum size of a freshly allocated arena block (bytes); exports
#: larger than this get a block of exactly their size
_MIN_BLOCK = 1 << 20


def shared_memory_available() -> bool:
    """True when ``multiprocessing.shared_memory`` blocks can be created."""
    try:
        from multiprocessing import shared_memory

        block = shared_memory.SharedMemory(create=True, size=16)
    except Exception:
        return False
    _untrack(block.name)
    block.close()
    _unlink_block(block)
    return True


def _untrack(name: str) -> None:
    """Opt a block out of the per-process resource tracker.

    The tracker unlinks every block its owning process registered the
    moment that process dies — which would destroy a crashed worker's
    exports exactly when the coordinator needs them for exactly-once
    recovery.  Lifetime is managed explicitly instead: the coordinator
    unlinks every block it has seen at runtime close.  (Python 3.13 has
    ``track=False`` for this; this helper covers 3.10+.)
    """
    try:  # pragma: no cover - depends on CPython internals
        from multiprocessing import resource_tracker

        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:
        pass


def _unlink_block(block: Any) -> None:
    """Unlink a block without another tracker round-trip.

    ``SharedMemory.unlink()`` also unregisters from the resource
    tracker; untracked blocks (ours all are) would double-unregister and
    spam the tracker log, so unlink goes straight to the OS.
    """
    try:
        from multiprocessing.shared_memory import _posixshmem

        _posixshmem.shm_unlink(block._name)
    except ImportError:  # pragma: no cover - Windows has no fork anyway
        block.unlink()
    except FileNotFoundError:
        pass


# ---------------------------------------------------------------------------
# Per-type adapters
# ---------------------------------------------------------------------------


class StateAdapter:
    """How to split one summary type into (picklable shell, raw arrays).

    ``extract(value)`` returns the bulk state as a list of C-contiguous
    numpy arrays; ``strip(value)`` temporarily removes that state from
    the object (returning an undo token) so the remaining shell pickles
    small; ``restore(value, token)`` undoes the strip; ``inject(value,
    arrays)`` installs (re-imported) arrays into a fresh shell.
    """

    def __init__(
        self,
        extract: Callable[[Any], List[np.ndarray]],
        strip: Callable[[Any], Any],
        restore: Callable[[Any, Any], None],
        inject: Callable[[Any, List[np.ndarray]], None],
    ) -> None:
        self.extract = extract
        self.strip = strip
        self.restore = restore
        self.inject = inject


_ADAPTERS: Dict[Type, StateAdapter] = {}


def register_state_adapter(cls: Type, adapter: StateAdapter) -> None:
    """Register a shared-memory adapter for one concrete summary class."""
    _ADAPTERS[cls] = adapter


def _attr_adapter(attr: str) -> StateAdapter:
    """Adapter for types whose bulk state is one ndarray attribute."""

    def extract(value: Any) -> List[np.ndarray]:
        return [np.ascontiguousarray(getattr(value, attr))]

    def strip(value: Any) -> Any:
        token = getattr(value, attr)
        setattr(value, attr, None)
        return token

    def restore(value: Any, token: Any) -> None:
        setattr(value, attr, token)

    def inject(value: Any, arrays: List[np.ndarray]) -> None:
        setattr(value, attr, arrays[0])

    return StateAdapter(extract, strip, restore, inject)


def _kll_adapter() -> StateAdapter:
    """KLL levels: ragged ``List[List[float]]`` packed as lengths + concat.

    The cached sorted query view is dropped from the shell (it is a
    pure cache, rebuilt on demand) so exports never carry it.
    """

    def extract(value: Any) -> List[np.ndarray]:
        levels = value._levels
        lengths = np.array([len(level) for level in levels], dtype=np.int64)
        if len(levels):
            flat = np.concatenate(
                [np.asarray(level, dtype=np.float64) for level in levels]
            ) if any(lengths) else np.empty(0, dtype=np.float64)
        else:  # pragma: no cover - KLL always has >= 1 level
            flat = np.empty(0, dtype=np.float64)
        return [lengths, flat]

    def strip(value: Any) -> Any:
        # ``_view`` defaults on the class; only touch it when the
        # instance actually carries one, or strip/restore would grow the
        # instance __dict__ and change the object's pickle bytes
        instance = value.__dict__
        token = (value._levels, ("_view" in instance, instance.get("_view")))
        value._levels = None
        if "_view" in instance:
            instance["_view"] = None
        return token

    def restore(value: Any, token: Any) -> None:
        levels, (had_view, view) = token
        value._levels = levels
        if had_view:
            value.__dict__["_view"] = view

    def inject(value: Any, arrays: List[np.ndarray]) -> None:
        lengths, flat = arrays
        levels: List[List[float]] = []
        offset = 0
        for length in lengths.tolist():
            levels.append(flat[offset:offset + length].tolist())
            offset += length
        value._levels = levels
        value.__dict__.pop("_view", None)

    return StateAdapter(extract, strip, restore, inject)


def _install_default_adapters() -> None:
    from ..frequency.conservative import ConservativeCountMin
    from ..frequency.count_min import CountMin
    from ..frequency.count_sketch import CountSketch
    from ..quantiles.kll import KLLQuantiles
    from ..sketches.hyperloglog import HyperLogLog

    register_state_adapter(CountMin, _attr_adapter("_table"))
    register_state_adapter(ConservativeCountMin, _attr_adapter("_table"))
    register_state_adapter(CountSketch, _attr_adapter("_table"))
    register_state_adapter(HyperLogLog, _attr_adapter("_registers"))
    register_state_adapter(KLLQuantiles, _kll_adapter())


_defaults_installed = False


def _adapter_for(value: Any) -> Optional[StateAdapter]:
    global _defaults_installed
    if not _defaults_installed:
        _install_default_adapters()
        _defaults_installed = True
    return _ADAPTERS.get(type(value))


def _is_segment(value: Any) -> bool:
    return hasattr(value, "members") and hasattr(value, "segment_id")


# ---------------------------------------------------------------------------
# Arenas (producer side) and block caches (consumer side)
# ---------------------------------------------------------------------------


class ShmArena:
    """Append-only bump allocator over shared-memory blocks.

    One producer process owns an arena and writes exports into it;
    consumers attach blocks read-only by name through a
    :class:`BlockCache`.  Blocks are never recycled while the runtime
    lives — previously exported descriptors stay valid even if the
    producer dies — and the *coordinator* unlinks every block at
    runtime close (see :func:`_untrack` for why producers must not).
    """

    def __init__(self, prefix: Optional[str] = None) -> None:
        #: with a ``prefix``, blocks get deterministic names
        #: ``{prefix}{seq}`` so a coordinator can probe-unlink blocks the
        #: producer allocated but never got to report before crashing
        self._prefix = prefix
        self._block = None
        self._offset = 0
        self.blocks: List[str] = []
        self.bytes_written = 0
        self.available = True

    def _ensure(self, size: int):
        if self._block is not None and self._offset + size <= self._block.size:
            return self._block
        from multiprocessing import shared_memory

        capacity = max(size, _MIN_BLOCK)
        if self._prefix is None:
            block = shared_memory.SharedMemory(create=True, size=capacity)
        else:
            block = shared_memory.SharedMemory(
                name=f"{self._prefix}{len(self.blocks)}",
                create=True,
                size=capacity,
            )
        _untrack(block.name)
        if self._block is not None:
            self._block.close()
        self._block = block
        self._offset = 0
        self.blocks.append(block.name)
        return block

    def put(self, data) -> Tuple[str, int, int]:
        """Copy ``data`` (a buffer) into the arena; return (block, off, len)."""
        view = memoryview(data).cast("B")
        size = len(view)
        block = self._ensure(size)
        offset = self._offset
        block.buf[offset:offset + size] = view
        self._offset += size
        self.bytes_written += size
        return block.name, offset, size

    def close(self) -> None:
        """Drop this process's mapping (does not unlink the blocks)."""
        if self._block is not None:
            self._block.close()
            self._block = None


class BlockCache:
    """Consumer-side cache of attached shared-memory blocks."""

    def __init__(self) -> None:
        self._blocks: Dict[str, Any] = {}

    def view(self, name: str, offset: int, length: int) -> memoryview:
        block = self._blocks.get(name)
        if block is None:
            from multiprocessing import shared_memory

            block = shared_memory.SharedMemory(name=name)
            _untrack(block.name)
            self._blocks[name] = block
        return block.buf[offset:offset + length]

    def close(self) -> None:
        for block in self._blocks.values():
            block.close()
        self._blocks.clear()

    def unlink_all(self, names) -> None:
        """Unlink every named block (coordinator-only, at runtime close)."""
        from multiprocessing import shared_memory

        for name in names:
            block = self._blocks.pop(name, None)
            if block is None:
                try:
                    block = shared_memory.SharedMemory(name=name)
                    _untrack(block.name)
                except FileNotFoundError:
                    continue
            block.close()
            _unlink_block(block)


# ---------------------------------------------------------------------------
# Export / import
# ---------------------------------------------------------------------------


def _collect(value: Any):
    """Split ``value`` into (stripped holders, arrays) per its adapters.

    Returns ``(holders, arrays)`` where ``holders`` is a list of
    ``(obj, adapter, token, n_arrays)`` undo records and ``arrays`` the
    concatenated array list, or ``None`` when nothing about ``value``
    is adapted (caller falls back to whole-object pickling).
    """
    if _is_segment(value):
        holders = []
        arrays: List[np.ndarray] = []
        for name in sorted(value.members):
            member = value.members[name]
            adapter = _adapter_for(member)
            if adapter is None:
                continue
            extracted = adapter.extract(member)
            holders.append((member, adapter, None, len(extracted)))
            arrays.extend(extracted)
        return (holders, arrays) if holders else None
    adapter = _adapter_for(value)
    if adapter is None:
        return None
    extracted = adapter.extract(value)
    return [(value, adapter, None, len(extracted))], extracted


def export_value(value: Any, arena: ShmArena) -> Dict[str, Any]:
    """Export ``value`` into ``arena``; return a small picklable descriptor."""
    if arena.available:
        try:
            return _export_shm(value, arena)
        except OSError:
            # /dev/shm missing or full: degrade to inline transport for
            # the rest of this arena's life, but keep running
            arena.available = False
    return {"kind": "inline", "data": pickle.dumps(value, pickle.HIGHEST_PROTOCOL)}


def _export_shm(value: Any, arena: ShmArena) -> Dict[str, Any]:
    collected = _collect(value)
    if collected is None:
        payload = pickle.dumps(value, pickle.HIGHEST_PROTOCOL)
        block, offset, length = arena.put(payload)
        return {"kind": "pickled", "block": block, "span": (offset, length)}
    holders, arrays = collected
    spans = []
    metas = []
    for array in arrays:
        array = np.ascontiguousarray(array)
        spans.append(arena.put(array))
        metas.append((array.shape, array.dtype.str))
    # strip arrays, pickle the light shell, then restore — the exported
    # object must come out of this function exactly as it went in
    tokens = []
    try:
        for i, (obj, adapter, _t, _n) in enumerate(holders):
            tokens.append(adapter.strip(obj))
        shell = pickle.dumps(value, pickle.HIGHEST_PROTOCOL)
    finally:
        for (obj, adapter, _t, _n), token in zip(holders, tokens):
            adapter.restore(obj, token)
    block, offset, length = arena.put(shell)
    return {
        "kind": "adapted",
        "block": block,
        "span": (offset, length),
        "spans": spans,
        "arrays": metas,
        "counts": [n for (_o, _a, _t, n) in holders],
    }


def import_value(
    descriptor: Dict[str, Any], cache: BlockCache, copy: bool = True
) -> Any:
    """Materialize a value from an :func:`export_value` descriptor.

    ``copy=True`` (the default) detaches the result from the shared
    block; ``copy=False`` returns array state viewing the block
    directly (valid only while the block exists).
    """
    kind = descriptor["kind"]
    if kind == "inline":
        return pickle.loads(descriptor["data"])
    offset, length = descriptor["span"]
    shell_bytes = bytes(cache.view(descriptor["block"], offset, length))
    if kind == "pickled":
        return pickle.loads(shell_bytes)
    if kind != "adapted":
        raise ParameterError(f"unknown shared-state descriptor kind {kind!r}")
    value = pickle.loads(shell_bytes)
    arrays: List[np.ndarray] = []
    for (block, off, ln), (shape, dtype) in zip(
        descriptor["spans"], descriptor["arrays"]
    ):
        view = cache.view(block, off, ln)
        array = np.frombuffer(view, dtype=np.dtype(dtype)).reshape(shape)
        arrays.append(array.copy() if copy else array)
    targets = _collect_shell(value)
    counts = descriptor["counts"]
    if len(targets) != len(counts):
        raise ParameterError(
            f"shared-state descriptor names {len(counts)} adapted object(s) "
            f"but the shell exposes {len(targets)}"
        )
    cursor = 0
    for (obj, adapter), count in zip(targets, counts):
        adapter.inject(obj, arrays[cursor:cursor + count])
        cursor += count
    if cursor != len(arrays):
        raise ParameterError(
            f"shared-state descriptor carries {len(arrays)} array(s) but the "
            f"shell consumed {cursor}"
        )
    return value


def _collect_shell(value: Any) -> List[Tuple[Any, StateAdapter]]:
    """The inject targets of a just-unpickled shell, in export order."""
    if _is_segment(value):
        out = []
        for name in sorted(value.members):
            member = value.members[name]
            adapter = _adapter_for(member)
            if adapter is not None:
                out.append((member, adapter))
        return out
    return [(value, _adapter_for(value))]
