"""SummaryBundle: several mergeable summaries over one record stream.

Real deployments rarely maintain a single summary: a monitoring node
tracks hot keys *and* distinct users *and* latency percentiles from the
same event stream.  A :class:`SummaryBundle` groups named summaries,
each bound to a field of the incoming records, so the node-side code is
one ``update`` and the collector-side code is one ``merge`` — and the
bundle as a whole rides the same wire format as individual summaries.

Example::

    bundle = SummaryBundle()
    bundle.add("hot_pages", MisraGries(64), field="page")
    bundle.add("users", HyperLogLog(p=12, seed=1), field="user")
    bundle.add("latency", MergeableQuantiles(256, rng=2), field="ms")

    bundle.update({"page": "/home", "user": 42, "ms": 12.5})
    ...
    collector.merge(bundle)                  # member-wise, checked
    collector["latency"].quantile(0.99)

Records missing a bound field simply skip that member (sparse events
are normal); ``strict=True`` on :meth:`update` makes that an error.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Mapping, Optional

from .base import Summary, normalize_batch
from .exceptions import MergeError, ParameterError
from .registry import get_summary_class
from .serialization import from_envelope, to_envelope

__all__ = ["SummaryBundle"]


class SummaryBundle:
    """A named collection of mergeable summaries over record streams."""

    def __init__(self) -> None:
        self._members: Dict[str, Summary] = {}
        self._fields: Dict[str, str] = {}
        self._n = 0

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------

    def add(self, name: str, summary: Summary, field: str) -> "SummaryBundle":
        """Register ``summary`` under ``name``, fed from record ``field``."""
        if name in self._members:
            raise ParameterError(f"bundle already has a member named {name!r}")
        if not isinstance(summary, Summary):
            raise ParameterError(
                f"member must be a Summary, got {type(summary).__name__}"
            )
        self._members[name] = summary
        self._fields[name] = field
        return self

    def __getitem__(self, name: str) -> Summary:
        try:
            return self._members[name]
        except KeyError:
            raise ParameterError(
                f"no bundle member named {name!r}; members: {sorted(self._members)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._members

    def __iter__(self) -> Iterator[str]:
        return iter(self._members)

    def members(self) -> Dict[str, Summary]:
        """Snapshot of the name -> summary mapping."""
        return dict(self._members)

    @property
    def n(self) -> int:
        """Number of records folded in."""
        return self._n

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def update(self, record: Mapping[str, Any], strict: bool = False) -> None:
        """Feed one record; each member consumes its bound field.

        Fields absent from the record are skipped unless ``strict``.
        """
        if not self._members:
            raise ParameterError("bundle has no members; add() some first")
        self._n += 1
        for name, summary in self._members.items():
            field = self._fields[name]
            if field in record:
                summary.update(record[field])
            elif strict:
                raise ParameterError(
                    f"record is missing field {field!r} required by member {name!r}"
                )

    def update_batch(
        self,
        records,
        weights: Optional[Any] = None,
        strict: bool = False,
    ) -> None:
        """Feed a batch of records; each member ingests its field batched.

        ``weights`` is an optional parallel sequence of positive integer
        record multiplicities (a record with weight ``w`` counts as ``w``
        identical records).  Per member, the bound field's values are
        collected across the batch and handed to that member's
        :meth:`Summary.update_batch` — one vectorized ingestion per
        member instead of one Python call per record per member.
        """
        if not self._members:
            raise ParameterError("bundle has no members; add() some first")
        records, weights, total = normalize_batch(records, weights)
        if not len(records):
            return
        weight_list = None if weights is None else weights.tolist()
        for name, summary in self._members.items():
            field = self._fields[name]
            values = []
            value_weights = [] if weight_list is not None else None
            for index, record in enumerate(records):
                if field in record:
                    values.append(record[field])
                    if value_weights is not None:
                        value_weights.append(weight_list[index])
                elif strict:
                    raise ParameterError(
                        f"record is missing field {field!r} required by "
                        f"member {name!r}"
                    )
            if values:
                summary.update_batch(values, value_weights)
        self._n += total

    def extend(self, records, weights: Optional[Any] = None) -> "SummaryBundle":
        """Feed an iterable of records (optionally weighted); returns ``self``."""
        self.update_batch(records, weights)
        return self

    # ------------------------------------------------------------------
    # Merge
    # ------------------------------------------------------------------

    def merge(self, other: "SummaryBundle") -> "SummaryBundle":
        """Member-wise merge; bundles must have identical member layouts.

        Validates the full layout *before* mutating anything, so a
        failed merge leaves the receiver untouched.
        """
        if not isinstance(other, SummaryBundle):
            raise MergeError(
                f"cannot merge SummaryBundle with {type(other).__name__}"
            )
        if set(self._members) != set(other._members):
            raise MergeError(
                f"bundle member mismatch: {sorted(self._members)} vs "
                f"{sorted(other._members)}"
            )
        for name in self._members:
            if self._fields[name] != other._fields[name]:
                raise MergeError(
                    f"member {name!r} bound to field {self._fields[name]!r} here "
                    f"but {other._fields[name]!r} there"
                )
            mine, theirs = self._members[name], other._members[name]
            if type(mine) is not type(theirs):
                raise MergeError(
                    f"member {name!r} type mismatch: {type(mine).__name__} vs "
                    f"{type(theirs).__name__}"
                )
            problem = mine.compatible_with(theirs)
            if problem is not None:
                raise MergeError(f"member {name!r} incompatible: {problem}")
        for name in self._members:
            self._members[name].merge(other._members[name])
        self._n += other._n
        return self

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n": self._n,
            "members": {
                name: {
                    "field": self._fields[name],
                    "envelope": to_envelope(summary),
                }
                for name, summary in self._members.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SummaryBundle":
        bundle = cls()
        for name, entry in payload["members"].items():
            bundle.add(name, from_envelope(entry["envelope"]), entry["field"])
        bundle._n = payload["n"]
        return bundle

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<SummaryBundle n={self._n} members={sorted(self._members)}>"
