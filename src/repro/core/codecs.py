"""Versioned codec stack: one serialization layer for wire and disk.

Before this module existed the library had a single ad-hoc JSON envelope
in :mod:`repro.core.serialization` doing double duty as the distributed
wire format *and* the persistence format, with versioning bolted onto
the envelope's ``format`` field.  This module re-layers that into a
**codec registry**: each codec is a named, versioned encoder/decoder
pair from a :class:`~repro.core.base.Summary` to a payload (``str`` or
``bytes``), and everything that serializes a summary — the distributed
simulator's :class:`~repro.distributed.node.Node`, the segment store's
persistence, the CLI files — goes through this one layer, so wire and
disk formats can no longer drift apart.

Registered codecs
-----------------

``json.v1``
    The original checksum-less JSON envelope
    (``{"format": 1, "type": ..., "state": ...}``).  Kept primarily as
    a *loader* for payloads persisted by old builds; encoding is still
    supported so the legacy format stays round-trip testable.

``json.v2``
    The current JSON envelope: format 2 plus a CRC32 ``checksum`` over
    the canonical state JSON (end-to-end corruption detection, from the
    fault-tolerance work).  This is the default codec.

``binary.v1``
    A compact binary codec: struct-packed header (magic, version, type
    name, the same CRC32, raw/compressed body lengths) followed by a
    zlib-compressed canonical state JSON body.  Typically 3-10x smaller
    than ``json.v2`` on the wire and at rest.

:func:`decode_summary` sniffs the payload, so a reader never needs to
know which codec (or which JSON envelope generation) produced it —
pre-refactor format-1 and format-2 envelopes keep deserializing.
"""

from __future__ import annotations

import abc
import json
import struct
import zlib
from typing import Any, Dict, Union

from .base import Summary
from .exceptions import SerializationError
from .registry import get_summary_class

__all__ = [
    "Codec",
    "JsonCodecV1",
    "JsonCodecV2",
    "BinaryCodecV1",
    "DEFAULT_CODEC",
    "register_codec",
    "get_codec",
    "registered_codecs",
    "encode_summary",
    "decode_summary",
    "state_checksum",
    "to_envelope",
    "from_envelope",
]

Payload = Union[str, bytes]

#: name of the codec used when callers don't pick one
DEFAULT_CODEC = "json.v2"

_ACCEPTED_ENVELOPE_VERSIONS = (1, 2)


# ---------------------------------------------------------------------------
# Shared canonical-state helpers (the JSON envelope primitives)
# ---------------------------------------------------------------------------


def _canonical_state(state: Dict[str, Any]) -> str:
    return json.dumps(state, separators=(",", ":"), sort_keys=True)


def state_checksum(state: Dict[str, Any]) -> int:
    """CRC32 over the canonical (sorted-key, compact) JSON of ``state``."""
    return zlib.crc32(_canonical_state(state).encode("utf-8")) & 0xFFFFFFFF


def _registered_state(summary: Summary) -> tuple:
    """``(registry name, state dict)`` or raise for unregistered types."""
    name = getattr(summary, "registry_name", None)
    if name is None:
        raise SerializationError(
            f"{type(summary).__name__} is not registered; apply "
            "@register_summary before serializing"
        )
    return name, summary.to_dict()


def to_envelope(summary: Summary, version: int = 2) -> Dict[str, Any]:
    """Wrap a summary's state in the versioned JSON transport envelope."""
    name, state = _registered_state(summary)
    envelope: Dict[str, Any] = {"format": version, "type": name, "state": state}
    if version >= 2:
        envelope["checksum"] = state_checksum(state)
    return envelope


def from_envelope(envelope: Dict[str, Any]) -> Summary:
    """Reconstruct a summary from :func:`to_envelope` output (any version)."""
    try:
        version = envelope["format"]
        name = envelope["type"]
        state = envelope["state"]
    except (TypeError, KeyError) as exc:
        raise SerializationError(f"malformed summary envelope: {exc!r}") from exc
    if version not in _ACCEPTED_ENVELOPE_VERSIONS:
        raise SerializationError(
            f"unsupported envelope format {version!r} "
            f"(supported: {', '.join(map(str, _ACCEPTED_ENVELOPE_VERSIONS))})"
        )
    if "checksum" in envelope:
        expected = envelope["checksum"]
        actual = state_checksum(state)
        if actual != expected:
            raise SerializationError(
                f"payload checksum mismatch (stored {expected!r}, computed "
                f"{actual}): summary state corrupted in transit or at rest"
            )
    cls = get_summary_class(name)
    return cls.from_dict(state)


# ---------------------------------------------------------------------------
# Codec protocol and registry
# ---------------------------------------------------------------------------


class Codec(abc.ABC):
    """One named, versioned summary encoder/decoder.

    ``encode`` must accept any registered summary; ``decode`` must
    reject anything it did not produce with
    :class:`~repro.core.exceptions.SerializationError` (corruption is a
    decode error, never a garbage summary).
    """

    #: unique registry key, ``<family>.<version>`` by convention
    name: str
    #: True when payloads are ``bytes`` (vs JSON text)
    binary: bool

    @abc.abstractmethod
    def encode(self, summary: Summary) -> Payload:
        """Serialize ``summary`` to this codec's payload form."""

    @abc.abstractmethod
    def decode(self, payload: Payload) -> Summary:
        """Reconstruct a summary from :meth:`encode` output."""


_CODECS: Dict[str, Codec] = {}


def register_codec(codec: Codec) -> Codec:
    """Register ``codec`` under its :attr:`~Codec.name`.

    Re-registering the same object is a no-op (module reloads); a
    *different* codec under an existing name raises.
    """
    existing = _CODECS.get(codec.name)
    if existing is not None and type(existing) is not type(codec):
        raise ValueError(
            f"codec name {codec.name!r} already registered to "
            f"{type(existing).__name__}"
        )
    _CODECS[codec.name] = codec
    return codec


def get_codec(name: str) -> Codec:
    """Look up a registered codec by name."""
    try:
        return _CODECS[name]
    except KeyError:
        raise SerializationError(
            f"unknown codec {name!r}; registered: {sorted(_CODECS)}"
        ) from None


def registered_codecs() -> list:
    """Sorted list of all registered codec names."""
    return sorted(_CODECS)


# ---------------------------------------------------------------------------
# JSON envelope codecs
# ---------------------------------------------------------------------------


class _JsonCodec(Codec):
    """Shared machinery of the JSON envelope generations."""

    binary = False
    _version: int

    def encode(self, summary: Summary) -> str:
        try:
            return json.dumps(
                to_envelope(summary, version=self._version), separators=(",", ":")
            )
        except (TypeError, ValueError) as exc:
            raise SerializationError(
                f"summary state of {type(summary).__name__} is not "
                f"JSON-compatible: {exc}"
            ) from exc

    def decode(self, payload: Payload) -> Summary:
        if isinstance(payload, bytes):
            try:
                payload = payload.decode("utf-8")
            except UnicodeDecodeError as exc:
                raise SerializationError(f"invalid JSON payload: {exc}") from exc
        try:
            envelope = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise SerializationError(f"invalid JSON payload: {exc}") from exc
        return from_envelope(envelope)


class JsonCodecV1(_JsonCodec):
    """Legacy checksum-less envelope (format 1); decodes any envelope."""

    name = "json.v1"
    _version = 1


class JsonCodecV2(_JsonCodec):
    """Current JSON envelope: format 2 with CRC32 state checksum."""

    name = "json.v2"
    _version = 2


# ---------------------------------------------------------------------------
# Compact binary codec
# ---------------------------------------------------------------------------

#: 4-byte magic marking a binary.v1 payload
_BINARY_MAGIC = b"RPBC"
#: header after the magic: version, type-name length, CRC32 of the
#: canonical state JSON, raw body length, compressed body length
_BINARY_HEADER = struct.Struct("!BHIII")


class BinaryCodecV1(Codec):
    """Struct-packed header + zlib-compressed canonical state JSON.

    Layout::

        magic    4s   b"RPBC"
        version  B    1
        name_len H    length of the UTF-8 registry name
        checksum I    CRC32 of the canonical state JSON (same CRC as
                      the json.v2 envelope, so integrity is comparable
                      across codecs)
        raw_len  I    uncompressed body length
        comp_len I    compressed body length
        name     name_len bytes
        body     comp_len bytes (zlib)
    """

    name = "binary.v1"
    binary = True
    _version = 1

    def encode(self, summary: Summary) -> bytes:
        type_name, state = _registered_state(summary)
        try:
            raw = _canonical_state(state).encode("utf-8")
        except (TypeError, ValueError) as exc:
            raise SerializationError(
                f"summary state of {type(summary).__name__} is not "
                f"JSON-compatible: {exc}"
            ) from exc
        body = zlib.compress(raw, level=6)
        name_bytes = type_name.encode("utf-8")
        header = _BINARY_HEADER.pack(
            self._version,
            len(name_bytes),
            zlib.crc32(raw) & 0xFFFFFFFF,
            len(raw),
            len(body),
        )
        return _BINARY_MAGIC + header + name_bytes + body

    def decode(self, payload: Payload) -> Summary:
        if not isinstance(payload, (bytes, bytearray)):
            raise SerializationError(
                "binary.v1 expects a bytes payload, got "
                f"{type(payload).__name__}"
            )
        payload = bytes(payload)
        prefix_len = len(_BINARY_MAGIC) + _BINARY_HEADER.size
        if len(payload) < prefix_len or not payload.startswith(_BINARY_MAGIC):
            raise SerializationError("malformed binary payload: bad magic")
        version, name_len, checksum, raw_len, comp_len = _BINARY_HEADER.unpack(
            payload[len(_BINARY_MAGIC) : prefix_len]
        )
        if version != self._version:
            raise SerializationError(
                f"unsupported binary codec version {version} (supported: 1)"
            )
        if len(payload) != prefix_len + name_len + comp_len:
            raise SerializationError(
                "malformed binary payload: truncated or trailing bytes"
            )
        type_name = payload[prefix_len : prefix_len + name_len].decode("utf-8")
        try:
            raw = zlib.decompress(payload[prefix_len + name_len :])
        except zlib.error as exc:
            raise SerializationError(f"corrupt binary body: {exc}") from exc
        if len(raw) != raw_len or (zlib.crc32(raw) & 0xFFFFFFFF) != checksum:
            raise SerializationError(
                "payload checksum mismatch: summary state corrupted in "
                "transit or at rest"
            )
        state = json.loads(raw.decode("utf-8"))
        return get_summary_class(type_name).from_dict(state)


register_codec(JsonCodecV1())
register_codec(JsonCodecV2())
register_codec(BinaryCodecV1())


# ---------------------------------------------------------------------------
# Front door
# ---------------------------------------------------------------------------


def encode_summary(summary: Summary, codec: str = DEFAULT_CODEC) -> Payload:
    """Serialize ``summary`` with the named codec."""
    return get_codec(codec).encode(summary)


def decode_summary(payload: Payload) -> Summary:
    """Deserialize a payload produced by *any* registered codec.

    The codec is sniffed from the payload itself: the binary magic
    selects ``binary.v1``; anything else is treated as a JSON envelope
    (both pre-refactor generations, format 1 and format 2, decode).
    """
    if isinstance(payload, (bytes, bytearray)) and bytes(payload).startswith(
        _BINARY_MAGIC
    ):
        return get_codec("binary.v1").decode(payload)
    return get_codec("json.v2").decode(payload)
