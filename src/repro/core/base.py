"""The :class:`Summary` abstract base class.

A *summary* in the sense of the paper is a small data structure ``S(D)``
computed from a dataset ``D`` that supports three operations:

``update``
    fold one more item into the summary (streaming insertion);

``merge``
    combine this summary with another summary of the *same type and
    parameters* so that the result summarizes the union of the two
    underlying datasets — with **no loss of guarantee**: the error
    parameter and the size bound of the merged summary equal those of
    the inputs, no matter how many merges happened before (this is the
    paper's definition of *mergeability*);

``query``-style accessors
    summary-type specific (frequency estimates, rank/quantile estimates,
    range counts, directional width), defined by subclasses.

Implementations must keep :attr:`n` equal to the total weight of all
items folded in through ``update`` and ``merge`` — every error bound in
the paper is relative to this quantity.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Iterable

from .exceptions import MergeError

__all__ = ["Summary"]


class Summary(abc.ABC):
    """Abstract mergeable summary.

    Subclasses must implement :meth:`update`, :meth:`_merge_same_type`,
    :meth:`size`, :meth:`to_dict` and :meth:`from_dict`, and must keep
    the item count :attr:`n` correct.  The public :meth:`merge` performs
    the type/compatibility checks common to all summaries and then
    delegates to ``_merge_same_type``.
    """

    #: total weight (number of item occurrences) summarized so far.
    _n: int

    def __init__(self) -> None:
        self._n = 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Total weight of the summarized dataset (the paper's ``n``)."""
        return self._n

    @property
    def is_empty(self) -> bool:
        """True when no items have been folded in yet."""
        return self._n == 0

    def extend(self, items: Iterable[Any]) -> "Summary":
        """Fold every item of ``items`` into the summary; return ``self``."""
        for item in items:
            self.update(item)
        return self

    @classmethod
    def from_items(cls, items: Iterable[Any], /, **kwargs: Any) -> "Summary":
        """Build a summary of ``items`` with constructor ``kwargs``."""
        summary = cls(**kwargs)
        summary.extend(items)
        return summary

    # ------------------------------------------------------------------
    # Abstract surface
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def update(self, item: Any, weight: int = 1) -> None:
        """Fold ``weight`` occurrences of ``item`` into the summary."""

    @abc.abstractmethod
    def _merge_same_type(self, other: "Summary") -> None:
        """Merge ``other`` (already checked to be compatible) into ``self``."""

    @abc.abstractmethod
    def size(self) -> int:
        """Number of stored entries (counters, samples, points, ...).

        This is the quantity bounded by the paper's Table 1 — *not* the
        byte size of the Python object.
        """

    @abc.abstractmethod
    def to_dict(self) -> Dict[str, Any]:
        """Serialize state to a JSON-compatible dictionary.

        The dictionary must round-trip through :meth:`from_dict` and is
        what :mod:`repro.core.serialization` embeds in its envelope.
        """

    @classmethod
    @abc.abstractmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Summary":
        """Reconstruct a summary from :meth:`to_dict` output."""

    # ------------------------------------------------------------------
    # Merge protocol
    # ------------------------------------------------------------------

    def merge(self, other: "Summary") -> "Summary":
        """Merge ``other`` into ``self`` and return ``self``.

        ``other`` is left unchanged.  Raises :class:`MergeError` when the
        operands are of different concrete types or carry incompatible
        parameters (as reported by :meth:`compatible_with`).
        """
        if type(other) is not type(self):
            raise MergeError(
                f"cannot merge {type(self).__name__} with {type(other).__name__}; "
                "mergeability requires identical summary types"
            )
        problem = self.compatible_with(other)
        if problem is not None:
            raise MergeError(
                f"incompatible {type(self).__name__} operands: {problem}"
            )
        self._merge_same_type(other)
        return self

    def compatible_with(self, other: "Summary") -> str | None:
        """Return ``None`` when ``other`` can merge into ``self``.

        Otherwise return a human-readable description of the mismatch.
        Subclasses with parameters (``k``, ``epsilon``, hash seeds, range
        spaces, ...) override this; the default accepts any same-type
        operand.
        """
        return None

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self.size()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} n={self._n} size={self.size()}>"
