"""The :class:`Summary` abstract base class.

A *summary* in the sense of the paper is a small data structure ``S(D)``
computed from a dataset ``D`` that supports three operations:

``update``
    fold one more item into the summary (streaming insertion);

``merge``
    combine this summary with another summary of the *same type and
    parameters* so that the result summarizes the union of the two
    underlying datasets — with **no loss of guarantee**: the error
    parameter and the size bound of the merged summary equal those of
    the inputs, no matter how many merges happened before (this is the
    paper's definition of *mergeability*);

``query``-style accessors
    summary-type specific (frequency estimates, rank/quantile estimates,
    range counts, directional width), defined by subclasses.

Implementations must keep :attr:`n` equal to the total weight of all
items folded in through ``update`` and ``merge`` — every error bound in
the paper is relative to this quantity.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from .exceptions import MergeError, ParameterError

__all__ = ["Summary", "normalize_batch"]


def normalize_batch(
    items: Iterable[Any], weights: Optional[Sequence[int]]
) -> Tuple[Sequence[Any], Optional[np.ndarray], int]:
    """Validate and materialize a batch for :meth:`Summary.update_batch`.

    Returns ``(items, weights, total)`` where ``items`` is a sized
    sequence (list or numpy array), ``weights`` is either ``None`` or an
    ``int64`` array of per-item positive weights aligned with ``items``,
    and ``total`` is the total weight of the batch (what ``n`` must grow
    by once the batch is folded in).
    """
    if isinstance(items, np.ndarray):
        if items.ndim == 0:
            raise ParameterError("update_batch expects a sequence of items")
    elif not isinstance(items, (list, tuple)):
        items = list(items)
    if weights is None:
        return items, None, len(items)
    w = np.asarray(weights)
    if w.ndim != 1 or len(w) != len(items):
        raise ParameterError(
            f"weights must align with items: got {len(items)} item(s) "
            f"and weights of shape {w.shape}"
        )
    if w.dtype.kind == "f":
        if not np.all(w == np.floor(w)):
            raise ParameterError("weights must be integer-valued")
        w = w.astype(np.int64)
    elif w.dtype.kind in ("i", "u"):
        w = w.astype(np.int64)
    else:
        raise ParameterError(f"weights must be numeric, got dtype {w.dtype}")
    if len(w) and int(w.min()) <= 0:
        raise ParameterError("weights must be positive")
    return items, w, int(w.sum())


class Summary(abc.ABC):
    """Abstract mergeable summary.

    Subclasses must implement :meth:`update`, :meth:`_merge_same_type`,
    :meth:`size`, :meth:`to_dict` and :meth:`from_dict`, and must keep
    the item count :attr:`n` correct.  The public :meth:`merge` performs
    the type/compatibility checks common to all summaries and then
    delegates to ``_merge_same_type``.
    """

    #: total weight (number of item occurrences) summarized so far.
    _n: int

    #: whether the type supports the generic sliding-window lifting of
    #: :mod:`repro.windows`.  ``False`` for types whose merge carries
    #: structural preconditions the window combinator cannot honor
    #: (e.g. ``EqualWeightQuantiles`` requires equal-weight operands,
    #: and window buckets have arbitrary masses).
    windowable: bool = True

    #: "base" for directly implemented summaries; "windowed" for the
    #: auto-derived ``windowed.<name>`` combinator variants.  Drives the
    #: ``kind`` filter of :func:`repro.core.registry.registered_names`.
    summary_kind: str = "base"

    def __init__(self) -> None:
        self._n = 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Total weight of the summarized dataset (the paper's ``n``)."""
        return self._n

    @property
    def is_empty(self) -> bool:
        """True when no items have been folded in yet."""
        return self._n == 0

    def extend(
        self,
        items: Iterable[Any],
        weights: Optional[Sequence[int]] = None,
    ) -> "Summary":
        """Fold every item of ``items`` into the summary; return ``self``.

        ``weights`` is an optional parallel sequence of positive integer
        multiplicities — ``extend(items, weights)`` is equivalent to
        ``update(item, weight)`` for each pair.  Ingestion routes through
        :meth:`update_batch`, so summaries with vectorized batch paths
        ingest at array speed.
        """
        self.update_batch(items, weights)
        return self

    @classmethod
    def from_items(
        cls,
        items: Iterable[Any],
        /,
        weights: Optional[Sequence[int]] = None,
        **kwargs: Any,
    ) -> "Summary":
        """Build a summary of ``items`` (optionally weighted) with ``kwargs``."""
        summary = cls(**kwargs)
        summary.extend(items, weights)
        return summary

    def update_batch(
        self,
        items: Iterable[Any],
        weights: Optional[Sequence[int]] = None,
    ) -> None:
        """Fold a batch of items (optionally weighted) into the summary.

        Semantically identical to calling :meth:`update` once per item
        with the matching weight; subclasses override this with
        vectorized fast paths (bulk hashing, single compaction passes,
        pre-aggregation) that preserve those semantics.  The generic
        fallback simply loops.
        """
        items, weights, _ = normalize_batch(items, weights)
        if weights is None:
            for item in items:
                self.update(item)
        else:
            for item, weight in zip(items, weights.tolist()):
                self.update(item, weight)

    # ------------------------------------------------------------------
    # Abstract surface
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def update(self, item: Any, weight: int = 1) -> None:
        """Fold ``weight`` occurrences of ``item`` into the summary."""

    @abc.abstractmethod
    def _merge_same_type(self, other: "Summary") -> None:
        """Merge ``other`` (already checked to be compatible) into ``self``."""

    @abc.abstractmethod
    def size(self) -> int:
        """Number of stored entries (counters, samples, points, ...).

        This is the quantity bounded by the paper's Table 1 — *not* the
        byte size of the Python object.
        """

    @abc.abstractmethod
    def to_dict(self) -> Dict[str, Any]:
        """Serialize state to a JSON-compatible dictionary.

        The dictionary must round-trip through :meth:`from_dict` and is
        what :mod:`repro.core.serialization` embeds in its envelope.
        """

    @classmethod
    @abc.abstractmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Summary":
        """Reconstruct a summary from :meth:`to_dict` output."""

    # ------------------------------------------------------------------
    # Merge protocol
    # ------------------------------------------------------------------

    def merge(self, other: "Summary") -> "Summary":
        """Merge ``other`` into ``self`` and return ``self``.

        ``other`` is left unchanged.  Raises :class:`MergeError` when the
        operands are of different concrete types or carry incompatible
        parameters (as reported by :meth:`compatible_with`).
        """
        if type(other) is not type(self):
            raise MergeError(
                f"cannot merge {type(self).__name__} with {type(other).__name__}; "
                "mergeability requires identical summary types"
            )
        problem = self.compatible_with(other)
        if problem is not None:
            raise MergeError(
                f"incompatible {type(self).__name__} operands: {problem}"
            )
        self._merge_same_type(other)
        return self

    def merge_many(self, others: Iterable["Summary"]) -> "Summary":
        """Merge every summary in ``others`` into ``self``; return ``self``.

        Semantically identical to folding :meth:`merge` over ``others``
        left to right, but a single call lets subclasses perform an
        s-way combine in one pass (one table sum, one register max, one
        compaction cascade) instead of ``s - 1`` sequential merges with
        ``s - 1`` intermediate prunes.  The generic fallback loops over
        :meth:`_merge_same_type`.

        All operands are checked before any state changes, so a type or
        parameter mismatch anywhere in ``others`` raises
        :class:`MergeError` leaving ``self`` untouched.
        """
        others = [o for o in others if o is not self]
        for other in others:
            if type(other) is not type(self):
                raise MergeError(
                    f"cannot merge {type(self).__name__} with "
                    f"{type(other).__name__}; mergeability requires identical "
                    "summary types"
                )
            problem = self.compatible_with(other)
            if problem is not None:
                raise MergeError(
                    f"incompatible {type(self).__name__} operands: {problem}"
                )
        if others:
            self._merge_many_same_type(others)
        return self

    def _merge_many_same_type(self, others: Sequence["Summary"]) -> None:
        """k-way merge of pre-checked same-type operands (override me).

        The generic fallback is the sequential fold; subclasses with
        vectorizable state override this with a single-pass combine.
        """
        for other in others:
            self._merge_same_type(other)

    def windowed(
        self,
        eps: float = 0.25,
        window: Optional[float] = None,
        mode: str = "count",
        granularity: float = 1,
    ) -> "Summary":
        """Lift this (empty) summary to sliding-window semantics.

        Returns a fresh instance of the auto-registered
        ``windowed.<name>`` variant for this summary type, using ``self``
        as the prototype from which the window's per-bucket sub-summaries
        are spawned.  ``self`` must be empty (it defines parameters, not
        data) and its type must be windowable.  See
        :class:`repro.windows.WindowedSummary` for the semantics of
        ``eps``, ``window``, ``mode`` and ``granularity``.
        """
        from .registry import get_summary_class

        if not self.windowable:
            raise ParameterError(
                f"{type(self).__name__} is not windowable: "
                "its merge preconditions are incompatible with "
                "window-bucket masses"
            )
        name = getattr(type(self), "registry_name", None)
        if name is None:
            raise ParameterError(
                f"{type(self).__name__} is not a registered summary type"
            )
        cls = get_summary_class(f"windowed.{name}")
        return cls.from_prototype(
            self, eps=eps, window=window, mode=mode, granularity=granularity
        )

    def compatible_with(self, other: "Summary") -> str | None:
        """Return ``None`` when ``other`` can merge into ``self``.

        Otherwise return a human-readable description of the mismatch.
        Subclasses with parameters (``k``, ``epsilon``, hash seeds, range
        spaces, ...) override this; the default accepts any same-type
        operand.
        """
        return None

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self.size()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} n={self._n} size={self.size()}>"
