"""Process-parallel execution for leaf builds and tree merges.

The merge/query runtime parallelizes two embarrassingly parallel
phases of a distributed aggregation: *leaf builds* (every node ingests
its own shard) and *level merges* (all pairs of a merge-tree level are
independent).  :class:`ParallelExecutor` provides the worker pool both
phases share.

Design constraints, in order:

1. **Determinism.** Results must be byte-identical regardless of the
   worker count.  The executor guarantees order-preserving maps and
   never shares state between tasks; determinism then only requires
   that each task owns its randomness (every summary carries its own
   :class:`numpy.random.Generator`, and factories should derive fresh
   per-call state — an int seed, not a shared generator object).
2. **Graceful degradation.** Anywhere a process pool cannot run —
   ``max_workers <= 1``, no ``fork`` start method, a sandbox that
   forbids subprocesses — the executor transparently degrades to an
   in-process serial map with identical semantics (and no pickling, so
   serialization is skipped entirely on the serial path).
3. **Lambda-friendliness.** Summary factories are usually lambdas,
   which ``ProcessPoolExecutor`` cannot pickle.  The pool is therefore
   forked *per map call* and the callable travels to the children via
   fork-time memory inheritance (a module-level payload slot), not via
   pickle; only task *results* are pickled back.
"""

from __future__ import annotations

import os
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

from .exceptions import ParameterError

__all__ = ["ParallelExecutor", "ExecutorLike", "resolve_executor"]

#: fork-time payload slot: ``(fn, tasks)`` visible to children of the
#: next pool fork.  Only ever read by `_forked_task` inside workers.
_FORK_PAYLOAD: Optional[Tuple[Callable[..., Any], Sequence[Tuple[Any, ...]]]] = None


def _forked_task(index: int) -> Any:
    """Run task ``index`` of the payload inherited at fork time."""
    fn, tasks = _FORK_PAYLOAD  # type: ignore[misc]
    return fn(*tasks[index])


def _fork_available() -> bool:
    try:
        import multiprocessing

        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - exotic platforms
        return False


class ParallelExecutor:
    """Order-preserving task map over a process pool, with serial fallback.

    Parameters
    ----------
    max_workers:
        Pool size.  ``None`` means ``os.cpu_count()``; ``0`` or ``1``
        means serial execution (no subprocesses, no pickling).

    Attributes
    ----------
    fallbacks:
        Number of map calls that degraded to serial execution after a
        pool failure (0 on healthy platforms).
    """

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is None:
            max_workers = os.cpu_count() or 1
        if max_workers < 0:
            raise ParameterError(
                f"max_workers must be >= 0, got {max_workers!r}"
            )
        self.max_workers = int(max_workers)
        self.fallbacks = 0
        self._broken = not _fork_available()

    @property
    def is_parallel(self) -> bool:
        """True when map calls will attempt to use a process pool."""
        return self.max_workers > 1 and not self._broken

    def map(
        self,
        fn: Callable[..., Any],
        tasks: Sequence[Tuple[Any, ...]],
    ) -> List[Any]:
        """Apply ``fn(*task)`` to every task; results in task order.

        Tasks never observe each other; a failure to run the pool (or a
        worker raising pickling errors) degrades to the serial path.
        Exceptions raised by ``fn`` itself propagate unchanged.
        """
        tasks = list(tasks)
        if len(tasks) <= 1 or not self.is_parallel:
            return [fn(*task) for task in tasks]
        global _FORK_PAYLOAD
        import multiprocessing

        workers = min(self.max_workers, len(tasks))
        chunksize = max(1, (len(tasks) + workers - 1) // workers)
        _FORK_PAYLOAD = (fn, tasks)
        try:
            with multiprocessing.get_context("fork").Pool(workers) as pool:
                return pool.map(_forked_task, range(len(tasks)), chunksize)
        except (OSError, PermissionError, ImportError):
            # sandboxes without subprocess support: degrade, remember
            self._broken = True
            self.fallbacks += 1
            return [fn(*task) for task in tasks]
        finally:
            _FORK_PAYLOAD = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "parallel" if self.is_parallel else "serial"
        return f"<ParallelExecutor workers={self.max_workers} ({mode})>"


ExecutorLike = Union[None, int, ParallelExecutor]


def resolve_executor(executor: ExecutorLike) -> Optional[ParallelExecutor]:
    """Normalize an executor argument.

    ``None`` stays ``None`` (callers keep their scalar legacy path); an
    ``int`` builds a :class:`ParallelExecutor` with that many workers
    (1 = the serial executor, same code path as parallel minus the
    pool); an executor instance passes through.
    """
    if executor is None:
        return None
    if isinstance(executor, ParallelExecutor):
        return executor
    if isinstance(executor, int):
        return ParallelExecutor(max_workers=executor)
    raise ParameterError(
        f"executor must be None, an int worker count, or a ParallelExecutor, "
        f"got {type(executor)!r}"
    )
