"""Process-parallel execution: one-shot maps and the persistent worker runtime.

The merge/query runtime parallelizes two embarrassingly parallel
phases of a distributed aggregation: *leaf builds* (every node ingests
its own shard) and *level merges* (all pairs of a merge-tree level are
independent).  Two mechanisms serve them:

- :meth:`ParallelExecutor.map` — the legacy one-shot map.  The pool is
  forked per call and the callable travels to the children via
  fork-time memory inheritance (a module-level payload slot), so
  lambdas work; only task results are pickled back.  Right for a
  single large dispatch, wrong for a plan of many small waves.
- :class:`WorkerRuntime` — the persistent runtime behind
  :func:`repro.engine.execute_plan`'s wave path.  Workers are forked
  *once per plan* and inherit every slot value and builder closure
  copy-on-write; each wave is then **one IPC round-trip** shipping only
  plan-step ids (slot names + merge ordinals), never summaries.  State
  stays resident in the workers between waves; when a value must move
  (a wave result, a stale slot synced to another worker) its bulk bytes
  travel through :mod:`repro.core.shared_state` shared-memory arenas,
  not the command pipes.

Design constraints, in order:

1. **Determinism.** Results must be byte-identical regardless of the
   worker count.  Maps are order-preserving; the runtime's wave groups
   are slot-disjoint and each slot's merge chain replays in plan order
   no matter which worker executes it.
2. **Graceful, *recoverable*, *visible* degradation.**  Anywhere a
   process pool cannot run — ``max_workers <= 1``, no ``fork`` start
   method, a sandbox that forbids subprocesses — execution degrades to
   an in-process serial path with identical semantics.  A transient
   failure does **not** disable parallelism forever: the executor
   backs off (``reprobe_after`` map calls, doubling up to a cap) and
   then re-probes the pool.  Every degradation is recorded in
   :attr:`ParallelExecutor.degradation_events` so callers (benchmarks,
   the CLI) can surface "this ran serial" instead of silently reporting
   parallel numbers.
3. **Exactly-once under worker crashes.**  A runtime worker publishes a
   wave's results in a single ack message and never mutates shared
   bytes in place, so a worker that dies mid-wave leaves no partial
   effects: the coordinator re-executes exactly the unacknowledged
   groups.
"""

from __future__ import annotations

import os
import pickle
import secrets
import traceback
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from .exceptions import ParameterError
from .shared_state import (
    BlockCache,
    ShmArena,
    _unlink_block,
    _untrack,
    import_value,
)

__all__ = [
    "ParallelExecutor",
    "ExecutorLike",
    "resolve_executor",
    "WorkerRuntime",
    "RuntimeUnavailable",
]

#: fork-time payload slot for one-shot maps: ``(fn, tasks)`` visible to
#: children of the next pool fork.  Populated only for the duration of
#: the fork (cleared in a ``finally``) so it can never pin a wave's
#: summaries — or closures over them — alive after the map returns.
_FORK_PAYLOAD: Optional[Tuple[Callable[..., Any], Sequence[Tuple[Any, ...]]]] = None

#: fork-time payload slot for the persistent runtime: the plan/slot
#: state workers inherit.  Same lifecycle rule: populated only while
#: the worker processes fork, cleared in a ``finally``.
_RUNTIME_PAYLOAD: Any = None

#: degradation cooldown: after a pool failure, stay serial for this
#: many map calls before re-probing (doubles per consecutive failure,
#: capped at _MAX_COOLDOWN)
_REPROBE_AFTER = 8
_MAX_COOLDOWN = 64

_PICKLE = pickle.HIGHEST_PROTOCOL


def _forked_task(index: int) -> Any:
    """Run task ``index`` of the payload inherited at fork time."""
    fn, tasks = _FORK_PAYLOAD  # type: ignore[misc]
    return fn(*tasks[index])


def _fork_available() -> bool:
    try:
        import multiprocessing

        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - exotic platforms
        return False


class RuntimeUnavailable(Exception):
    """Raised when a persistent worker runtime cannot be started."""


class ParallelExecutor:
    """Order-preserving task map over a process pool, with serial fallback.

    Parameters
    ----------
    max_workers:
        Pool size.  ``None`` means ``os.cpu_count()``; ``0`` or ``1``
        means serial execution (no subprocesses, no pickling).
    reprobe_after:
        After a pool failure, stay serial for this many map calls, then
        try the pool again (the cooldown doubles per consecutive
        failure, capped).  ``0`` restores the legacy permanently-broken
        behavior.

    Attributes
    ----------
    fallbacks:
        Number of map calls that degraded to serial execution after a
        pool failure (0 on healthy platforms).
    degradation_events:
        Human-readable record of every degradation (pool failures,
        runtime start failures, worker crashes) — what callers surface
        so serial runs are never silently reported as parallel.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        reprobe_after: int = _REPROBE_AFTER,
    ) -> None:
        if max_workers is None:
            max_workers = os.cpu_count() or 1
        if max_workers < 0:
            raise ParameterError(
                f"max_workers must be >= 0, got {max_workers!r}"
            )
        self.max_workers = int(max_workers)
        self.fallbacks = 0
        self.reprobe_after = int(reprobe_after)
        self.degradation_events: List[str] = []
        self._fork_unavailable = not _fork_available()
        self._cooldown = 0
        self._failure_streak = 0
        #: test hook: ``(worker_id, after_items, skip_runs)`` arms a
        #: debug crash in the next runtime started from this executor
        self._debug_worker_crash: Optional[Tuple[int, ...]] = None
        if self._fork_unavailable and self.max_workers > 1:
            self.degradation_events.append(
                "platform has no fork start method; all execution is serial"
            )

    @property
    def is_parallel(self) -> bool:
        """True when map calls will attempt to use a process pool."""
        return (
            self.max_workers > 1
            and not self._fork_unavailable
            and self._cooldown == 0
        )

    @property
    def degraded(self) -> bool:
        """True while parallelism is requested but currently unavailable."""
        return self.max_workers > 1 and (
            self._fork_unavailable or self._cooldown > 0
        )

    def _record_failure(self, what: str, exc: BaseException) -> None:
        self._failure_streak += 1
        if self.reprobe_after > 0:
            self._cooldown = min(
                _MAX_COOLDOWN, self.reprobe_after * (2 ** (self._failure_streak - 1))
            )
            retry = f"re-probing after {self._cooldown} call(s)"
        else:
            self._cooldown = 1 << 62  # effectively permanent, by request
            retry = "re-probing disabled"
        self.degradation_events.append(
            f"{what} degraded to serial ({type(exc).__name__}: {exc}); {retry}"
        )

    def map(
        self,
        fn: Callable[..., Any],
        tasks: Sequence[Tuple[Any, ...]],
    ) -> List[Any]:
        """Apply ``fn(*task)`` to every task; results in task order.

        Tasks never observe each other; a failure to run the pool (or a
        worker raising pickling errors) degrades to the serial path and
        is recorded.  Exceptions raised by ``fn`` itself propagate
        unchanged.
        """
        tasks = list(tasks)
        if len(tasks) <= 1 or self.max_workers <= 1 or self._fork_unavailable:
            return [fn(*task) for task in tasks]
        if self._cooldown > 0:
            # degraded: serve serial, tick toward the next pool re-probe
            self._cooldown -= 1
            return [fn(*task) for task in tasks]
        global _FORK_PAYLOAD
        import multiprocessing

        workers = min(self.max_workers, len(tasks))
        chunksize = max(1, (len(tasks) + workers - 1) // workers)
        _FORK_PAYLOAD = (fn, tasks)
        try:
            with multiprocessing.get_context("fork").Pool(workers) as pool:
                results = pool.map(_forked_task, range(len(tasks)), chunksize)
            self._failure_streak = 0
            return results
        except (OSError, PermissionError, ImportError) as exc:
            # sandboxes without subprocess support: degrade, remember,
            # and retry later — one transient fault must not disable
            # parallelism for the process lifetime
            self.fallbacks += 1
            self._record_failure("map", exc)
            return [fn(*task) for task in tasks]
        finally:
            _FORK_PAYLOAD = None

    def start_runtime(
        self,
        session_factory: Callable[..., Any],
        payload: Any,
        workers: Optional[int] = None,
    ) -> "WorkerRuntime":
        """Fork a persistent :class:`WorkerRuntime` inheriting ``payload``.

        Raises :class:`RuntimeUnavailable` (after recording the
        degradation) when workers cannot be forked; the caller falls
        back to its serial path.
        """
        if not self.is_parallel:
            raise RuntimeUnavailable("executor is serial or degraded")
        count = min(self.max_workers, workers) if workers else self.max_workers
        try:
            runtime = WorkerRuntime(count, session_factory, payload)
        except (OSError, PermissionError, ImportError) as exc:
            self.fallbacks += 1
            self._record_failure("runtime start", exc)
            raise RuntimeUnavailable(str(exc)) from exc
        self._failure_streak = 0
        if self._debug_worker_crash is not None:
            runtime.inject_crash(*self._debug_worker_crash)
            self._debug_worker_crash = None
        return runtime

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "parallel" if self.is_parallel else "serial"
        return f"<ParallelExecutor workers={self.max_workers} ({mode})>"


# ---------------------------------------------------------------------------
# The persistent worker runtime
# ---------------------------------------------------------------------------


def _runtime_worker_main(
    worker_id: int,
    conn: Any,
    session_factory: Callable[..., Any],
    arena_prefix: str,
) -> None:
    """Worker process body: resident state, one loop over commands.

    The payload (plan + slot state) arrives via fork inheritance, never
    the pipe.  Every command is answered with exactly one ack; a wave's
    results are published atomically in that ack, so a crash mid-wave
    leaves no partial effects visible anywhere.
    """
    payload = _RUNTIME_PAYLOAD
    arena = ShmArena(prefix=arena_prefix)
    cache = BlockCache()
    session = session_factory(worker_id, payload, arena)
    crash_after: Optional[int] = None
    crash_skip = 0
    while True:
        try:
            raw = conn.recv_bytes()
        except (EOFError, OSError):  # pragma: no cover - coordinator died
            break
        msg = pickle.loads(raw)
        cmd = msg[0]
        if cmd == "close":
            arena.close()
            cache.close()
            try:
                conn.send_bytes(pickle.dumps(("closed", arena.blocks), _PICKLE))
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
            break
        if cmd == "debug_crash":
            crash_after, crash_skip = msg[1], msg[2]
            conn.send_bytes(pickle.dumps(("ok", [], [], 0), _PICKLE))
            continue
        # ("run", kind, items, sync)
        _cmd, kind, items, sync = msg
        armed = crash_after is not None and crash_skip == 0
        if crash_after is not None and crash_skip > 0:
            crash_skip -= 1
        try:
            for slot, packed in sync:
                tag, body = packed
                value = import_value(body, cache) if tag == "desc" else body
                session.install(slot, value)
            results = []
            for index, item in enumerate(items):
                if armed and index >= crash_after:
                    os._exit(99)  # debug hook: die mid-wave, before the ack
                results.append(session.execute(kind, item))
            if armed:
                os._exit(99)
            reply = ("ok", results, arena.blocks, arena.bytes_written)
        except BaseException as exc:
            try:
                packed_exc = pickle.dumps(exc, _PICKLE)
            except Exception:
                packed_exc = None
            reply = ("err", packed_exc, traceback.format_exc())
        try:
            conn.send_bytes(pickle.dumps(reply, _PICKLE))
        except (BrokenPipeError, OSError):  # pragma: no cover
            break


class WorkerRuntime:
    """Coordinator handle over one plan's persistent forked workers.

    ``session_factory(worker_id, payload, arena)`` runs *inside* each
    worker after the fork and returns the object that owns resident
    state; it must expose ``install(slot, value)`` and
    ``execute(kind, item) -> (slot, descriptor, size)``.  The engine's
    session lives in :mod:`repro.engine.executor`; this class only owns
    processes, pipes, shared-memory lifetime, and accounting.
    """

    def __init__(
        self,
        workers: int,
        session_factory: Callable[..., Any],
        payload: Any,
    ) -> None:
        global _RUNTIME_PAYLOAD
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        self.workers = int(workers)
        self.live: Set[int] = set()
        self.cache = BlockCache()
        self.stats: Dict[str, Any] = {
            "workers": self.workers,
            "dispatch_rounds": 0,
            "messages_sent": 0,
            "cmd_bytes": 0,
            "ack_bytes": 0,
            "synced_slots": 0,
            "sync_shm_bytes": 0,
            "exported_bytes": 0,
            "worker_crashes": 0,
        }
        self._conns: Dict[int, Any] = {}
        self._procs: Dict[int, Any] = {}
        self._blocks: Set[str] = set()
        self._exported: Dict[int, int] = {}
        self._closed = False
        # deterministic arena block names (short: macOS caps shm names at
        # ~31 chars) so close() can probe-unlink blocks a crashed worker
        # allocated but never got to report in an ack
        self._prefix = f"rs{secrets.token_hex(4)}"
        _RUNTIME_PAYLOAD = payload
        try:
            for worker_id in range(self.workers):
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_runtime_worker_main,
                    args=(
                        worker_id,
                        child_conn,
                        session_factory,
                        f"{self._prefix}w{worker_id}b",
                    ),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._conns[worker_id] = parent_conn
                self._procs[worker_id] = proc
                self.live.add(worker_id)
        except BaseException:
            _RUNTIME_PAYLOAD = None
            self.close()
            raise
        finally:
            # workers inherited the payload at fork; the coordinator
            # slot must not pin it (or its closures) any longer
            _RUNTIME_PAYLOAD = None

    # -- dispatch ---------------------------------------------------------

    def dispatch(
        self, assignments: Dict[int, Tuple[str, List[Any], List[Any]]]
    ) -> Tuple[Dict[int, List[Any]], List[int]]:
        """One wave: scatter commands, gather acks — a single round-trip.

        ``assignments`` maps worker id to ``(kind, items, sync)``.
        Returns ``(results, crashed)``: per-worker result lists for the
        workers that acked, plus the ids of workers that died before
        acking (their items were *not* applied anywhere — the caller
        re-executes exactly those).  Worker exceptions re-raise here.
        """
        sent: List[int] = []
        crashed: List[int] = []
        for worker_id, (kind, items, sync) in assignments.items():
            blob = pickle.dumps(("run", kind, items, sync), _PICKLE)
            self.stats["cmd_bytes"] += len(blob)
            self.stats["messages_sent"] += 1
            self.stats["synced_slots"] += len(sync)
            for _slot, (tag, body) in sync:
                if tag == "desc" and body.get("kind") != "inline":
                    self.stats["sync_shm_bytes"] += body["span"][1] + sum(
                        length for (_b, _o, length) in body.get("spans", ())
                    )
            try:
                self._conns[worker_id].send_bytes(blob)
                sent.append(worker_id)
            except (BrokenPipeError, OSError):
                self._mark_dead(worker_id)
                crashed.append(worker_id)
        self.stats["dispatch_rounds"] += 1
        results: Dict[int, List[Any]] = {}
        for worker_id in sent:
            try:
                raw = self._conns[worker_id].recv_bytes()
            except (EOFError, OSError):
                self._mark_dead(worker_id)
                crashed.append(worker_id)
                continue
            self.stats["ack_bytes"] += len(raw)
            reply = pickle.loads(raw)
            if reply[0] == "err":
                _tag, packed_exc, worker_tb = reply
                exc = None
                if packed_exc is not None:
                    try:
                        exc = pickle.loads(packed_exc)
                    except Exception:
                        exc = None
                if exc is None:
                    exc = RuntimeError(
                        f"runtime worker {worker_id} failed:\n{worker_tb}"
                    )
                raise exc
            _tag, body, blocks, exported = reply
            self._blocks.update(blocks)
            self._exported[worker_id] = exported
            self.stats["exported_bytes"] = sum(self._exported.values())
            results[worker_id] = body
        return results, crashed

    def _mark_dead(self, worker_id: int) -> None:
        if worker_id in self.live:
            self.live.discard(worker_id)
            self.stats["worker_crashes"] += 1
        conn = self._conns.get(worker_id)
        if conn is not None:
            conn.close()
        proc = self._procs.get(worker_id)
        if proc is not None:
            proc.join(timeout=1.0)

    # -- values -----------------------------------------------------------

    def fetch(self, descriptor: Dict[str, Any], copy: bool = True) -> Any:
        """Materialize an exported value in the coordinator."""
        return import_value(descriptor, self.cache, copy=copy)

    # -- debug ------------------------------------------------------------

    def inject_crash(
        self, worker_id: int, after_items: int, skip_runs: int = 0
    ) -> None:
        """Test hook: make ``worker_id`` die after ``after_items`` items of
        a run command (before its ack), simulating a mid-wave crash.
        ``skip_runs`` run commands execute normally first (e.g. 1 lets the
        build wave through so the crash lands in the first merge wave)."""
        conn = self._conns[worker_id]
        conn.send_bytes(
            pickle.dumps(("debug_crash", after_items, skip_runs), _PICKLE)
        )
        conn.recv_bytes()

    # -- shutdown ---------------------------------------------------------

    def close(self) -> None:
        """Stop workers and release every shared-memory block."""
        if self._closed:
            return
        self._closed = True
        for worker_id in sorted(self._conns):
            conn = self._conns[worker_id]
            if worker_id in self.live:
                try:
                    conn.send_bytes(pickle.dumps(("close",), _PICKLE))
                    reply = pickle.loads(conn.recv_bytes())
                    if reply[0] == "closed":
                        self._blocks.update(reply[1])
                except (BrokenPipeError, EOFError, OSError):
                    pass
            conn.close()
        for proc in self._procs.values():
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1.0)
        self.live.clear()
        # the coordinator owns block lifetime (workers are untracked so
        # a crash cannot vaporize state mid-recovery): unlink everything,
        # probing each worker's dense name sequence to also catch blocks
        # a crashed worker allocated but never acked
        from multiprocessing import shared_memory

        for worker_id in range(self.workers):
            seq = 0
            while True:
                name = f"{self._prefix}w{worker_id}b{seq}"
                try:
                    block = shared_memory.SharedMemory(name=name)
                except FileNotFoundError:
                    break
                _untrack(name)
                block.close()
                _unlink_block(block)
                seq += 1
        self.cache.unlink_all(self._blocks)
        self._blocks.clear()
        self.cache.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


ExecutorLike = Union[None, int, ParallelExecutor]


def resolve_executor(executor: ExecutorLike) -> Optional[ParallelExecutor]:
    """Normalize an executor argument.

    ``None`` stays ``None`` (callers keep their scalar legacy path); an
    ``int`` builds a :class:`ParallelExecutor` with that many workers
    (1 = the serial executor, same code path as parallel minus the
    pool); an executor instance passes through.
    """
    if executor is None:
        return None
    if isinstance(executor, ParallelExecutor):
        return executor
    if isinstance(executor, int):
        return ParallelExecutor(max_workers=executor)
    raise ParameterError(
        f"executor must be None, an int worker count, or a ParallelExecutor, "
        f"got {type(executor)!r}"
    )
