"""Stable, process-independent hashing of stream items.

Python's built-in ``hash`` is salted per process for strings, which
would make serialized sketches (CountMin/CountSketch) irreproducible
across processes.  The linear sketches therefore hash through
:func:`stable_hash`, a BLAKE2b-based 64-bit hash that is deterministic
across runs, platforms, and processes.
"""

from __future__ import annotations

import hashlib
from typing import Any

import numpy as np

__all__ = ["stable_hash"]

_MASK64 = (1 << 64) - 1


def _item_bytes(item: Any) -> bytes:
    """Canonical byte encoding of a stream item.

    Integers are encoded by value (so ``5`` and ``numpy.int64(5)`` hash
    identically); everything else falls back to ``repr`` which is stable
    for the str/tuple/bytes items the library supports.
    """
    if isinstance(item, np.generic):
        item = item.item()
    if isinstance(item, bool):
        return b"b" + (b"1" if item else b"0")
    if isinstance(item, int):
        return b"i" + item.to_bytes((item.bit_length() + 8) // 8 + 1, "little", signed=True)
    if isinstance(item, bytes):
        return b"y" + item
    if isinstance(item, str):
        return b"s" + item.encode("utf-8")
    return b"r" + repr(item).encode("utf-8")


def stable_hash(item: Any, seed: int = 0) -> int:
    """Return a deterministic 64-bit hash of ``item`` under ``seed``."""
    h = hashlib.blake2b(
        _item_bytes(item), digest_size=8, key=seed.to_bytes(8, "little")
    )
    return int.from_bytes(h.digest(), "little") & _MASK64
