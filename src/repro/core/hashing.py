"""Stable, process-independent hashing of stream items.

Python's built-in ``hash`` is salted per process for strings, which
would make serialized sketches (CountMin/CountSketch) irreproducible
across processes.  The linear sketches therefore hash through
:func:`stable_hash`, a deterministic 64-bit hash that is stable across
runs, platforms, and processes.

Two item families are handled differently:

* Machine-width integers (and booleans, which compare equal to their
  integer values everywhere a Python ``dict`` is involved) go through a
  splitmix64-style finalizer seeded by a mixed key.  The finalizer is a
  bijection on 64-bit words, so distinct in-range integers can never
  collide under the same seed, and the identical arithmetic is available
  vectorized over numpy integer arrays via :func:`stable_hash_array` —
  this is what makes batched sketch ingestion fast.
* Everything else (strings, bytes, big integers, floats, tuples) is
  hashed through keyed BLAKE2b over a canonical byte encoding.

Both paths agree item-by-item: hashing a numpy ``int64`` array with
:func:`hash_batch` yields exactly ``stable_hash`` of each element.
"""

from __future__ import annotations

import hashlib
from typing import Any, Optional, Sequence

import numpy as np

__all__ = ["stable_hash", "stable_hash_array", "hash_batch"]

_MASK64 = (1 << 64) - 1

#: splitmix64 constants (Steele, Lea & Flood; public domain reference)
_GOLDEN64 = 0x9E3779B97F4A7C15
_MIX_A = 0xBF58476D1CE4E5B9
_MIX_B = 0x94D049BB133111EB

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


def _mix64(x: int) -> int:
    """splitmix64 finalizer — a bijection on 64-bit words."""
    x &= _MASK64
    x ^= x >> 30
    x = (x * _MIX_A) & _MASK64
    x ^= x >> 27
    x = (x * _MIX_B) & _MASK64
    x ^= x >> 31
    return x


def _seed_key(seed: int) -> int:
    """Expand a user seed into a full-entropy 64-bit key."""
    return _mix64((seed & _MASK64) ^ _GOLDEN64)


def _mix64_array(x: np.ndarray) -> np.ndarray:
    """Vectorized :func:`_mix64` over a ``uint64`` array (wrapping mul)."""
    x = x.astype(np.uint64, copy=True)
    x ^= x >> np.uint64(30)
    x *= np.uint64(_MIX_A)
    x ^= x >> np.uint64(27)
    x *= np.uint64(_MIX_B)
    x ^= x >> np.uint64(31)
    return x


def _item_bytes(item: Any) -> bytes:
    """Canonical byte encoding of a stream item.

    Integers are encoded by value (so ``5`` and ``numpy.int64(5)`` hash
    identically); everything else falls back to ``repr`` which is stable
    for the str/tuple/bytes items the library supports.
    """
    if isinstance(item, np.generic):
        item = item.item()
    if isinstance(item, int):  # includes bool: True hashes as 1, as in dicts
        return b"i" + item.to_bytes((item.bit_length() + 8) // 8 + 1, "little", signed=True)
    if isinstance(item, bytes):
        return b"y" + item
    if isinstance(item, str):
        return b"s" + item.encode("utf-8")
    return b"r" + repr(item).encode("utf-8")


def stable_hash(item: Any, seed: int = 0) -> int:
    """Return a deterministic 64-bit hash of ``item`` under ``seed``."""
    if isinstance(item, np.generic):
        item = item.item()
    if isinstance(item, int) and _INT64_MIN <= item <= _INT64_MAX:
        # two's-complement lane, exactly what int64→uint64 view gives the
        # vectorized path
        return _mix64(((item & _MASK64) + _seed_key(seed)) & _MASK64)
    h = hashlib.blake2b(
        _item_bytes(item), digest_size=8, key=(seed & _MASK64).to_bytes(8, "little")
    )
    return int.from_bytes(h.digest(), "little") & _MASK64


def stable_hash_array(items: Any, seed: int = 0) -> Optional[np.ndarray]:
    """Vectorized :func:`stable_hash` for integer arrays, else ``None``.

    Returns a ``uint64`` array equal element-wise to ``stable_hash`` when
    ``items`` coerces to a 1-D machine-integer (or boolean) array;
    returns ``None`` for anything the scalar BLAKE2b path must handle
    (strings, floats, big ints, mixed objects).
    """
    try:
        arr = np.asarray(items)
    except (ValueError, OverflowError):  # e.g. ragged lists, huge ints
        return None
    if arr.ndim != 1:
        return None
    kind = arr.dtype.kind
    if kind == "i":
        lanes = arr.astype(np.int64, copy=False).view(np.uint64)
    elif kind == "b" or (kind == "u" and arr.dtype.itemsize < 8):
        lanes = arr.astype(np.uint64)
    else:
        return None
    return _mix64_array(lanes + np.uint64(_seed_key(seed)))


def hash_batch(items: Sequence[Any], seed: int = 0) -> np.ndarray:
    """Hash a materialized batch of items to a ``uint64`` array.

    Uses the vectorized integer path when the batch supports it and falls
    back to a per-item :func:`stable_hash` loop otherwise; either way the
    result matches scalar hashing element-for-element.
    """
    hashes = stable_hash_array(items, seed=seed)
    if hashes is not None:
        return hashes
    return np.fromiter(
        (stable_hash(item, seed=seed) for item in items),
        dtype=np.uint64,
        count=len(items),
    )
