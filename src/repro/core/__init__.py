"""Core framework: the mergeable-summary protocol and merge executors."""

from .base import Summary, normalize_batch
from .bundle import SummaryBundle
from .exceptions import (
    EmptySummaryError,
    MergeError,
    ParameterError,
    QueryError,
    ReproError,
    SerializationError,
)
from .codecs import (
    Codec,
    decode_summary,
    encode_summary,
    get_codec,
    register_codec,
    registered_codecs,
)
from .merge import (
    MERGE_STRATEGIES,
    MergeStrategy,
    merge_all,
    merge_chain,
    merge_kway,
    merge_random_tree,
    merge_tree,
)
from .parallel import ParallelExecutor, resolve_executor
from .registry import (
    add_registration_hook,
    get_summary_class,
    register_summary,
    registered_names,
)
from .rng import resolve_rng, spawn
from .serialization import dumps, from_envelope, loads, to_envelope

__all__ = [
    "Summary",
    "normalize_batch",
    "SummaryBundle",
    "ReproError",
    "ParameterError",
    "MergeError",
    "QueryError",
    "SerializationError",
    "EmptySummaryError",
    "MERGE_STRATEGIES",
    "MergeStrategy",
    "merge_all",
    "merge_chain",
    "merge_tree",
    "merge_random_tree",
    "merge_kway",
    "ParallelExecutor",
    "resolve_executor",
    "register_summary",
    "add_registration_hook",
    "get_summary_class",
    "registered_names",
    "resolve_rng",
    "spawn",
    "dumps",
    "loads",
    "to_envelope",
    "from_envelope",
    "Codec",
    "register_codec",
    "get_codec",
    "registered_codecs",
    "encode_summary",
    "decode_summary",
]
