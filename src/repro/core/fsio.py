"""Filesystem seam for the durability layer.

Crash safety is a property of a *sequence of syscalls* — which bytes
were written, which were fsynced, which renames were made durable by a
directory fsync.  Everything in the library that must survive process
death (:mod:`repro.store.persistence`, :mod:`repro.store.wal`, the
checkpoint store in :mod:`repro.distributed.recovery`) therefore routes
its mutating filesystem operations through one tiny interface,
:class:`Filesystem`, instead of calling :mod:`os` directly.

In production the default :class:`RealFilesystem` (the module-level
:data:`REAL_FS`) is a thin pass-through.  The point of the seam is the
test side: ``tests/store/crashfs.py`` implements the same interface
with a syscall counter and a durability model (synced vs volatile
bytes, pending metadata ops), which is what lets the crash-injection
suite kill an operation at *every* mutating syscall and check that
recovery lands on a consistent state.

The write discipline the durability code follows (and the model
assumes) is deliberately narrow:

- files are written fresh (:meth:`Filesystem.open_write`) or appended
  to (:meth:`Filesystem.open_append`) — never patched in place;
- a file's bytes are durable only after :meth:`Filesystem.fsync`;
- renames, removals, and file creation are durable only after an
  :meth:`Filesystem.fsync_dir` of the containing directory;
- :func:`write_file_durable` bundles the canonical publish sequence:
  write a sibling temp file, fsync it, :meth:`Filesystem.replace` it
  over the destination, fsync the directory.
"""

from __future__ import annotations

import os
from typing import BinaryIO, List

__all__ = ["Filesystem", "RealFilesystem", "REAL_FS", "write_file_durable"]


class Filesystem:
    """Mutating-syscall interface the durability layer writes through.

    Read-side helpers (:meth:`read_bytes`, :meth:`exists`,
    :meth:`listdir`) are included so a shim can serve reads from the
    same tree it mutates, but only the mutating methods participate in
    crash-point counting.
    """

    # -- mutations (crash-countable) -----------------------------------

    def open_write(self, path: str) -> BinaryIO:
        """Open ``path`` fresh for binary writing (creates/truncates)."""
        raise NotImplementedError

    def open_append(self, path: str) -> BinaryIO:
        """Open ``path`` for binary appending (creates if missing)."""
        raise NotImplementedError

    def write(self, handle: BinaryIO, data: bytes) -> None:
        """Append ``data`` through an open handle."""
        raise NotImplementedError

    def fsync(self, handle: BinaryIO) -> None:
        """Flush and fsync an open handle (bytes durable after this)."""
        raise NotImplementedError

    def close(self, handle: BinaryIO) -> None:
        """Close a handle (does *not* imply durability)."""
        raise NotImplementedError

    def replace(self, src: str, dst: str) -> None:
        """Atomically rename ``src`` over ``dst`` (``os.replace``)."""
        raise NotImplementedError

    def remove(self, path: str) -> None:
        """Unlink one file."""
        raise NotImplementedError

    def makedirs(self, path: str) -> None:
        """Create a directory tree (no-op when it exists)."""
        raise NotImplementedError

    def fsync_dir(self, path: str) -> None:
        """fsync a directory: makes renames/creates/removes durable."""
        raise NotImplementedError

    # -- reads ---------------------------------------------------------

    def read_bytes(self, path: str) -> bytes:
        raise NotImplementedError

    def exists(self, path: str) -> bool:
        raise NotImplementedError

    def listdir(self, path: str) -> List[str]:
        raise NotImplementedError


class RealFilesystem(Filesystem):
    """The production pass-through to :mod:`os` / builtin ``open``."""

    def open_write(self, path: str) -> BinaryIO:
        return open(path, "wb")

    def open_append(self, path: str) -> BinaryIO:
        return open(path, "ab")

    def write(self, handle: BinaryIO, data: bytes) -> None:
        handle.write(data)

    def fsync(self, handle: BinaryIO) -> None:
        handle.flush()
        os.fsync(handle.fileno())

    def close(self, handle: BinaryIO) -> None:
        handle.close()

    def replace(self, src: str, dst: str) -> None:
        os.replace(src, dst)

    def remove(self, path: str) -> None:
        os.remove(path)

    def makedirs(self, path: str) -> None:
        os.makedirs(path, exist_ok=True)

    def fsync_dir(self, path: str) -> None:
        # directory fsync is what makes renames/creates durable on
        # POSIX; on platforms where directories cannot be opened
        # (Windows) the rename itself is the best available guarantee
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-specific
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def read_bytes(self, path: str) -> bytes:
        with open(path, "rb") as handle:
            return handle.read()

    def exists(self, path: str) -> bool:
        return os.path.exists(path)

    def listdir(self, path: str) -> List[str]:
        return os.listdir(path)


#: the default (production) filesystem every durability entry point uses
REAL_FS = RealFilesystem()


def write_file_durable(fs: Filesystem, path: str, data: bytes) -> None:
    """Publish ``data`` at ``path`` atomically and durably.

    The canonical commit sequence: write a sibling ``path + ".tmp"``,
    fsync it, rename it over ``path``, fsync the directory.  A crash at
    any point leaves either the old ``path`` content (temp file is
    garbage, never loaded) or the new content — never a torn file.
    """
    tmp = path + ".tmp"
    handle = fs.open_write(tmp)
    try:
        fs.write(handle, data)
        fs.fsync(handle)
    finally:
        fs.close(handle)
    fs.replace(tmp, path)
    fs.fsync_dir(os.path.dirname(path) or ".")
