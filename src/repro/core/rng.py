"""Deterministic random-number plumbing.

Every randomized summary in the library accepts either ``None`` (fresh
OS entropy), an integer seed, or an existing :class:`numpy.random.Generator`.
This module centralizes the conversion so behaviour is uniform and tests
can pin seeds everywhere.

The randomized quantile summaries of the paper (Sections 3.1-3.3) need
fresh, *independent* randomness at every merge; :func:`spawn` derives a
child generator from a parent so that a single seed still yields a fully
reproducible run of an arbitrarily deep merge tree.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = ["RngLike", "resolve_rng", "spawn"]

RngLike = Union[None, int, np.random.Generator]


def resolve_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``rng``.

    ``None`` draws a fresh seed from OS entropy; an ``int`` seeds a new
    PCG64 generator; an existing generator is returned unchanged (shared,
    not copied, so interleaved draws stay reproducible).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(
        f"rng must be None, an int seed, or numpy.random.Generator, got {type(rng)!r}"
    )


def spawn(rng: np.random.Generator) -> np.random.Generator:
    """Derive an independent child generator from ``rng``.

    Used when a summary hands private randomness to a sub-structure
    (e.g. one generator per weight class in the logarithmic-method
    quantile summary) so that draws in one sub-structure do not perturb
    another's sequence.
    """
    return np.random.default_rng(rng.integers(0, 2**63 - 1))
