"""Name → summary-class registry.

Registered names give every summary a stable identifier used by the
serialization envelope (:mod:`repro.core.serialization`), the benchmark
harness tables, and the examples.  Registration is explicit via the
:func:`register_summary` decorator applied at class-definition time.

Registration *hooks* let combinator layers react to every registration:
:mod:`repro.windows` installs one that derives a ``windowed.<name>``
variant for each base summary type, so lifting a new type to sliding
windows costs zero per-type code.  A hook is replayed over the classes
registered before it was installed, so installation order does not
matter.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Type, TypeVar

from .base import Summary
from .exceptions import ParameterError, SerializationError

__all__ = [
    "register_summary",
    "get_summary_class",
    "registered_names",
    "add_registration_hook",
]

_REGISTRY: Dict[str, Type[Summary]] = {}

#: hooks called as ``hook(name, cls)`` after every registration
_HOOKS: List[Callable[[str, Type[Summary]], None]] = []

S = TypeVar("S", bound=Type[Summary])


def register_summary(name: str) -> Callable[[S], S]:
    """Class decorator registering a summary under ``name``.

    The name must be unique across the library; re-registering the same
    class under the same name is a no-op (supports module reloads), but
    registering a *different* class under an existing name raises.
    """

    def decorator(cls: S) -> S:
        existing = _REGISTRY.get(name)
        if existing is not None and existing is not cls:
            raise ValueError(
                f"summary name {name!r} already registered to {existing.__name__}"
            )
        fresh = existing is None
        _REGISTRY[name] = cls
        cls.registry_name = name
        if fresh:
            for hook in list(_HOOKS):
                hook(name, cls)
        return cls

    return decorator


def add_registration_hook(
    hook: Callable[[str, Type[Summary]], None], replay: bool = True
) -> None:
    """Install ``hook`` to run after every future registration.

    With ``replay=True`` (the default) the hook is also invoked once for
    every class already registered, in sorted-name order — so a derived
    registry (e.g. the windowed variants) is complete regardless of
    import order.  Installing the same hook twice is a no-op.
    """
    if hook in _HOOKS:
        return
    _HOOKS.append(hook)
    if replay:
        for name in sorted(_REGISTRY):
            hook(name, _REGISTRY[name])


def get_summary_class(name: str) -> Type[Summary]:
    """Look up a registered summary class by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SerializationError(
            f"unknown summary name {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def registered_names(kind: Optional[str] = None) -> list[str]:
    """Sorted list of registered summary names, optionally by *kind*.

    ``kind=None`` (the default) lists everything; ``kind="base"`` lists
    only directly implemented summaries; ``kind="windowed"`` lists only
    the auto-derived ``windowed.<name>`` variants (any class whose
    ``summary_kind`` attribute is ``"windowed"``).
    """
    if kind is None:
        return sorted(_REGISTRY)
    if kind not in ("base", "windowed"):
        raise ParameterError(
            f"unknown summary kind {kind!r}; choose 'base' or 'windowed'"
        )
    return sorted(
        name
        for name, cls in _REGISTRY.items()
        if getattr(cls, "summary_kind", "base") == kind
    )
