"""Name → summary-class registry.

Registered names give every summary a stable identifier used by the
serialization envelope (:mod:`repro.core.serialization`), the benchmark
harness tables, and the examples.  Registration is explicit via the
:func:`register_summary` decorator applied at class-definition time.
"""

from __future__ import annotations

from typing import Callable, Dict, Type, TypeVar

from .base import Summary
from .exceptions import SerializationError

__all__ = ["register_summary", "get_summary_class", "registered_names"]

_REGISTRY: Dict[str, Type[Summary]] = {}

S = TypeVar("S", bound=Type[Summary])


def register_summary(name: str) -> Callable[[S], S]:
    """Class decorator registering a summary under ``name``.

    The name must be unique across the library; re-registering the same
    class under the same name is a no-op (supports module reloads), but
    registering a *different* class under an existing name raises.
    """

    def decorator(cls: S) -> S:
        existing = _REGISTRY.get(name)
        if existing is not None and existing is not cls:
            raise ValueError(
                f"summary name {name!r} already registered to {existing.__name__}"
            )
        _REGISTRY[name] = cls
        cls.registry_name = name
        return cls

    return decorator


def get_summary_class(name: str) -> Type[Summary]:
    """Look up a registered summary class by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SerializationError(
            f"unknown summary name {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def registered_names() -> list[str]:
    """Sorted list of all registered summary names."""
    return sorted(_REGISTRY)
