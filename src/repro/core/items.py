"""Item normalization helpers.

Streams frequently arrive as ``numpy`` arrays, so summaries see
``numpy.int64``/``numpy.float64`` scalars.  Those hash and compare like
their Python counterparts (so the algorithms are unaffected), but they
are not JSON-serializable; :func:`plain` converts them at serialization
boundaries.
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = ["plain"]


def plain(item: Any) -> Any:
    """Convert numpy scalars to native Python values; pass others through."""
    if isinstance(item, np.generic):
        return item.item()
    return item
