"""Merge strategies, executed through the shared merge engine.

The paper's central claim is that its summaries keep their guarantees
under *any* merge sequence.  This module exposes the reduction
strategies used throughout the tests and benchmarks — but since the
engine refactor it no longer executes anything itself: each strategy is
a *plan compiler* (see :mod:`repro.engine.compilers`) and every merge
runs through :func:`repro.engine.execute_plan`, the same runner behind
the distributed simulator and the store's compaction:

- :func:`merge_chain` — the caterpillar/left-fold order, the worst case
  for non-mergeable summaries whose error grows per merge;
- :func:`merge_tree` — balanced binary reduction, the friendly case
  (all merges roughly equal weight);
- :func:`merge_random_tree` — a uniformly random binary merge tree, the
  "arbitrary sequence" the definition of mergeability quantifies over;
- :func:`merge_kway` — one s-way :meth:`~repro.core.base.Summary.merge_many`
  call (single combine pass, no intermediate compactions);
- :func:`merge_all` — strategy dispatcher over :data:`MERGE_STRATEGIES`.

All strategies mutate the *first* operand of every pairwise merge and
never touch later inputs more than once, mirroring how an in-network
aggregation consumes child summaries.  Callers that need the inputs
preserved should pass copies.  With a parallel executor the merges of
a tree level run in worker processes; the merged summaries then come
back as copies, so the caller's input objects are left untouched on
that path.

Optional knobs are validated against the strategy: ``rng`` belongs to
``"random"`` and ``executor`` to ``"tree"`` — passing either to a
strategy that cannot honor it raises
:class:`~repro.core.exceptions.ParameterError` (historically they were
silently dropped).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence

from ..engine.compilers import MERGE_STRATEGIES, MergeStrategy, fold_slots
from ..engine.executor import execute_plan
from .base import Summary
from .exceptions import MergeError, ParameterError
from .parallel import ExecutorLike
from .rng import RngLike

__all__ = [
    "merge_chain",
    "merge_tree",
    "merge_random_tree",
    "merge_kway",
    "merge_all",
    "MergeStrategy",
    "MERGE_STRATEGIES",
]


def _require_nonempty(summaries: Sequence[Summary]) -> None:
    if not summaries:
        raise MergeError("cannot merge an empty list of summaries")


@lru_cache(maxsize=256)
def _cached_fold_plan(strategy: str, count: int):
    """Deterministic fold plans depend only on (strategy, count)."""
    return MERGE_STRATEGIES[strategy].compile(fold_slots(count), None)


def _run_fold(
    strategy: str,
    summaries: Sequence[Summary],
    rng: RngLike = None,
    executor: ExecutorLike = None,
) -> Summary:
    """Compile the strategy over the summaries and execute the plan."""
    _require_nonempty(summaries)
    slots = fold_slots(len(summaries))
    descriptor = MERGE_STRATEGIES[strategy]
    if descriptor.uses_rng:
        plan = descriptor.compile(slots, rng)
    else:
        # plans are immutable programs: reuse the compiled shape
        plan = _cached_fold_plan(strategy, len(summaries))
    # the fold result is the merged summary alone; skip the report's
    # size/coverage accounting on this hot path
    result = execute_plan(
        plan, dict(zip(slots, summaries)), executor=executor, accounting=False
    )
    return result.value


def merge_chain(summaries: Sequence[Summary]) -> Summary:
    """Left-fold merge: ``((s0 ⊎ s1) ⊎ s2) ⊎ ...``.

    Produces a maximally unbalanced (depth ``m-1``) merge tree — the
    adversarial shape for summaries that are only "one-way" mergeable.
    """
    return _run_fold("chain", summaries)


def merge_tree(
    summaries: Sequence[Summary], executor: ExecutorLike = None
) -> Summary:
    """Balanced binary reduction (depth ``ceil(log2 m)``).

    Every merge combines summaries of (nearly) equal total weight when
    the inputs have equal weight — the "equal-weight merge" model of
    paper Section 3.1.  With an ``executor`` the pairs of each level are
    merged concurrently (they are independent); results are identical
    for any worker count because each pair's merge sees only its own
    two operands.
    """
    return _run_fold("tree", summaries, executor=executor)


def merge_random_tree(summaries: Sequence[Summary], rng: RngLike = None) -> Summary:
    """Merge along a uniformly random binary tree.

    Repeatedly picks two distinct surviving summaries at random and
    merges them, realizing an arbitrary merge sequence.  Deterministic
    under a fixed ``rng`` seed (the randomness is consumed at plan
    compile time; execution replays the realized tree).
    """
    return _run_fold("random", summaries, rng=rng)


def merge_kway(summaries: Sequence[Summary]) -> Summary:
    """One s-way combine: ``summaries[0].merge_many(summaries[1:])``.

    Summaries with a vectorized ``_merge_many_same_type`` pay one table
    sum / register max / compaction cascade for the whole fan-in
    instead of ``s - 1`` sequential merges.
    """
    return _run_fold("kway", summaries)


def merge_all(
    summaries: Sequence[Summary],
    strategy: str = "tree",
    rng: RngLike = None,
    executor: ExecutorLike = None,
) -> Summary:
    """Merge ``summaries`` with the named strategy.

    ``strategy`` is one of :data:`MERGE_STRATEGIES` (``"chain"``,
    ``"tree"``, ``"random"``, ``"kway"``).  ``rng`` is honored only by
    ``"random"`` and ``executor`` (an int worker count or a
    :class:`~repro.core.parallel.ParallelExecutor`) only by ``"tree"``;
    passing a knob the strategy cannot honor raises
    :class:`~repro.core.exceptions.ParameterError` rather than silently
    ignoring it.
    """
    try:
        descriptor = MERGE_STRATEGIES[strategy]
    except KeyError:
        raise ParameterError(
            f"unknown merge strategy {strategy!r}; choose from {sorted(MERGE_STRATEGIES)}"
        ) from None
    if rng is not None and not descriptor.uses_rng:
        raise ParameterError(
            f"strategy {strategy!r} does not use rng; only "
            f"{sorted(n for n, s in MERGE_STRATEGIES.items() if s.uses_rng)} do"
        )
    if executor is not None and not descriptor.supports_executor:
        raise ParameterError(
            f"strategy {strategy!r} cannot run on an executor; only "
            f"{sorted(n for n, s in MERGE_STRATEGIES.items() if s.supports_executor)} "
            f"parallelize"
        )
    return _run_fold(strategy, summaries, rng=rng, executor=executor)
