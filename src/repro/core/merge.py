"""Generic merge executors.

The paper's central claim is that its summaries keep their guarantees
under *any* merge sequence.  This module provides the reduction
strategies used throughout the tests and benchmarks to realize those
sequences over a list of summaries:

- :func:`merge_chain` — the caterpillar/left-fold order, the worst case
  for non-mergeable summaries whose error grows per merge;
- :func:`merge_tree` — balanced binary reduction, the friendly case
  (all merges roughly equal weight);
- :func:`merge_random_tree` — a uniformly random binary merge tree, the
  "arbitrary sequence" the definition of mergeability quantifies over;
- :func:`merge_kway` — one s-way :meth:`~repro.core.base.Summary.merge_many`
  call (single combine pass, no intermediate compactions);
- :func:`merge_all` — strategy dispatcher.

All executors mutate the *first* operand of every pairwise merge and
never touch later inputs more than once, mirroring how an in-network
aggregation consumes child summaries.  Callers that need the inputs
preserved should pass copies.  With a parallel executor the merges of
a tree level run in worker processes; the merged summaries then come
back as copies, so the caller's input objects are left untouched on
that path.
"""

from __future__ import annotations

from typing import List, Sequence

from .base import Summary
from .exceptions import MergeError, ParameterError
from .parallel import ExecutorLike, resolve_executor
from .rng import RngLike, resolve_rng

__all__ = [
    "merge_chain",
    "merge_tree",
    "merge_random_tree",
    "merge_kway",
    "merge_all",
    "MERGE_STRATEGIES",
]


def _require_nonempty(summaries: Sequence[Summary]) -> None:
    if not summaries:
        raise MergeError("cannot merge an empty list of summaries")


def merge_chain(summaries: Sequence[Summary]) -> Summary:
    """Left-fold merge: ``((s0 ⊎ s1) ⊎ s2) ⊎ ...``.

    Produces a maximally unbalanced (depth ``m-1``) merge tree — the
    adversarial shape for summaries that are only "one-way" mergeable.
    """
    _require_nonempty(summaries)
    acc = summaries[0]
    for s in summaries[1:]:
        acc = acc.merge(s)
    return acc


def _merge_pair(left: Summary, right: Summary) -> Summary:
    return left.merge(right)


def merge_tree(
    summaries: Sequence[Summary], executor: ExecutorLike = None
) -> Summary:
    """Balanced binary reduction (depth ``ceil(log2 m)``).

    Every merge combines summaries of (nearly) equal total weight when
    the inputs have equal weight — the "equal-weight merge" model of
    paper Section 3.1.  With an ``executor`` the pairs of each level are
    merged concurrently (they are independent); results are identical
    for any worker count because each pair's merge sees only its own
    two operands.
    """
    _require_nonempty(summaries)
    pool = resolve_executor(executor)
    level: List[Summary] = list(summaries)
    while len(level) > 1:
        pairs = [
            (level[i], level[i + 1]) for i in range(0, len(level) - 1, 2)
        ]
        if pool is not None:
            nxt = pool.map(_merge_pair, pairs)
        else:
            nxt = [left.merge(right) for left, right in pairs]
        if len(level) % 2 == 1:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def merge_random_tree(summaries: Sequence[Summary], rng: RngLike = None) -> Summary:
    """Merge along a uniformly random binary tree.

    Repeatedly picks two distinct surviving summaries at random and
    merges them, realizing an arbitrary merge sequence.  Deterministic
    under a fixed ``rng`` seed.
    """
    _require_nonempty(summaries)
    gen = resolve_rng(rng)
    pool: List[Summary] = list(summaries)
    while len(pool) > 1:
        i, j = gen.choice(len(pool), size=2, replace=False)
        i, j = int(i), int(j)
        if i > j:
            i, j = j, i
        right = pool.pop(j)
        pool[i] = pool[i].merge(right)
    return pool[0]


def merge_kway(summaries: Sequence[Summary]) -> Summary:
    """One s-way combine: ``summaries[0].merge_many(summaries[1:])``.

    Summaries with a vectorized ``_merge_many_same_type`` pay one table
    sum / register max / compaction cascade for the whole fan-in
    instead of ``s - 1`` sequential merges.
    """
    _require_nonempty(summaries)
    return summaries[0].merge_many(summaries[1:])


MERGE_STRATEGIES = {
    "chain": merge_chain,
    "tree": merge_tree,
    "random": merge_random_tree,
    "kway": merge_kway,
}


def merge_all(
    summaries: Sequence[Summary],
    strategy: str = "tree",
    rng: RngLike = None,
    executor: ExecutorLike = None,
) -> Summary:
    """Merge ``summaries`` with the named strategy.

    ``strategy`` is one of ``"chain"``, ``"tree"``, ``"random"``,
    ``"kway"``; ``rng`` only affects ``"random"``; ``executor`` (an int
    worker count or a :class:`~repro.core.parallel.ParallelExecutor`)
    only affects ``"tree"``, whose per-level pairs are independent.
    """
    try:
        fn = MERGE_STRATEGIES[strategy]
    except KeyError:
        raise ParameterError(
            f"unknown merge strategy {strategy!r}; choose from {sorted(MERGE_STRATEGIES)}"
        ) from None
    if strategy == "random":
        return fn(summaries, rng)
    if strategy == "tree":
        return fn(summaries, executor)
    return fn(summaries)
