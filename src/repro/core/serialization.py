"""JSON round-trip for any registered summary.

Summaries travel between nodes in a distributed aggregation: a sensor
serializes its local summary, ships it up the tree, and the parent
deserializes and merges.  The envelope written here is what the
:mod:`repro.distributed` simulator (and a real deployment) would put on
the wire.

Envelope format::

    {"format": 1, "type": "<registry name>", "state": {...to_dict()...}}
"""

from __future__ import annotations

import json
from typing import Any, Dict

from .base import Summary
from .exceptions import SerializationError
from .registry import get_summary_class

__all__ = ["dumps", "loads", "to_envelope", "from_envelope"]

_FORMAT_VERSION = 1


def to_envelope(summary: Summary) -> Dict[str, Any]:
    """Wrap a summary's state in the versioned transport envelope."""
    name = getattr(summary, "registry_name", None)
    if name is None:
        raise SerializationError(
            f"{type(summary).__name__} is not registered; apply "
            "@register_summary before serializing"
        )
    return {"format": _FORMAT_VERSION, "type": name, "state": summary.to_dict()}


def from_envelope(envelope: Dict[str, Any]) -> Summary:
    """Reconstruct a summary from :func:`to_envelope` output."""
    try:
        version = envelope["format"]
        name = envelope["type"]
        state = envelope["state"]
    except (TypeError, KeyError) as exc:
        raise SerializationError(f"malformed summary envelope: {exc!r}") from exc
    if version != _FORMAT_VERSION:
        raise SerializationError(
            f"unsupported envelope format {version!r} (supported: {_FORMAT_VERSION})"
        )
    cls = get_summary_class(name)
    return cls.from_dict(state)


def dumps(summary: Summary) -> str:
    """Serialize ``summary`` to a JSON string."""
    try:
        return json.dumps(to_envelope(summary), separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise SerializationError(
            f"summary state of {type(summary).__name__} is not JSON-compatible: {exc}"
        ) from exc


def loads(payload: str) -> Summary:
    """Deserialize a summary from :func:`dumps` output."""
    try:
        envelope = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON payload: {exc}") from exc
    return from_envelope(envelope)
