"""JSON round-trip for any registered summary (codec-stack front end).

Summaries travel between nodes in a distributed aggregation: a sensor
serializes its local summary, ships it up the tree, and the parent
deserializes and merges.  Historically this module *was* the wire
format; it is now a thin compatibility front end over the versioned
codec stack in :mod:`repro.core.codecs`, which owns the JSON envelope
(``json.v1`` legacy, ``json.v2`` with CRC32 checksum) and the compact
``binary.v1`` codec shared by the wire and the segment store's disk
format.

:func:`dumps`/:func:`loads` keep their original JSON-text contract
(``dumps`` emits the default ``json.v2`` envelope; ``loads`` accepts
every registered codec's payloads, including pre-refactor format-1 and
format-2 envelopes), so existing callers and persisted summaries keep
working unchanged.
"""

from __future__ import annotations

from .base import Summary
from .codecs import (
    DEFAULT_CODEC,
    decode_summary,
    encode_summary,
    from_envelope,
    state_checksum,
    to_envelope,
)

__all__ = ["dumps", "loads", "to_envelope", "from_envelope", "state_checksum"]


def dumps(summary: Summary, codec: str = DEFAULT_CODEC):
    """Serialize ``summary`` with the named codec (default: ``json.v2``).

    Returns ``str`` for the JSON codecs and ``bytes`` for binary ones.
    """
    return encode_summary(summary, codec)


def loads(payload) -> Summary:
    """Deserialize a payload produced by any registered codec."""
    return decode_summary(payload)
