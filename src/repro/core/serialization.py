"""JSON round-trip for any registered summary.

Summaries travel between nodes in a distributed aggregation: a sensor
serializes its local summary, ships it up the tree, and the parent
deserializes and merges.  The envelope written here is what the
:mod:`repro.distributed` simulator (and a real deployment) would put on
the wire.

Envelope format::

    {"format": 2, "type": "<registry name>", "state": {...to_dict()...},
     "checksum": <CRC32 of the canonical state JSON>}

The checksum gives end-to-end corruption detection: a parent rejects a
payload whose state no longer matches its CRC32 instead of merging
garbage.  Version-1 envelopes (no checksum) are still accepted, so
summaries persisted by older builds keep loading; a version-2 envelope
whose checksum is absent is likewise accepted (the field is an
integrity upgrade, not a gate).
"""

from __future__ import annotations

import json
import zlib
from typing import Any, Dict

from .base import Summary
from .exceptions import SerializationError
from .registry import get_summary_class

__all__ = ["dumps", "loads", "to_envelope", "from_envelope", "state_checksum"]

_FORMAT_VERSION = 2
_ACCEPTED_VERSIONS = (1, 2)


def state_checksum(state: Dict[str, Any]) -> int:
    """CRC32 over the canonical (sorted-key, compact) JSON of ``state``."""
    canonical = json.dumps(state, separators=(",", ":"), sort_keys=True)
    return zlib.crc32(canonical.encode("utf-8")) & 0xFFFFFFFF


def to_envelope(summary: Summary) -> Dict[str, Any]:
    """Wrap a summary's state in the versioned transport envelope."""
    name = getattr(summary, "registry_name", None)
    if name is None:
        raise SerializationError(
            f"{type(summary).__name__} is not registered; apply "
            "@register_summary before serializing"
        )
    state = summary.to_dict()
    return {
        "format": _FORMAT_VERSION,
        "type": name,
        "state": state,
        "checksum": state_checksum(state),
    }


def from_envelope(envelope: Dict[str, Any]) -> Summary:
    """Reconstruct a summary from :func:`to_envelope` output."""
    try:
        version = envelope["format"]
        name = envelope["type"]
        state = envelope["state"]
    except (TypeError, KeyError) as exc:
        raise SerializationError(f"malformed summary envelope: {exc!r}") from exc
    if version not in _ACCEPTED_VERSIONS:
        raise SerializationError(
            f"unsupported envelope format {version!r} "
            f"(supported: {', '.join(map(str, _ACCEPTED_VERSIONS))})"
        )
    if "checksum" in envelope:
        expected = envelope["checksum"]
        actual = state_checksum(state)
        if actual != expected:
            raise SerializationError(
                f"payload checksum mismatch (stored {expected!r}, computed "
                f"{actual}): summary state corrupted in transit or at rest"
            )
    cls = get_summary_class(name)
    return cls.from_dict(state)


def dumps(summary: Summary) -> str:
    """Serialize ``summary`` to a JSON string."""
    try:
        return json.dumps(to_envelope(summary), separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise SerializationError(
            f"summary state of {type(summary).__name__} is not JSON-compatible: {exc}"
        ) from exc


def loads(payload: str) -> Summary:
    """Deserialize a summary from :func:`dumps` output."""
    try:
        envelope = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON payload: {exc}") from exc
    return from_envelope(envelope)
