"""Exception hierarchy for the :mod:`repro` library.

All errors raised deliberately by the library derive from
:class:`ReproError`, so callers can catch a single base class.  Internal
assertion failures (bugs) intentionally do *not* use this hierarchy.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ParameterError",
    "MergeError",
    "QueryError",
    "SerializationError",
    "EmptySummaryError",
]


class ReproError(Exception):
    """Base class of every error deliberately raised by :mod:`repro`."""


class ParameterError(ReproError, ValueError):
    """A constructor or method received an invalid parameter value.

    Examples: non-positive ``k`` for a counter summary, ``epsilon``
    outside ``(0, 1)``, a quantile ``q`` outside ``[0, 1]``.
    """


class MergeError(ReproError):
    """Two summaries cannot be merged.

    Raised when the operands are of different types or were configured
    with incompatible parameters (different ``k``, ``epsilon``, range
    space, hash seeds, ...).  Mergeability in the paper's sense requires
    identically parameterized summaries.
    """


class QueryError(ReproError):
    """A query cannot be answered by this summary in its current state."""


class SerializationError(ReproError):
    """A summary payload could not be serialized or deserialized."""


class EmptySummaryError(QueryError):
    """A query that needs at least one item was issued on an empty summary."""
