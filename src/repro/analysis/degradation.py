"""Graceful-degradation accounting for faulty aggregations.

When shards are permanently lost (crashed nodes, exhausted retries),
the root summary is still a *valid* mergeable summary — of the data
that arrived.  The honest report is therefore two-part:

- over the **delivered** records the full paper guarantee holds
  unchanged (``eps * delivered_n``), because exactly-once merging makes
  the root identical to a fault-free aggregation of the surviving
  shards;
- versus the **full** dataset the best possible claim adds the entire
  lost mass, since every occurrence of an item (or every rank) in a
  lost shard may be missing: ``eps * delivered_n + lost_n``.

These helpers turn an
:class:`~repro.distributed.simulator.AggregationResult` into that
two-part statement so callers never mistake a partial answer for a
complete one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.exceptions import ParameterError

__all__ = [
    "DegradationReport",
    "degradation_report",
    "degraded_frequency_bound",
    "degraded_rank_bound",
]


@dataclass(frozen=True)
class DegradationReport:
    """Coverage accounting plus effective error bounds after data loss."""

    total_records: int
    delivered_records: int
    lost_records: int
    #: delivered_records / total_records
    coverage: float
    delivered_leaves: int
    lost_leaves: List[int]

    @property
    def complete(self) -> bool:
        return self.lost_records == 0

    def delivered_error_bound(self, epsilon: float) -> float:
        """Absolute error bound vs the *delivered* data: ``eps * delivered_n``."""
        _check_epsilon(epsilon)
        return epsilon * self.delivered_records

    def effective_error_bound(self, epsilon: float) -> float:
        """Worst-case absolute error vs the *full* dataset.

        The guarantee over delivered data plus the whole lost mass (a
        lost shard can hide up to all of its occurrences of any item,
        or shift any rank by its full size).
        """
        _check_epsilon(epsilon)
        return epsilon * self.delivered_records + self.lost_records

    def effective_epsilon(self, epsilon: float) -> float:
        """:meth:`effective_error_bound` normalized by the full ``n``."""
        if self.total_records == 0:
            return 0.0
        return self.effective_error_bound(epsilon) / self.total_records


def _check_epsilon(epsilon: float) -> None:
    if not 0.0 < epsilon < 1.0:
        raise ParameterError(f"epsilon must be in (0, 1), got {epsilon!r}")


def degradation_report(result) -> DegradationReport:
    """Build a :class:`DegradationReport` from an ``AggregationResult``."""
    total = sum(result.shard_sizes) if result.shard_sizes else result.delivered_records
    return DegradationReport(
        total_records=total,
        delivered_records=result.delivered_records,
        lost_records=total - result.delivered_records,
        coverage=result.coverage,
        delivered_leaves=len(result.delivered_leaves),
        lost_leaves=list(result.lost_leaves),
    )


def degraded_frequency_bound(k: int, delivered_records: int, lost_records: int) -> float:
    """MG/SS per-item error vs full-data truth after loss.

    ``delivered_n / (k+1)`` from the paper's merge theorem over the
    surviving data, plus the lost mass (an item's occurrences in lost
    shards are simply absent).
    """
    if k <= 0:
        raise ParameterError(f"k must be positive, got {k!r}")
    if delivered_records < 0 or lost_records < 0:
        raise ParameterError("record counts must be non-negative")
    return delivered_records / (k + 1) + lost_records


def degraded_rank_bound(
    epsilon: float, delivered_records: int, lost_records: int
) -> float:
    """Quantile rank error vs full-data truth after loss:
    ``eps * delivered_n + lost_n``."""
    _check_epsilon(epsilon)
    if delivered_records < 0 or lost_records < 0:
        raise ParameterError("record counts must be non-negative")
    return epsilon * delivered_records + lost_records
