"""Error metrics, theoretical bounds and table emitters."""

from .bounds import (
    eps_approx_size_1d,
    eps_kernel_size_2d,
    mg_error_bound,
    mg_size_bound,
    quantile_equal_weight_size,
    quantile_hybrid_size,
    quantile_mergeable_size,
    sample_size_bound,
    ss_error_bound,
    ss_size_bound,
)
from .degradation import (
    DegradationReport,
    degradation_report,
    degraded_frequency_bound,
    degraded_rank_bound,
)
from .error import (
    FrequencyErrorReport,
    RankErrorReport,
    frequency_errors,
    quantile_value_errors,
    rank_errors,
)
from .tables import format_table, print_table, to_csv
from .validation import TrialStats, failure_rate, run_trials

__all__ = [
    "frequency_errors",
    "FrequencyErrorReport",
    "rank_errors",
    "quantile_value_errors",
    "RankErrorReport",
    "mg_error_bound",
    "ss_error_bound",
    "mg_size_bound",
    "ss_size_bound",
    "quantile_equal_weight_size",
    "quantile_mergeable_size",
    "quantile_hybrid_size",
    "sample_size_bound",
    "eps_approx_size_1d",
    "eps_kernel_size_2d",
    "format_table",
    "print_table",
    "to_csv",
    "TrialStats",
    "run_trials",
    "failure_rate",
    "DegradationReport",
    "degradation_report",
    "degraded_frequency_bound",
    "degraded_rank_bound",
]
