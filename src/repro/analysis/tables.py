"""ASCII / CSV table emitters for the benchmark harness.

Every experiment prints a paper-style table: a caption naming the claim
it validates, aligned columns, and (optionally) a CSV copy for further
processing.  Kept deliberately dependency-free (no tabulate/rich).
"""

from __future__ import annotations

import io
from typing import Any, List, Sequence

__all__ = ["format_table", "print_table", "to_csv"]


def _render_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    caption: str = "",
) -> str:
    """Render an aligned ASCII table with an optional caption line."""
    rendered: List[List[str]] = [[_render_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but the table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    out = io.StringIO()
    if caption:
        out.write(caption + "\n")
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    out.write(line.rstrip() + "\n")
    out.write("  ".join("-" * w for w in widths) + "\n")
    for row in rendered:
        out.write(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
            + "\n"
        )
    return out.getvalue()


def print_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    caption: str = "",
) -> None:
    """Print :func:`format_table` output."""
    print(format_table(headers, rows, caption=caption))


def to_csv(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """CSV rendering (comma-separated, newline-terminated rows)."""
    out = io.StringIO()
    out.write(",".join(str(h) for h in headers) + "\n")
    for row in rows:
        out.write(",".join(_render_cell(c) for c in row) + "\n")
    return out.getvalue()
