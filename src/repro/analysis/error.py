"""Error metrics: the quantities the paper's theorems bound.

Frequency summaries are scored by per-item absolute estimation error
against exact counts; quantile summaries by rank error at probe values;
range-space approximations by range-counting error; kernels by relative
directional-width error.  Every metric returns both the worst case (what
the theorems bound) and summary statistics (what practitioners care
about).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Sequence

import numpy as np

from ..core.exceptions import ParameterError

__all__ = [
    "FrequencyErrorReport",
    "frequency_errors",
    "RankErrorReport",
    "rank_errors",
    "quantile_value_errors",
]


@dataclass(frozen=True)
class FrequencyErrorReport:
    """Per-item estimation error of a frequency summary vs ground truth."""

    n: int
    items_checked: int
    max_error: int
    mean_error: float
    total_error: int
    #: fraction of items with any error at all
    error_rate: float

    def normalized_max(self) -> float:
        """Worst error as a fraction of n (compare against eps)."""
        return self.max_error / self.n if self.n else 0.0


def frequency_errors(summary: Any, truth: Dict[Any, int]) -> FrequencyErrorReport:
    """Score ``summary.estimate`` against exact ``truth`` counts.

    Evaluates every item in the ground truth plus every monitored item,
    so both under-estimation (MG) and over-estimation (SS, CountMin)
    are captured; errors are absolute values.
    """
    if not truth:
        raise ParameterError("ground truth is empty")
    items = set(truth)
    counters = getattr(summary, "counters", None)
    if callable(counters):
        items |= set(counters())
    errors = [abs(summary.estimate(item) - truth.get(item, 0)) for item in items]
    errors_arr = np.array(errors, dtype=np.int64)
    return FrequencyErrorReport(
        n=summary.n,
        items_checked=len(items),
        max_error=int(errors_arr.max()),
        mean_error=float(errors_arr.mean()),
        total_error=int(errors_arr.sum()),
        error_rate=float((errors_arr > 0).mean()),
    )


@dataclass(frozen=True)
class RankErrorReport:
    """Rank error of a quantile summary at a set of probe values."""

    n: int
    probes: int
    max_error: float
    mean_error: float
    #: fraction-of-n form of max_error (compare against eps)
    max_normalized: float
    mean_normalized: float


def rank_errors(
    summary: Any, data: np.ndarray, probes: Sequence[float]
) -> RankErrorReport:
    """Rank error of ``summary`` vs exact ranks over ``data`` at ``probes``."""
    data_sorted = np.sort(np.asarray(data, dtype=np.float64))
    n = len(data_sorted)
    if n == 0:
        raise ParameterError("data is empty")
    errs = []
    for x in probes:
        true_rank = float(np.searchsorted(data_sorted, float(x), side="right"))
        errs.append(abs(summary.rank(x) - true_rank))
    errs_arr = np.array(errs, dtype=np.float64)
    return RankErrorReport(
        n=n,
        probes=len(errs),
        max_error=float(errs_arr.max()),
        mean_error=float(errs_arr.mean()),
        max_normalized=float(errs_arr.max() / n),
        mean_normalized=float(errs_arr.mean() / n),
    )


def quantile_value_errors(
    summary: Any, data: np.ndarray, qs: Iterable[float]
) -> RankErrorReport:
    """Rank error of the *values returned by* ``summary.quantile``.

    For each ``q`` the summary's answer is mapped back to its true rank
    in ``data``; the error is ``|true_rank - q * n|`` (the guarantee a
    quantile summary makes about its outputs).
    """
    data_sorted = np.sort(np.asarray(data, dtype=np.float64))
    n = len(data_sorted)
    if n == 0:
        raise ParameterError("data is empty")
    errs = []
    qs = list(qs)
    for q in qs:
        value = summary.quantile(q)
        # the returned value occupies the rank interval [low, high]
        # (duplicates collapse); error is the distance to the target rank
        low = float(np.searchsorted(data_sorted, float(value), side="left")) + 1
        high = float(np.searchsorted(data_sorted, float(value), side="right"))
        target = q * n
        errs.append(max(0.0, low - target, target - high))
    errs_arr = np.array(errs, dtype=np.float64)
    return RankErrorReport(
        n=n,
        probes=len(errs),
        max_error=float(errs_arr.max()),
        mean_error=float(errs_arr.mean()),
        max_normalized=float(errs_arr.max() / n),
        mean_normalized=float(errs_arr.mean() / n),
    )
