"""Monte-Carlo validation of probabilistic guarantees.

The randomized summaries (Sections 3-4) promise error ``<= eps * n``
*with probability* ``1 - delta``.  A single seeded run cannot validate
that; this module runs many independent trials and reports the
empirical error distribution and failure rate, which the tests and
benchmark E18 compare against ``delta``.

The harness is deliberately generic: a trial is any seeded callable
returning a scalar "error" — so the same machinery validates quantile
rank error, range-count error, distinct-count error, and anything a
future summary adds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..core.exceptions import ParameterError

__all__ = ["TrialStats", "run_trials", "failure_rate"]


@dataclass(frozen=True)
class TrialStats:
    """Empirical distribution of a per-trial error metric."""

    trials: int
    mean: float
    std: float
    minimum: float
    maximum: float
    #: empirical quantiles of the error: (p50, p90, p99)
    p50: float
    p90: float
    p99: float
    #: fraction of trials whose error exceeded the threshold (if given)
    exceed_rate: float
    threshold: float

    def within(self, delta: float) -> bool:
        """True when the empirical failure rate is at most ``delta``
        (with one-trial slack for small sample counts)."""
        slack = 1.0 / self.trials
        return self.exceed_rate <= delta + slack


def run_trials(
    trial: Callable[[int], float],
    seeds: Sequence[int],
    threshold: float = float("inf"),
) -> TrialStats:
    """Run ``trial(seed)`` for every seed; summarize the returned errors.

    ``threshold`` is the guarantee being validated (e.g. ``eps * n``);
    the returned stats include the fraction of trials exceeding it.
    """
    if not seeds:
        raise ParameterError("run_trials needs at least one seed")
    errors = np.array([float(trial(int(seed))) for seed in seeds])
    return TrialStats(
        trials=len(errors),
        mean=float(errors.mean()),
        std=float(errors.std()),
        minimum=float(errors.min()),
        maximum=float(errors.max()),
        p50=float(np.quantile(errors, 0.50)),
        p90=float(np.quantile(errors, 0.90)),
        p99=float(np.quantile(errors, 0.99)),
        exceed_rate=float((errors > threshold).mean()),
        threshold=float(threshold),
    )


def failure_rate(
    trial: Callable[[int], float], seeds: Sequence[int], threshold: float
) -> float:
    """Shorthand: fraction of trials whose error exceeds ``threshold``."""
    return run_trials(trial, seeds, threshold).exceed_rate
