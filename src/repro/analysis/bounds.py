"""Closed-form theoretical bounds from the paper.

Each function returns the guarantee the corresponding theorem promises
for given parameters; tests assert measured errors stay below them and
the benchmark tables print them next to the measurements ("paper line"
vs "measured line").
"""

from __future__ import annotations

import math

from ..core.exceptions import ParameterError

__all__ = [
    "mg_error_bound",
    "ss_error_bound",
    "mg_size_bound",
    "ss_size_bound",
    "quantile_equal_weight_size",
    "quantile_mergeable_size",
    "quantile_hybrid_size",
    "sample_size_bound",
    "eps_approx_size_1d",
    "eps_kernel_size_2d",
]


def _check_positive(name: str, value: float) -> None:
    if value <= 0:
        raise ParameterError(f"{name} must be positive, got {value!r}")


def mg_error_bound(k: int, n: int) -> float:
    """Misra-Gries per-item error after any merge sequence: ``n / (k+1)``."""
    _check_positive("k", k)
    return n / (k + 1)


def ss_error_bound(k: int, n: int) -> float:
    """SpaceSaving per-item error after any merge sequence: ``n / k``."""
    _check_positive("k", k)
    return n / k


def mg_size_bound(epsilon: float) -> int:
    """Counters needed by MG for error ``eps * n``: ``ceil(1/eps)``."""
    _check_positive("epsilon", epsilon)
    return math.ceil(1.0 / epsilon)


def ss_size_bound(epsilon: float) -> int:
    """Counters needed by SS for error ``eps * n``: ``ceil(1/eps)``."""
    _check_positive("epsilon", epsilon)
    return math.ceil(1.0 / epsilon)


def quantile_equal_weight_size(epsilon: float, delta: float) -> int:
    """Section 3.1 summary size ``O((1/eps) sqrt(log(1/delta)))``."""
    _check_positive("epsilon", epsilon)
    _check_positive("delta", delta)
    return math.ceil((1.0 / epsilon) * math.sqrt(max(1.0, math.log2(1.0 / delta))))


def quantile_mergeable_size(epsilon: float, delta: float, n: int) -> int:
    """Section 3.2 size ``O((1/eps) log(eps n) sqrt(log(1/delta)))``."""
    _check_positive("epsilon", epsilon)
    _check_positive("delta", delta)
    _check_positive("n", n)
    levels = max(1.0, math.log2(max(2.0, epsilon * n)))
    return math.ceil(quantile_equal_weight_size(epsilon, delta) * levels)


def quantile_hybrid_size(epsilon: float) -> int:
    """Section 3.3 size ``O((1/eps) log^1.5(1/eps))`` — n-independent."""
    _check_positive("epsilon", epsilon)
    inv = 1.0 / epsilon
    return math.ceil(inv * max(1.0, math.log2(inv)) ** 1.5)


def sample_size_bound(epsilon: float) -> int:
    """Folklore random-sample size for rank error ``eps * n``: ``1/eps^2``."""
    _check_positive("epsilon", epsilon)
    return math.ceil(1.0 / (epsilon * epsilon))


def eps_approx_size_1d(epsilon: float) -> int:
    """eps-approximation size for 1-D intervals: ``O(1/eps)``."""
    _check_positive("epsilon", epsilon)
    return math.ceil(1.0 / epsilon)


def eps_kernel_size_2d(epsilon: float) -> int:
    """2-D eps-kernel size ``O(1/sqrt(eps))`` (paper Section 5, d=2)."""
    _check_positive("epsilon", epsilon)
    return math.ceil(1.0 / math.sqrt(epsilon))
