"""Sliding-window heavy hitters via time-bucketed Misra-Gries summaries.

The second future-work direction in the paper's conclusion is sliding
windows.  Exact sliding-window mergeability is impossible with small
space (expired items must be *subtracted*, and MG-style summaries only
add), so this module implements the standard practical compromise used
by production systems (time-bucketed roll-ups, Druid/M3-style):

- time is divided into fixed-width *buckets*; each live bucket holds an
  independent MG(k) summary of the items that arrived in it;
- at most ``num_buckets`` recent buckets are retained, bounding both
  space (``num_buckets * k`` counters) and the queryable horizon;
- a window query merges the summaries of the covered buckets — since
  per-bucket MG summaries are fully mergeable, the merged result
  carries the exact MG guarantee over the *covered bucket span*;
- two windowed summaries merge bucket-by-bucket (aligned by absolute
  bucket index), so the structure is itself mergeable.

The only approximation versus a true sliding window is *bucket
granularity*: a query window is rounded outward to whole buckets, so
up to one bucket's worth of stale items may be included.  That slack is
reported explicitly by :meth:`query` so callers can account for it.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional

from ..core.base import Summary, normalize_batch
from ..core.exceptions import ParameterError, QueryError
from ..core.registry import register_summary
from ..frequency.misra_gries import MisraGries

__all__ = ["WindowedMisraGries", "WindowQueryResult"]


class WindowQueryResult:
    """Outcome of a sliding-window heavy-hitter query."""

    def __init__(
        self,
        summary: MisraGries,
        buckets_covered: int,
        window_start: float,
        window_end: float,
    ) -> None:
        #: merged MG summary over the covered buckets
        self.summary = summary
        self.buckets_covered = buckets_covered
        #: actual (bucket-aligned) span the answer covers
        self.window_start = window_start
        self.window_end = window_end

    def heavy_hitters(self, phi: float) -> Dict[Any, int]:
        """phi-heavy hitters over the covered span (no false negatives)."""
        return self.summary.heavy_hitters(phi)

    def estimate(self, item: Any) -> int:
        return self.summary.estimate(item)

    @property
    def n(self) -> int:
        """Items in the covered span."""
        return self.summary.n

    @property
    def error_bound(self) -> float:
        return self.summary.error_bound


@register_summary("windowed_misra_gries")
class WindowedMisraGries(Summary):
    """Bucketed sliding-window Misra-Gries.

    Parameters
    ----------
    k:
        Counters per bucket.
    bucket_width:
        Time width of one bucket (same unit as timestamps).
    num_buckets:
        Retained horizon, in buckets; older buckets are evicted.
    """

    def __init__(self, k: int, bucket_width: float, num_buckets: int) -> None:
        super().__init__()
        if not isinstance(k, int) or k < 1:
            raise ParameterError(f"k must be a positive integer, got {k!r}")
        if bucket_width <= 0:
            raise ParameterError(f"bucket_width must be positive, got {bucket_width!r}")
        if num_buckets < 1:
            raise ParameterError(f"num_buckets must be >= 1, got {num_buckets!r}")
        self.k = k
        self.bucket_width = float(bucket_width)
        self.num_buckets = int(num_buckets)
        # absolute bucket index -> MG summary
        self._buckets: Dict[int, MisraGries] = {}
        # highest bucket index ever evicted (None until first eviction);
        # distinguishes "expired data" from "before any data arrived"
        self._evicted_through: Optional[int] = None

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def _bucket_index(self, timestamp: float) -> int:
        return int(math.floor(timestamp / self.bucket_width))

    def observe(self, item: Any, timestamp: float, weight: int = 1) -> None:
        """Record ``weight`` occurrences of ``item`` at ``timestamp``."""
        if weight <= 0:
            raise ParameterError(f"weight must be positive, got {weight!r}")
        index = self._bucket_index(timestamp)
        bucket = self._buckets.get(index)
        if bucket is None:
            bucket = self._buckets[index] = MisraGries(self.k)
        bucket.update(item, weight)
        self._n += weight
        self._evict_expired()

    def update(self, item: Any, weight: int = 1) -> None:
        """Timestamp-less update lands in the most recent bucket."""
        latest = max(self._buckets, default=0)
        self.observe(item, latest * self.bucket_width, weight)

    def update_batch(
        self,
        items: Any,
        weights: Optional[Any] = None,
    ) -> None:
        """Batch ingestion into the most recent bucket.

        Every timestamp-less update lands in the latest bucket, and
        observing into the latest bucket never changes which bucket is
        latest — so the whole batch delegates to that single bucket's
        Misra-Gries batch fast path (Counter pre-aggregation) instead
        of paying the bucket lookup and eviction scan per item.
        """
        items, weights, total = normalize_batch(items, weights)
        if len(items) == 0:
            return
        latest = max(self._buckets, default=0)
        bucket = self._buckets.get(latest)
        if bucket is None:
            bucket = self._buckets[latest] = MisraGries(self.k)
        bucket.update_batch(items, weights)
        self._n += total
        self._evict_expired()

    def _evict_expired(self) -> None:
        if not self._buckets:
            return
        horizon = max(self._buckets) - self.num_buckets + 1
        for index in [i for i in self._buckets if i < horizon]:
            self._n -= self._buckets[index].n
            del self._buckets[index]
            if self._evicted_through is None or index > self._evicted_through:
                self._evicted_through = index

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def horizon(self) -> float:
        """Queryable time span: ``num_buckets * bucket_width``."""
        return self.num_buckets * self.bucket_width

    def live_buckets(self) -> Dict[int, int]:
        """Bucket index -> item count (diagnostics)."""
        return {index: bucket.n for index, bucket in sorted(self._buckets.items())}

    def estimate(self, item: Any) -> int:
        """Lower-bound count of ``item`` across all live buckets.

        Sum of the per-bucket MG estimates: each underestimates by at
        most its bucket's ``n / (k + 1)``, so the total underestimate is
        at most ``n_live / (k + 1)`` over the retained horizon.
        """
        return sum(bucket.estimate(item) for bucket in self._buckets.values())

    def query(self, window_end: float, window_length: float) -> WindowQueryResult:
        """Heavy-hitter summary of ``[window_end - window_length, window_end]``.

        The window is rounded outward to whole buckets; the result
        reports the actual covered span.  Raises :class:`QueryError`
        when the requested window reaches past the retained horizon.
        """
        if window_length <= 0:
            raise ParameterError(
                f"window_length must be positive, got {window_length!r}"
            )
        if not self._buckets:
            raise QueryError("windowed summary holds no data")
        last_index = self._bucket_index(window_end)
        first_index = self._bucket_index(window_end - window_length)
        if self._evicted_through is not None and first_index <= self._evicted_through:
            raise QueryError(
                f"window reaches bucket {first_index} but buckets up to "
                f"{self._evicted_through} have expired (horizon {self.horizon})"
            )
        merged = MisraGries(self.k)
        covered = 0
        for index in range(first_index, last_index + 1):
            bucket = self._buckets.get(index)
            if bucket is not None:
                merged.merge(bucket)
                covered += 1
        return WindowQueryResult(
            summary=merged,
            buckets_covered=covered,
            window_start=first_index * self.bucket_width,
            window_end=(last_index + 1) * self.bucket_width,
        )

    def size(self) -> int:
        return sum(bucket.size() for bucket in self._buckets.values())

    # ------------------------------------------------------------------
    # Merge
    # ------------------------------------------------------------------

    def compatible_with(self, other: "WindowedMisraGries") -> Optional[str]:
        assert isinstance(other, WindowedMisraGries)
        mine = (self.k, self.bucket_width, self.num_buckets)
        theirs = (other.k, other.bucket_width, other.num_buckets)
        if mine != theirs:
            return f"window geometry mismatch: {mine} vs {theirs}"
        return None

    def _merge_same_type(self, other: "WindowedMisraGries") -> None:
        assert isinstance(other, WindowedMisraGries)
        for index, bucket in other._buckets.items():
            mine = self._buckets.get(index)
            if mine is None:
                clone = MisraGries.from_dict(bucket.to_dict())
                self._buckets[index] = clone
            else:
                mine.merge(bucket)
            self._n += bucket.n
        if other._evicted_through is not None and (
            self._evicted_through is None
            or other._evicted_through > self._evicted_through
        ):
            self._evicted_through = other._evicted_through
        self._evict_expired()

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "k": self.k,
            "bucket_width": self.bucket_width,
            "num_buckets": self.num_buckets,
            "n": self._n,
            "evicted_through": self._evicted_through,
            "buckets": {
                str(index): bucket.to_dict()
                for index, bucket in self._buckets.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "WindowedMisraGries":
        summary = cls(
            k=payload["k"],
            bucket_width=payload["bucket_width"],
            num_buckets=payload["num_buckets"],
        )
        summary._buckets = {
            int(index): MisraGries.from_dict(state)
            for index, state in payload["buckets"].items()
        }
        summary._n = payload["n"]
        summary._evicted_through = payload.get("evicted_through")
        return summary
