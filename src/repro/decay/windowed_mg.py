"""Sliding-window Misra-Gries — now a shim over :mod:`repro.windows`.

.. deprecated::
    ``WindowedMisraGries`` predates the generic sliding-window
    combinator and is retained as a compatibility alias.  New code
    should use ``MisraGries(k).windowed(...)`` (or the registered
    ``windowed.misra_gries`` variant), which adds exponential-histogram
    compaction, count-based windows and the ``(1 + eps)`` mass
    envelope this fixed-bucket layout lacks.

The class subclasses the auto-derived ``windowed.misra_gries``
combinator in *time* mode with one level-0 bucket per fixed
``bucket_width`` stripe, and overrides bucket routing, eviction and
merging to the legacy index-aligned semantics: every event lands in the
bucket ``floor(t / bucket_width)``, exactly ``num_buckets`` recent
buckets are retained (index-based, not watermark-based), and merges
align buckets by absolute index.  ``eps`` is chosen so the EH per-level
cap exceeds ``num_buckets`` — the cascade never fires, so the layout
stays plain fixed-width buckets and every historical answer is
preserved bit for bit.  Legacy serialized payloads (dict-shaped
``buckets`` keyed by absolute index) migrate transparently in
:meth:`~WindowedMisraGries.from_dict`.
"""

from __future__ import annotations

import json
import math
import warnings
from typing import Any, Dict, Optional

from ..core.base import normalize_batch
from ..core.exceptions import ParameterError, QueryError
from ..core.registry import register_summary
from ..frequency.misra_gries import MisraGries
from ..windows.eh import Bucket, sorted_union
from ..windows.windowed import windowed_class

__all__ = ["WindowedMisraGries", "WindowQueryResult"]


class WindowQueryResult:
    """Outcome of a sliding-window heavy-hitter query."""

    def __init__(
        self,
        summary: MisraGries,
        buckets_covered: int,
        window_start: float,
        window_end: float,
    ) -> None:
        #: merged MG summary over the covered buckets
        self.summary = summary
        self.buckets_covered = buckets_covered
        #: actual (bucket-aligned) span the answer covers
        self.window_start = window_start
        self.window_end = window_end

    def heavy_hitters(self, phi: float) -> Dict[Any, int]:
        """phi-heavy hitters over the covered span (no false negatives)."""
        return self.summary.heavy_hitters(phi)

    def estimate(self, item: Any) -> int:
        return self.summary.estimate(item)

    @property
    def n(self) -> int:
        """Items in the covered span."""
        return self.summary.n

    @property
    def error_bound(self) -> float:
        return self.summary.error_bound


@register_summary("windowed_misra_gries")
class WindowedMisraGries(windowed_class("misra_gries")):
    """Bucketed sliding-window Misra-Gries (legacy fixed-bucket layout).

    Parameters
    ----------
    k:
        Counters per bucket.
    bucket_width:
        Time width of one bucket (same unit as timestamps).
    num_buckets:
        Retained horizon, in buckets; older buckets are evicted.
    """

    def __init__(self, k: int, bucket_width: float, num_buckets: int) -> None:
        warnings.warn(
            "WindowedMisraGries is deprecated; use "
            "MisraGries(k).windowed(eps=..., window=..., mode='time') "
            "or any other base summary's .windowed(...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if not isinstance(k, int) or k < 1:
            raise ParameterError(f"k must be a positive integer, got {k!r}")
        if bucket_width <= 0:
            raise ParameterError(
                f"bucket_width must be positive, got {bucket_width!r}"
            )
        if num_buckets < 1:
            raise ParameterError(f"num_buckets must be >= 1, got {num_buckets!r}")
        # cap = num_buckets + 1 > live buckets, so the EH cascade never
        # merges across the fixed bucket boundaries
        super().__init__(
            eps=1.0 / int(num_buckets),
            window=float(bucket_width) * int(num_buckets),
            mode="time",
            granularity=float(bucket_width),
            k=k,
        )

    # legacy geometry, derived from the combinator configuration

    @property
    def k(self) -> int:
        return json.loads(self._proto_json)["k"]

    @property
    def bucket_width(self) -> float:
        return self.granularity

    @property
    def num_buckets(self) -> int:
        return round(self.window / self.granularity)

    @property
    def horizon(self) -> float:
        """Queryable time span: ``num_buckets * bucket_width``."""
        return self.window

    # ------------------------------------------------------------------
    # Updates (index-aligned routing, no pending bucket)
    # ------------------------------------------------------------------

    def _time_target(self, timestamp: float) -> Bucket:
        """The level-0 bucket for index ``floor(t / width)``, created
        in span order if absent — the legacy dict-by-index layout."""
        width = self.granularity
        aligned = math.floor(timestamp / width) * width
        for bucket in reversed(self._buckets):
            if bucket.start == aligned:
                return bucket
            if bucket.start < aligned:
                break
        fresh = Bucket(self._spawn(), 0, 0, aligned, aligned + width)
        self._buckets = sorted_union(self._buckets, [fresh])
        return fresh

    def update(self, item: Any, weight: int = 1) -> None:
        """Timestamp-less update lands in the most recent bucket."""
        latest = max((b.start for b in self._buckets), default=0.0)
        self.observe(item, latest, weight)

    def update_batch(
        self,
        items: Any,
        weights: Optional[Any] = None,
    ) -> None:
        """Batch ingestion into the most recent bucket.

        Every timestamp-less update lands in the latest bucket, and
        observing into the latest bucket never changes which bucket is
        latest — so the whole batch delegates to that single bucket's
        Misra-Gries batch fast path (Counter pre-aggregation) instead
        of paying the bucket lookup and eviction scan per item.
        """
        items, weights, total = normalize_batch(items, weights)
        if len(items) == 0:
            return
        latest = max((b.start for b in self._buckets), default=0.0)
        target = self._time_target(latest)
        before = target.summary.n
        target.summary.update_batch(items, weights)
        self._n += target.summary.n - before
        target.count += total
        if self._clock is None or latest > self._clock:
            self._clock = latest
        self._expire()

    def _expire(self) -> None:
        """Legacy index-based eviction: keep ``num_buckets`` recent
        bucket *indices* counted from the newest live bucket (the
        combinator's watermark-based cutoff would retain one extra
        straddling bucket mid-stripe)."""
        if self._prealigned or not self._buckets:
            return
        latest = max(b.start for b in self._buckets)
        floor = latest - (self.num_buckets - 1) * self.granularity
        kept = []
        for bucket in self._buckets:
            if bucket.start < floor:
                self._n -= bucket.summary.n
                if self._expired_end is None or bucket.end > self._expired_end:
                    self._expired_end = bucket.end
            else:
                kept.append(bucket)
        self._buckets = kept

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def live_buckets(self) -> Dict[int, int]:
        """Bucket index -> item count (diagnostics)."""
        width = self.granularity
        return {
            int(math.floor(b.start / width)): b.summary.n
            for b in self._buckets
        }

    def estimate(self, item: Any) -> int:
        """Lower-bound count of ``item`` across all live buckets.

        Sum of the per-bucket MG estimates: each underestimates by at
        most its bucket's ``n / (k + 1)``, so the total underestimate is
        at most ``n_live / (k + 1)`` over the retained horizon.
        """
        return sum(b.summary.estimate(item) for b in self._buckets)

    def query(self, window_end: float, window_length: float) -> WindowQueryResult:
        """Heavy-hitter summary of ``[window_end - window_length, window_end]``.

        The window is rounded outward to whole buckets; the result
        reports the actual covered span.  Raises :class:`QueryError`
        when the requested window reaches past the retained horizon.
        """
        if window_length <= 0:
            raise ParameterError(
                f"window_length must be positive, got {window_length!r}"
            )
        if not self._buckets:
            raise QueryError("windowed summary holds no data")
        width = self.granularity
        last_index = int(math.floor(window_end / width))
        first_index = int(math.floor((window_end - window_length) / width))
        if (
            self._expired_end is not None
            and first_index * width < self._expired_end
        ):
            evicted_through = int(round(self._expired_end / width)) - 1
            raise QueryError(
                f"window reaches bucket {first_index} but buckets up to "
                f"{evicted_through} have expired (horizon {self.horizon})"
            )
        merged = self._spawn()
        covered = 0
        for bucket in self._buckets:
            index = int(math.floor(bucket.start / width))
            if first_index <= index <= last_index:
                merged.merge(bucket.summary)
                covered += 1
        return WindowQueryResult(
            summary=merged,
            buckets_covered=covered,
            window_start=first_index * width,
            window_end=(last_index + 1) * width,
        )

    # ------------------------------------------------------------------
    # Merge (absolute-index alignment)
    # ------------------------------------------------------------------

    def compatible_with(self, other: "WindowedMisraGries") -> Optional[str]:
        mine = (self.k, self.bucket_width, self.num_buckets)
        theirs = (other.k, other.bucket_width, other.num_buckets)
        if mine != theirs:
            return f"window geometry mismatch: {mine} vs {theirs}"
        return None

    def _merge_same_type(self, other: "WindowedMisraGries") -> None:
        if self._prealigned or other._prealigned:
            # engine slices go through the combinator's lazy-union path
            super()._merge_same_type(other)
            return
        for theirs in other._buckets:
            clone = theirs.clone()
            mine = next(
                (b for b in self._buckets if b.start == clone.start), None
            )
            if mine is None:
                self._buckets = sorted_union(self._buckets, [clone])
            else:
                mine.summary.merge(clone.summary)
                mine.count += clone.count
        self._n += other._n
        if other._expired_end is not None and (
            self._expired_end is None
            or other._expired_end > self._expired_end
        ):
            self._expired_end = other._expired_end
        if other._clock is not None and (
            self._clock is None or other._clock > self._clock
        ):
            self._clock = other._clock
        self._expire()

    # ------------------------------------------------------------------
    # Serialization (combinator schema, with legacy-payload migration)
    # ------------------------------------------------------------------

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "WindowedMisraGries":
        if isinstance(payload.get("buckets"), dict):
            # legacy fixed-bucket payload: {k, bucket_width, num_buckets,
            # n, evicted_through, buckets: {str(index): mg_state}}
            width = float(payload["bucket_width"])
            summary = cls(
                k=payload["k"],
                bucket_width=width,
                num_buckets=payload["num_buckets"],
            )
            for index, state in sorted(
                payload["buckets"].items(), key=lambda kv: int(kv[0])
            ):
                mg = MisraGries.from_dict(state)
                start = int(index) * width
                summary._buckets.append(
                    Bucket(mg, mg.n, 0, start, start + width)
                )
            summary._n = payload["n"]
            if summary._buckets:
                summary._clock = max(b.start for b in summary._buckets)
            evicted_through = payload.get("evicted_through")
            if evicted_through is not None:
                summary._expired_end = (evicted_through + 1) * width
            return summary
        return super().from_dict(payload)
