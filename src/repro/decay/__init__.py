"""Time-decayed and sliding-window mergeable summaries (paper future work)."""

from .decayed_mg import DecayedMisraGries
from .windowed_mg import WindowedMisraGries, WindowQueryResult

__all__ = ["DecayedMisraGries", "WindowedMisraGries", "WindowQueryResult"]
