"""Time-decayed mergeable heavy hitters (paper future-work extension).

The paper's conclusion raises time-decayed and sliding-window
mergeability as open directions.  This module implements the
exponential-decay case, which composes cleanly with the Misra-Gries
merge because exponential decay is a *linear* operation:

    decayed weight of an occurrence at time t, observed at time T:
        w * 0.5 ** ((T - t) / half_life)

Scaling every counter (and the deduction) by the same factor commutes
with both the MG decrement and the combine+prune merge, so all MG
guarantees carry over verbatim in decayed units::

    f_decayed(x) - N_decayed/(k+1)  <=  estimate(x)  <=  f_decayed(x)

where ``N_decayed`` is the total decayed weight — under arbitrary
merges, with each summary carrying its own reference time and merges
aligning the operands to the later one.

Implementation: counters store values normalized to the summary's
*reference time*; advancing the reference rescales counters, deduction
and the decayed total by the elapsed decay factor.  Out-of-order
arrivals are handled by decaying the incoming weight instead of
rewinding the clock.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, Optional

from ..core.base import Summary, normalize_batch
from ..core.exceptions import ParameterError
from ..core.items import plain
from ..core.registry import register_summary

__all__ = ["DecayedMisraGries"]

#: counters below this decayed weight are dropped as numerically dead
_EPSILON_WEIGHT = 1e-12


@register_summary("decayed_misra_gries")
class DecayedMisraGries(Summary):
    """Misra-Gries under exponential time decay.

    Parameters
    ----------
    k:
        Number of counters.
    half_life:
        Time for an occurrence's weight to halve (same unit as the
        timestamps passed to :meth:`observe`).
    """

    def __init__(self, k: int, half_life: float) -> None:
        super().__init__()
        if not isinstance(k, int) or k < 1:
            raise ParameterError(f"k must be a positive integer, got {k!r}")
        if half_life <= 0:
            raise ParameterError(f"half_life must be positive, got {half_life!r}")
        self.k = k
        self.half_life = float(half_life)
        self._counters: Dict[Any, float] = {}
        self._deduction = 0.0
        self._decayed_total = 0.0
        self._reference_time = 0.0

    # ------------------------------------------------------------------
    # Time handling
    # ------------------------------------------------------------------

    @property
    def reference_time(self) -> float:
        """The time all stored weights are normalized to."""
        return self._reference_time

    @property
    def decayed_total(self) -> float:
        """Total decayed weight ``N_decayed`` (the bound's denominator)."""
        return self._decayed_total

    def _factor(self, elapsed: float) -> float:
        return 0.5 ** (elapsed / self.half_life)

    def advance_to(self, timestamp: float) -> None:
        """Move the reference time forward, decaying all state."""
        if timestamp <= self._reference_time:
            return
        factor = self._factor(timestamp - self._reference_time)
        for item in list(self._counters):
            self._counters[item] *= factor
            if self._counters[item] <= _EPSILON_WEIGHT:
                del self._counters[item]
        self._deduction *= factor
        self._decayed_total *= factor
        self._reference_time = timestamp

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def observe(self, item: Any, timestamp: float, weight: float = 1.0) -> None:
        """Fold in ``weight`` occurrences of ``item`` at ``timestamp``.

        Late (out-of-order) arrivals are accepted: their weight is
        decayed to the current reference instead of rewinding time.
        """
        if weight <= 0:
            raise ParameterError(f"weight must be positive, got {weight!r}")
        self._n += 1
        self.advance_to(timestamp)
        decayed = weight * self._factor(self._reference_time - timestamp)
        self._ingest_at_reference(item, decayed)

    def _ingest_at_reference(self, item: Any, decayed: float) -> None:
        """Fold ``decayed`` weight of ``item``, already at the reference."""
        self._decayed_total += decayed
        counters = self._counters
        if item in counters:
            counters[item] += decayed
            return
        if len(counters) < self.k:
            counters[item] = decayed
            return
        minimum = min(counters.values())
        decrement = min(decayed, minimum)
        self._deduction += decrement
        for key in list(counters):
            counters[key] -= decrement
            if counters[key] <= _EPSILON_WEIGHT:
                del counters[key]
        if decayed > decrement:
            counters[item] = decayed - decrement

    def update(self, item: Any, weight: int = 1) -> None:
        """Timestamp-less update: observe at the current reference time."""
        self.observe(item, self._reference_time, float(weight))

    def update_batch(
        self,
        items: Any,
        weights: Optional[Any] = None,
    ) -> None:
        """Pre-aggregated batch ingestion at the current reference time.

        Timestamp-less updates all land exactly at the reference (decay
        factor 1), so the batch collapses to one weighted insertion per
        *distinct* item — the same Counter pre-aggregation fast path as
        plain Misra-Gries, valid here because every occurrence carries
        the same decay.  The decrement interleaving differs from the
        item-at-a-time order, but the guarantee does not depend on it:
        every decrement still charges ``k + 1`` units of decayed weight,
        so ``deduction <= N_decayed / (k + 1)`` holds unchanged.
        """
        items, weights, _total = normalize_batch(items, weights)
        if len(items) == 0:
            return
        aggregated: Counter = Counter()
        if weights is None:
            aggregated.update(items)
        else:
            for item, weight in zip(items, weights.tolist()):
                aggregated[item] += weight
        self._n += len(items)
        for item, weight in aggregated.items():
            self._ingest_at_reference(item, float(weight))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def deduction(self) -> float:
        """Maximum under-estimation, in decayed units at the reference."""
        return self._deduction

    @property
    def error_bound(self) -> float:
        """The guarantee ``N_decayed / (k + 1)``."""
        return self._decayed_total / (self.k + 1)

    def estimate(self, item: Any, at: Optional[float] = None) -> float:
        """Lower-bound decayed frequency at ``at`` (default: reference)."""
        value = self._counters.get(item, 0.0)
        if at is not None:
            if at < self._reference_time:
                raise ParameterError(
                    f"query time {at} precedes reference {self._reference_time}"
                )
            value *= self._factor(at - self._reference_time)
        return value

    def counters(self) -> Dict[Any, float]:
        """Snapshot of monitored items with decayed estimates."""
        return dict(self._counters)

    def heavy_hitters(self, phi: float) -> Dict[Any, float]:
        """Items possibly holding ``>= phi`` of the decayed total weight."""
        if not 0 < phi <= 1:
            raise ParameterError(f"phi must be in (0, 1], got {phi!r}")
        threshold = phi * self._decayed_total
        return {
            item: value
            for item, value in self._counters.items()
            if value + self._deduction >= threshold
        }

    def size(self) -> int:
        return len(self._counters)

    def __contains__(self, item: Any) -> bool:
        return item in self._counters

    # ------------------------------------------------------------------
    # Merge
    # ------------------------------------------------------------------

    def compatible_with(self, other: "DecayedMisraGries") -> Optional[str]:
        assert isinstance(other, DecayedMisraGries)
        if self.k != other.k:
            return f"k mismatch: {self.k} vs {other.k}"
        if abs(self.half_life - other.half_life) > 1e-12:
            return f"half_life mismatch: {self.half_life} vs {other.half_life}"
        return None

    def _merge_same_type(self, other: "DecayedMisraGries") -> None:
        assert isinstance(other, DecayedMisraGries)
        # align both operands to the later reference time; `other` is
        # not mutated, so its state is decayed into a local view
        target = max(self._reference_time, other._reference_time)
        self.advance_to(target)
        factor = other._factor(target - other._reference_time)
        combined = dict(self._counters)
        for item, value in other._counters.items():
            decayed = value * factor
            if decayed > _EPSILON_WEIGHT:
                combined[item] = combined.get(item, 0.0) + decayed
        deduction = self._deduction + other._deduction * factor
        if len(combined) > self.k:
            cut = sorted(combined.values(), reverse=True)[self.k]
            combined = {
                item: value - cut
                for item, value in combined.items()
                if value - cut > _EPSILON_WEIGHT
            }
            deduction += cut
        self._counters = combined
        self._deduction = deduction
        self._decayed_total += other._decayed_total * factor
        self._n += other._n

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "k": self.k,
            "half_life": self.half_life,
            "n": self._n,
            "deduction": self._deduction,
            "decayed_total": self._decayed_total,
            "reference_time": self._reference_time,
            "counters": [[plain(i), v] for i, v in self._counters.items()],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "DecayedMisraGries":
        summary = cls(k=payload["k"], half_life=payload["half_life"])
        summary._counters = {item: value for item, value in payload["counters"]}
        summary._deduction = payload["deduction"]
        summary._decayed_total = payload["decayed_total"]
        summary._reference_time = payload["reference_time"]
        summary._n = payload["n"]
        return summary
