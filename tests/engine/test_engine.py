"""Engine suite: the shared plan IR + executor behind every merge path.

PR-5 routes all three historical execution loops — ``merge_all`` folds,
the distributed simulator, and store compaction — through one compiled
:class:`~repro.engine.plan.MergePlan` and one
:func:`~repro.engine.execute_plan` runner.  This suite pins the
refactor's contract:

- the IR validates its own shape (bad steps, unreadable slots, plans
  that emit nothing);
- for **every registered summary type**, each fold strategy executed
  through the engine is byte-identical to an in-test replica of the
  legacy loop it replaced (the engine performs the *same* merge
  sequence, so even randomized summaries must match bit-for-bit);
- a simulator run equals a manual replay of its schedule;
- the executor's wave/scalar/fault regimes account correctly
  (waves, step status, instrument events, duplicate knob, ledgers);
- fault-injected store compaction is exactly-once or nothing: retries
  converge to byte-identical roll-ups, total loss installs nothing and
  a later plain ``compact()`` fully recovers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ParameterError, dumps
from repro.core.merge import merge_all
from repro.core.rng import resolve_rng
from repro.distributed import ContiguousPartitioner, build_topology, run_aggregation
from repro.engine import (
    MERGE_STRATEGIES,
    FaultModel,
    MergeLedger,
    MergePlan,
    MergeStep,
    RetryPolicy,
    compile_aggregation,
    compile_fold,
    execute_plan,
    plan_step_waves,
)
from repro.frequency import ExactCounter, MisraGries
from repro.store import SegmentStore
from tests.test_merge_runtime import MERGE_SPECS, SKIPPED_TYPES

# ---------------------------------------------------------------------------
# Plan IR
# ---------------------------------------------------------------------------


class TestPlanIR:
    def test_unknown_op_rejected(self):
        with pytest.raises(ParameterError, match="unknown plan op"):
            MergeStep("frobnicate", "s0")

    def test_merge_needs_sources(self):
        with pytest.raises(ParameterError, match="at least one source"):
            MergeStep("merge", "s0")

    def test_merge_destination_not_a_source(self):
        with pytest.raises(ParameterError, match="appears in its own sources"):
            MergeStep("merge", "s0", ("s0", "s1"))

    def test_build_needs_builder(self):
        with pytest.raises(ParameterError, match="needs a builder"):
            MergeStep("build", "s0")

    def test_emit_takes_no_sources(self):
        with pytest.raises(ParameterError, match="take no source"):
            MergeStep("emit", "s0", ("s1",))

    def test_validate_flags_unknown_source(self):
        plan = MergePlan(
            name="bad",
            steps=(MergeStep("merge", "s0", ("ghost",)), MergeStep("emit", "s0")),
        )
        with pytest.raises(ParameterError, match="unknown slot"):
            plan.validate(["s0"])

    def test_validate_flags_unknown_emit(self):
        plan = MergePlan(name="bad", steps=(MergeStep("emit", "ghost"),))
        with pytest.raises(ParameterError, match="emit of unknown"):
            plan.validate(["s0"])

    def test_validate_requires_an_output(self):
        plan = MergePlan(name="bad", steps=(MergeStep("merge", "s0", ("s1",)),))
        with pytest.raises(ParameterError, match="emits nothing"):
            plan.validate(["s0", "s1"])

    def test_fresh_merge_destination_becomes_known(self):
        # a copy-on-write merge introduces its destination for later steps
        plan = MergePlan(
            name="rollup",
            steps=(
                MergeStep("merge", "up", ("a", "b"), builder=lambda first: first),
                MergeStep("merge", "top", ("up", "c"), builder=lambda first: first),
                MergeStep("emit", "top"),
            ),
        )
        plan.validate(["a", "b", "c"])

    def test_describe_lists_every_step(self):
        plan = compile_fold("tree", 4)
        text = plan.describe()
        assert "fold:tree[4]" in text
        assert text.count("merge") >= 3
        assert "emit" in text

    def test_compile_fold_unknown_strategy(self):
        with pytest.raises(ParameterError, match="unknown merge strategy"):
            compile_fold("bogus", 4)

    def test_every_strategy_compiles_and_emits_one_output(self):
        for name, descriptor in MERGE_STRATEGIES.items():
            plan = descriptor.compile([f"s{i}" for i in range(5)], rng=1)
            assert len(plan.outputs) == 1, name
            plan.validate([f"s{i}" for i in range(5)])


# ---------------------------------------------------------------------------
# Fold equivalence vs the legacy loops, for every registered type
# ---------------------------------------------------------------------------

PARTS = 5


def _legacy_chain(parts):
    acc = parts[0]
    for other in parts[1:]:
        acc.merge(other)
    return acc


def _legacy_tree(parts):
    level = list(parts)
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            level[i].merge(level[i + 1])
            nxt.append(level[i])
        if len(level) % 2 == 1:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def _legacy_random(parts, seed):
    gen = resolve_rng(seed)
    pool = list(parts)
    while len(pool) > 1:
        i, j = gen.choice(len(pool), size=2, replace=False)
        i, j = int(i), int(j)
        if i > j:
            i, j = j, i
        right = pool.pop(j)
        pool[i].merge(right)
    return pool[0]


def _legacy_kway(parts):
    return parts[0].merge_many(parts[1:])


LEGACY_FOLDS = {
    "chain": lambda parts: _legacy_chain(parts),
    "tree": lambda parts: _legacy_tree(parts),
    "random": lambda parts: _legacy_random(parts, seed=11),
    "kway": lambda parts: _legacy_kway(parts),
}


def _build_parts(spec, count: int = PARTS):
    return [spec.factory(j).extend(spec.feed(70 + j)) for j in range(count)]


@pytest.fixture(params=sorted(MERGE_SPECS), ids=sorted(MERGE_SPECS))
def spec(request):
    return MERGE_SPECS[request.param]


class TestFoldEquivalence:
    def test_legacy_fold_registry_matches_strategy_registry(self):
        assert set(LEGACY_FOLDS) == set(MERGE_STRATEGIES)

    @pytest.mark.parametrize("strategy", sorted(LEGACY_FOLDS))
    def test_engine_fold_is_byte_identical_to_legacy_loop(self, spec, strategy):
        engine_parts = _build_parts(spec)
        legacy_parts = _build_parts(spec)
        rng = 11 if strategy == "random" else None
        merged = merge_all(engine_parts, strategy=strategy, rng=rng)
        expected = LEGACY_FOLDS[strategy](legacy_parts)
        assert merged.n == expected.n
        assert dumps(merged) == dumps(expected)

    def test_single_summary_returned_as_is(self, spec):
        only = spec.factory(0).extend(spec.feed(99))
        for strategy in sorted(MERGE_STRATEGIES):
            rng = 11 if strategy == "random" else None
            assert merge_all([only], strategy=strategy, rng=rng) is only


# ---------------------------------------------------------------------------
# Simulator equivalence: a run equals a manual schedule replay
# ---------------------------------------------------------------------------


class TestAggregationEquivalence:
    @pytest.mark.parametrize("topology", ["balanced", "chain", "kary"])
    def test_run_matches_manual_schedule_replay(self, topology):
        data = np.random.default_rng(4).integers(0, 60, size=600)
        leaves = 9
        schedule = build_topology(topology, leaves, rng=3)
        shards = ContiguousPartitioner().split(data, leaves)
        replicas = [MisraGries(16).extend(shard) for shard in shards]
        for dst, src in schedule.steps:
            replicas[dst].merge(replicas[src])
        result = run_aggregation(
            data, ContiguousPartitioner(), lambda: MisraGries(16), schedule
        )
        assert result.merges == len(schedule.steps)
        assert result.coverage == 1.0
        assert dumps(result.summary) == dumps(replicas[schedule.root])

    def test_compiled_schedule_protects_the_root(self):
        schedule = build_topology("balanced", 8, rng=1)
        plan = compile_aggregation(schedule)
        assert plan.protected == frozenset({schedule.root})
        assert len(plan.build_steps) == schedule.leaves
        assert len(plan.merge_steps) == len(schedule.steps)


# ---------------------------------------------------------------------------
# Executor regimes and accounting
# ---------------------------------------------------------------------------


def _counters(count: int, per: int = 40):
    inputs = {}
    for i in range(count):
        feed = np.random.default_rng(300 + i).integers(0, 9, size=per).tolist()
        inputs[f"s{i}"] = ExactCounter().extend(feed)
    return inputs


class TestExecutorAccounting:
    def test_knob_validation(self):
        plan = compile_fold("chain", 2)
        inputs = _counters(2)
        with pytest.raises(ParameterError, match="must be in"):
            execute_plan(plan, inputs, duplicate_probability=1.5)
        with pytest.raises(ParameterError, match="legacy knob"):
            execute_plan(
                plan, inputs, fault_model=FaultModel(rng=1),
                duplicate_probability=0.5,
            )
        with pytest.raises(ParameterError, match="requires serialize"):
            execute_plan(
                plan, inputs, fault_model=FaultModel(corruption=0.5, rng=1)
            )

    def test_scalar_report_counts_steps(self):
        inputs = _counters(6)
        total = sum(s.n for s in inputs.values())  # before s0 absorbs the rest
        result = execute_plan(compile_fold("chain", 6), inputs)
        assert result.report.merges == 5
        assert result.report.steps_done == 5
        assert result.report.waves == 0
        assert result.value.n == total

    def test_wave_path_groups_and_instruments(self):
        inputs = _counters(8)
        total = sum(s.n for s in inputs.values())
        events = []
        result = execute_plan(
            compile_fold("tree", 8),
            inputs,
            executor=2,
            instrument=lambda event, info: events.append((event, info)),
        )
        report = result.report
        # a balanced tree over 8 slots runs 3 levels of disjoint pairs
        assert report.waves == 3
        assert report.groups == 7
        assert report.merges == 7
        assert report.steps_done == 7
        kinds = [event for event, _ in events]
        assert kinds.count("wave") == 3
        assert kinds[-1] == "done"
        assert result.value.n == total

    def test_wave_and_scalar_paths_agree(self):
        serial = execute_plan(compile_fold("tree", 7), _counters(7))
        pooled = execute_plan(compile_fold("tree", 7), _counters(7), executor=3)
        assert dumps(serial.value) == dumps(pooled.value)

    def test_duplicate_knob_double_merges(self):
        inputs = _counters(4)
        expected_extra = sum(
            inputs[f"s{i}"].n for i in range(1, 4)
        )
        clean = sum(s.n for s in inputs.values())
        result = execute_plan(
            compile_fold("chain", 4), _counters(4),
            duplicate_probability=1.0, rng=5,
        )
        assert result.report.duplicated_deliveries == 3
        assert result.value.n == clean + expected_extra

    def test_total_loss_marks_steps_failed_but_keeps_inputs(self):
        inputs = _counters(4)
        own = inputs["s0"].n
        result = execute_plan(
            compile_fold("chain", 4), inputs,
            fault_model=FaultModel(loss=1.0, rng=2),
            retry_policy=RetryPolicy(max_attempts=2),
        )
        assert result.report.steps_failed == 3
        assert result.report.fault_stats.deliveries_failed == 3
        # the destination survives with only its own data
        assert result.value.n == own
        assert result.report.covered["s0"] == {"s0"}

    def test_ledger_suppresses_injected_duplicates(self):
        clean = execute_plan(compile_fold("chain", 5), _counters(5)).value
        result = execute_plan(
            compile_fold("chain", 5), _counters(5),
            fault_model=FaultModel(duplicate=1.0, rng=3),
            ledger_factory=MergeLedger,
        )
        stats = result.report.fault_stats
        assert stats.duplicates_delivered == 4
        assert stats.duplicates_suppressed == 4
        assert stats.duplicates_merged == 0
        assert dumps(result.value) == dumps(clean)

    def test_without_ledger_duplicates_land(self):
        clean = execute_plan(compile_fold("chain", 5), _counters(5)).value
        result = execute_plan(
            compile_fold("chain", 5), _counters(5),
            fault_model=FaultModel(duplicate=1.0, rng=3),
        )
        assert result.report.fault_stats.duplicates_merged == 4
        assert result.value.n > clean.n

    def test_step_waves_respect_fuse_flag(self):
        steps = (
            MergeStep("merge", "s0", ("s1",)),
            MergeStep("merge", "s0", ("s2",)),
        )
        fused = plan_step_waves(steps, fuse=True)
        assert len(fused) == 1 and len(fused[0]) == 1
        assert fused[0][0].srcs == ["s1", "s2"]
        unfused = plan_step_waves(steps, fuse=False)
        assert len(unfused) == 2  # same destination forces two waves


# ---------------------------------------------------------------------------
# Store compaction under fault injection: exactly-once or nothing
# ---------------------------------------------------------------------------

EPOCHS = 12


def _filled_store() -> SegmentStore:
    store = SegmentStore(width=1.0)
    store.add_member("count", "exact_counter", field="value")
    store.add_member("hh", "misra_gries", field="value", k=8)
    gen = np.random.default_rng(21)
    records, keys = [], []
    for epoch in range(EPOCHS):
        for value in gen.integers(0, 12, size=15).tolist():
            records.append({"value": value})
            keys.append(epoch + 0.5)
    store.ingest(records, keys)
    return store


def _rollup_state(store: SegmentStore, with_ids: bool = True) -> dict:
    return {
        key: (
            segment.segment_id if with_ids else None,
            segment.count,
            {name: s.to_dict() for name, s in segment.members.items()},
        )
        for key, segment in store._rollups.items()
    }


class TestFaultInjectedCompaction:
    def test_lossy_compact_retries_to_identical_rollups(self):
        baseline = _filled_store()
        clean_stats = baseline.compact()
        lossy = _filled_store()
        stats = lossy.compact(
            fault_model=FaultModel(loss=0.4, rng=7),
            retry_policy=RetryPolicy(max_attempts=20),
        )
        assert stats["retries"] > 0
        assert stats["rollups_failed"] == 0
        assert stats["rollups_built"] == clean_stats["rollups_built"]
        assert stats["merge_inputs"] == clean_stats["merge_inputs"]
        assert _rollup_state(lossy) == _rollup_state(baseline)

    def test_total_loss_installs_nothing_and_recompact_recovers(self):
        baseline = _filled_store()
        baseline.compact()
        store = _filled_store()
        stats = store.compact(
            fault_model=FaultModel(loss=1.0, rng=1),
            retry_policy=RetryPolicy(max_attempts=2),
        )
        assert stats["rollups_built"] == 0
        assert stats["rollups_failed"] > 0
        assert store.num_rollups == 0
        # queries still work off base segments, as if never compacted
        q_store = store.query(0.0, float(EPOCHS))
        q_base = baseline.query(0.0, float(EPOCHS))
        assert q_store["count"].n == q_base["count"].n
        # a later fault-free compact rebuilds the full tree
        recovered = store.compact()
        assert recovered["rollups_built"] == baseline.num_rollups
        # the aborted compact consumed segment-id allocations, so ids
        # legitimately differ; the summarized state must not
        assert _rollup_state(store, with_ids=False) == _rollup_state(
            baseline, with_ids=False
        )

    def test_partial_rollups_never_served(self):
        # moderate loss with too few retries: some roll-ups fail; every
        # one that *was* installed covers its entire block
        store = _filled_store()
        store.compact(
            fault_model=FaultModel(loss=0.55, rng=13),
            retry_policy=RetryPolicy(max_attempts=2),
        )
        for (level, start), segment in store._rollups.items():
            span = 1 << level
            expected = sum(
                store._base[e].count
                for e in range(start, start + span)
                if e in store._base
            )
            assert segment.count == expected
            assert segment.members["count"].n == expected

    def test_corruption_injection_rejected(self):
        store = _filled_store()
        with pytest.raises(ParameterError, match="never serializes"):
            store.compact(fault_model=FaultModel(corruption=0.5, rng=1))

    def test_fault_free_compact_reports_no_fault_keys(self):
        stats = _filled_store().compact()
        assert set(stats) == {"levels", "rollups_built", "merge_inputs"}


class TestAssignGroups:
    """Affinity assignment of wave groups to persistent workers."""

    def _groups(self, pairs):
        from repro.engine.waves import StepGroup

        return [StepGroup(dst=d, srcs=list(s), indices=[0] * len(s)) for d, s in pairs]

    def test_groups_follow_their_resident_slots(self):
        from repro.engine.waves import assign_groups

        fresh = {"a": {0}, "b": {0}, "c": {1}, "d": {1}}
        groups = self._groups([("a", ["b"]), ("c", ["d"])])
        assignments = assign_groups(groups, [0, 1], lambda slot: fresh.get(slot))
        assert [g.dst for g in assignments[0]] == ["a"]
        assert [g.dst for g in assignments[1]] == ["c"]

    def test_fork_fresh_slots_spread_by_load(self):
        from repro.engine.waves import assign_groups

        # freshness None = every worker holds the fork snapshot, so
        # assignment balances load instead of piling onto worker 0
        groups = self._groups([(i, [i + 100]) for i in range(6)])
        assignments = assign_groups(groups, [0, 1, 2], lambda slot: None)
        assert sorted(len(v) for v in assignments.values()) == [2, 2, 2]

    def test_assignment_is_deterministic(self):
        from repro.engine.waves import assign_groups

        fresh = {"a": {2}, "x": {1}}
        groups = self._groups([("a", ["b", "c"]), ("x", ["y"]), ("p", ["q"])])
        first = assign_groups(groups, [0, 1, 2], lambda slot: fresh.get(slot))
        second = assign_groups(groups, [0, 1, 2], lambda slot: fresh.get(slot))
        assert {w: [g.dst for g in v] for w, v in first.items()} == {
            w: [g.dst for g in v] for w, v in second.items()
        }
        # the affinity winner actually got its group
        assert "a" in [g.dst for g in first[2]]
        assert "x" in [g.dst for g in first[1]]


def test_skipped_types_documented():
    # keep the fold-equivalence coverage honest: anything not in
    # MERGE_SPECS must carry an explicit skip reason
    from repro.core import registered_names

    assert set(registered_names()) == set(MERGE_SPECS) | set(SKIPPED_TYPES)
