"""Integration tests for the distributed aggregation simulator."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.distributed import (
    ContiguousPartitioner,
    Node,
    SortedPartitioner,
    balanced_tree,
    build_topology,
    chain,
    run_aggregation,
)
from repro.frequency import ExactCounter, MisraGries
from repro.quantiles import MergeableQuantiles
from repro.workloads import zipf_stream


@pytest.fixture(scope="module")
def stream():
    return zipf_stream(10_000, alpha=1.2, universe=2_000, rng=9)


class TestRunAggregation:
    def test_exact_counter_equals_sequential(self, stream):
        result = run_aggregation(
            stream, ContiguousPartitioner(), ExactCounter, balanced_tree(8)
        )
        assert result.summary.counters() == dict(Counter(stream.tolist()))
        assert result.summary.n == len(stream)
        assert result.merges == 7
        assert result.depth == 3

    @pytest.mark.parametrize("topology", ["balanced", "chain", "star"])
    def test_mg_guarantee_through_simulator(self, stream, topology):
        k = 16
        result = run_aggregation(
            stream,
            ContiguousPartitioner(),
            lambda: MisraGries(k),
            build_topology(topology, 12),
        )
        truth = Counter(stream.tolist())
        bound = len(stream) / (k + 1)
        assert result.summary.n == len(stream)
        assert result.max_size_en_route <= k
        for item, count in truth.most_common(30):
            est = result.summary.estimate(item)
            assert est <= count
            assert count - est <= bound

    def test_serialize_mode_ships_bytes(self, stream):
        result = run_aggregation(
            stream,
            ContiguousPartitioner(),
            lambda: MisraGries(8),
            chain(4),
            serialize=True,
        )
        assert result.bytes_shipped > 0
        assert result.summary.n == len(stream)

    def test_serialize_and_plain_agree(self, stream):
        plain = run_aggregation(
            stream, ContiguousPartitioner(), lambda: MisraGries(8), chain(4)
        )
        wired = run_aggregation(
            stream,
            ContiguousPartitioner(),
            lambda: MisraGries(8),
            chain(4),
            serialize=True,
        )
        assert plain.summary.counters() == wired.summary.counters()

    def test_quantile_summary_on_sorted_partition(self):
        values = np.random.default_rng(10).random(2**13)
        result = run_aggregation(
            values,
            SortedPartitioner(),
            lambda: MergeableQuantiles(128, rng=3),
            balanced_tree(16),
        )
        n = len(values)
        data = np.sort(values)
        for q in (0.1, 0.5, 0.9):
            x = data[int(q * (n - 1))]
            true_rank = np.searchsorted(data, x, side="right")
            assert abs(result.summary.rank(x) - true_rank) <= 0.05 * n

    def test_duplicate_injection_counts_and_inflates_n(self, stream):
        result = run_aggregation(
            stream,
            ContiguousPartitioner(),
            lambda: MisraGries(16),
            chain(8),
            duplicate_probability=1.0,
            rng=1,
        )
        assert result.duplicated_deliveries == 7
        assert result.summary.n > len(stream)

    def test_duplicates_are_noop_for_lattice_summaries(self, stream):
        from repro.sketches import HyperLogLog

        clean = run_aggregation(
            stream, ContiguousPartitioner(),
            lambda: HyperLogLog(p=10, seed=1), chain(8),
        )
        faulty = run_aggregation(
            stream, ContiguousPartitioner(),
            lambda: HyperLogLog(p=10, seed=1), chain(8),
            duplicate_probability=1.0, rng=2,
        )
        assert faulty.summary.distinct() == clean.summary.distinct()

    def test_invalid_duplicate_probability(self, stream):
        from repro.core import ParameterError

        with pytest.raises(ParameterError):
            run_aggregation(
                stream, ContiguousPartitioner(), lambda: MisraGries(8),
                chain(4), duplicate_probability=1.5,
            )

    def test_timings_populated(self, stream):
        result = run_aggregation(
            stream, ContiguousPartitioner(), lambda: MisraGries(8), chain(4)
        )
        assert result.build_seconds >= 0
        assert result.merge_seconds >= 0


class TestNode:
    def test_emit_before_build_raises(self):
        node = Node(node_id=0, shard=np.array([1, 2]))
        with pytest.raises(RuntimeError, match="no summary"):
            node.emit()

    def test_absorb_before_build_raises(self):
        node = Node(node_id=0, shard=np.array([1]))
        with pytest.raises(RuntimeError):
            node.absorb("{}", serialized=True)

    def test_emit_serialized_counts_bytes(self):
        node = Node(node_id=0, shard=np.array([1, 2, 2]))
        node.build(ExactCounter)
        payload = node.emit(serialize=True)
        assert isinstance(payload, str)
        assert node.bytes_sent == len(payload)

    def test_absorb_merges(self):
        a = Node(node_id=0, shard=np.array([1, 1]))
        b = Node(node_id=1, shard=np.array([2]))
        a.build(ExactCounter)
        b.build(ExactCounter)
        a.absorb(b.emit(serialize=True))
        assert a.summary.n == 3
        assert a.merges_performed == 1

    def test_build_with_pre_aggregated_shard(self):
        # distinct values + multiplicities: a pre-aggregated leaf shard
        node = Node(
            node_id=0,
            shard=np.array([1, 2, 3]),
            shard_weights=np.array([10, 20, 30]),
        )
        node.build(ExactCounter)
        assert node.summary.n == 60
        assert node.summary.estimate(2) == 20
