"""Unit tests for the fault model, retry policy, ledger, and corrupted wire."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ParameterError, SerializationError, dumps, loads
from repro.distributed import (
    ContiguousPartitioner,
    FaultModel,
    MergeLedger,
    RetryPolicy,
    balanced_tree,
    chain,
    corrupt_payload,
    run_aggregation,
)
from repro.frequency import MisraGries
from repro.workloads import zipf_stream


class TestFaultModel:
    def test_probability_validation(self):
        for knob in ("loss", "crash", "duplicate", "corruption", "coordinator_crash"):
            with pytest.raises(ParameterError, match=knob):
                FaultModel(**{knob: 1.5})
            with pytest.raises(ParameterError, match=knob):
                FaultModel(**{knob: -0.1})

    def test_zero_probability_draws_nothing_and_no_rng(self):
        model = FaultModel(rng=1)
        for _ in range(100):
            assert not model.draw_loss()
            assert not model.draw_crash()
            assert not model.draw_duplicate()
            assert not model.draw_corruption()
            assert not model.draw_coordinator_crash()

    def test_seeded_draws_reproduce(self):
        a = FaultModel(loss=0.5, rng=7)
        b = FaultModel(loss=0.5, rng=7)
        assert [a.draw_loss() for _ in range(50)] == [
            b.draw_loss() for _ in range(50)
        ]

    def test_certain_faults_always_fire(self):
        model = FaultModel(loss=1.0, rng=1)
        assert all(model.draw_loss() for _ in range(20))


class TestRetryPolicy:
    def test_backoff_schedule(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.1, factor=2.0, max_delay=0.5)
        delays = [policy.delay_before(attempt) for attempt in policy.attempts()]
        assert delays == [0.0, 0.1, 0.2, 0.4, 0.5]  # capped at max_delay

    def test_validation(self):
        with pytest.raises(ParameterError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ParameterError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ParameterError):
            RetryPolicy(factor=0.5)


class TestMergeLedger:
    def test_witness_once(self):
        ledger = MergeLedger()
        assert ledger.witness("a") is True
        assert ledger.witness("a") is False
        assert "a" in ledger
        assert len(ledger) == 1

    def test_round_trip(self):
        ledger = MergeLedger(["x", "y"])
        restored = MergeLedger.from_list(ledger.to_list())
        assert "x" in restored and "y" in restored
        assert restored.witness("x") is False


class TestCorruptPayload:
    def test_corruption_always_detected(self):
        summary = MisraGries(16).extend([1, 1, 2, 3, 5, 8, 13] * 10)
        payload = dumps(summary)
        rng = np.random.default_rng(0)
        for _ in range(200):
            with pytest.raises(SerializationError):
                loads(corrupt_payload(payload, rng))

    def test_corruption_changes_payload(self):
        payload = dumps(MisraGries(4).extend([1, 2]))
        rng = np.random.default_rng(3)
        assert corrupt_payload(payload, rng) != payload


class TestScheduleValidation:
    def test_out_of_range_step_is_parameter_error(self):
        """A schedule referencing more nodes than the partitioner made
        must raise ParameterError, never a bare IndexError."""
        from repro.distributed import MergeSchedule

        with pytest.raises(ParameterError, match="outside"):
            MergeSchedule("bad", 3, [(0, 5), (0, 1)])
        with pytest.raises(ParameterError, match="outside"):
            MergeSchedule("bad", 3, [(0, -1), (0, 1)])

    def test_out_of_range_root_is_parameter_error(self):
        from repro.distributed import MergeSchedule

        with pytest.raises(ParameterError, match="root"):
            MergeSchedule("bad", 2, [(0, 1)], root=5)

    def test_run_aggregation_guards_schedule_indices(self):
        """Even a hand-built schedule object that bypasses validation
        (object.__new__-style corruption) fails loudly in the simulator."""
        from repro.distributed import MergeSchedule

        schedule = balanced_tree(4)
        hacked = object.__new__(MergeSchedule)
        object.__setattr__(hacked, "name", schedule.name)
        object.__setattr__(hacked, "leaves", schedule.leaves)
        object.__setattr__(hacked, "steps", [(0, 9), (2, 3), (0, 2)])
        object.__setattr__(hacked, "root", 0)
        with pytest.raises(ParameterError, match="partitioner produced"):
            run_aggregation(
                np.arange(100), ContiguousPartitioner(),
                lambda: MisraGries(8), hacked,
            )


class TestFaultRuntimeInvariants:
    def test_fault_model_excludes_legacy_duplicate_knob(self):
        data = zipf_stream(500, rng=1)
        with pytest.raises(ParameterError, match="legacy"):
            run_aggregation(
                data, ContiguousPartitioner(), lambda: MisraGries(8),
                chain(4), duplicate_probability=0.5, fault_model=FaultModel(),
            )

    def test_fault_free_model_matches_plain_run(self):
        data = zipf_stream(4_000, alpha=1.2, rng=2)
        plain = run_aggregation(
            data, ContiguousPartitioner(), lambda: MisraGries(32), chain(8)
        )
        guarded = run_aggregation(
            data, ContiguousPartitioner(), lambda: MisraGries(32), chain(8),
            fault_model=FaultModel(rng=1),
        )
        assert guarded.summary.counters() == plain.summary.counters()
        assert guarded.coverage == 1.0
        assert guarded.delivered_leaves == list(range(8))
        assert guarded.lost_leaves == []
        assert guarded.fault_stats.attempts == 7

    def test_clean_result_carries_full_coverage_fields(self):
        data = zipf_stream(1_000, rng=3)
        result = run_aggregation(
            data, ContiguousPartitioner(), lambda: MisraGries(8), chain(4)
        )
        assert result.coverage == 1.0
        assert result.delivered_records == len(data)
        assert sum(result.shard_sizes) == len(data)
        assert result.fault_stats is None

    def test_retry_bytes_accounted_separately_from_payload(self):
        """Retransmissions reuse the cached generation payload: they
        inflate bytes_retransmitted, never bytes_shipped, so the
        payload figure stays comparable across fault levels."""
        data = zipf_stream(4_000, rng=4)
        clean = run_aggregation(
            data, ContiguousPartitioner(), lambda: MisraGries(32),
            balanced_tree(8), serialize=True, fault_model=FaultModel(rng=1),
        )
        lossy = run_aggregation(
            data, ContiguousPartitioner(), lambda: MisraGries(32),
            balanced_tree(8), serialize=True,
            fault_model=FaultModel(loss=0.5, rng=2),
            retry_policy=RetryPolicy(max_attempts=20),
        )
        assert lossy.coverage == 1.0
        assert lossy.fault_stats.retries > 0
        assert clean.bytes_retransmitted == 0
        assert lossy.bytes_retransmitted > 0
        assert lossy.bytes_shipped == clean.bytes_shipped

    def test_crashed_subtree_is_excluded_not_zeroed(self):
        """A crash loses the node's subtree but the rest still merges;
        the root's n equals exactly the delivered shards' mass."""
        data = zipf_stream(8_000, rng=5)
        result = run_aggregation(
            data, ContiguousPartitioner(), lambda: MisraGries(32),
            balanced_tree(16), fault_model=FaultModel(crash=0.2, rng=6),
        )
        assert result.fault_stats.nodes_crashed > 0
        assert 0 < result.coverage < 1
        expected = sum(result.shard_sizes[i] for i in result.delivered_leaves)
        assert result.summary.n == expected
        assert set(result.lost_leaves).isdisjoint(result.delivered_leaves)
        assert len(result.delivered_leaves) + len(result.lost_leaves) == 16
