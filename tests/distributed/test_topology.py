"""Unit tests for merge topologies."""

from __future__ import annotations

import pytest

from repro.core import ParameterError
from repro.distributed import (
    MergeSchedule,
    balanced_tree,
    build_topology,
    chain,
    kary_tree,
    random_tree,
    star,
)


def _validate_schedule(schedule: MergeSchedule):
    """Every non-root leaf absorbed exactly once; root never absorbed."""
    absorbed = [src for _, src in schedule.steps]
    assert len(absorbed) == schedule.leaves - 1
    assert len(set(absorbed)) == len(absorbed)
    assert schedule.root not in absorbed
    assert set(absorbed) | {schedule.root} <= set(range(schedule.leaves))


class TestBuilders:
    @pytest.mark.parametrize("leaves", [1, 2, 3, 7, 16, 33])
    def test_balanced_valid(self, leaves):
        _validate_schedule(balanced_tree(leaves))

    @pytest.mark.parametrize("leaves", [1, 2, 5, 16])
    def test_chain_valid(self, leaves):
        _validate_schedule(chain(leaves))

    @pytest.mark.parametrize("leaves", [1, 3, 10])
    def test_star_valid(self, leaves):
        _validate_schedule(star(leaves))

    @pytest.mark.parametrize("leaves,arity", [(16, 4), (27, 3), (5, 2)])
    def test_kary_valid(self, leaves, arity):
        _validate_schedule(kary_tree(leaves, arity))

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_valid(self, seed):
        _validate_schedule(random_tree(12, rng=seed))

    def test_random_deterministic(self):
        assert random_tree(10, rng=5).steps == random_tree(10, rng=5).steps

    def test_kary_bad_arity(self):
        with pytest.raises(ParameterError):
            kary_tree(8, arity=1)


class TestDepth:
    def test_chain_depth_linear(self):
        assert chain(16).depth == 15

    def test_balanced_depth_logarithmic(self):
        assert balanced_tree(16).depth == 4
        assert balanced_tree(17).depth == 5

    def test_single_leaf_depth_zero(self):
        assert balanced_tree(1).depth == 0


class TestScheduleValidation:
    def test_self_merge_rejected(self):
        with pytest.raises(ParameterError, match="self-merge"):
            MergeSchedule("bad", 2, [(0, 0)], root=0)

    def test_reuse_of_absorbed_rejected(self):
        with pytest.raises(ParameterError, match="already-absorbed"):
            MergeSchedule("bad", 3, [(0, 1), (1, 2)], root=0)

    def test_wrong_step_count_rejected(self):
        with pytest.raises(ParameterError, match="exactly"):
            MergeSchedule("bad", 3, [(0, 1)], root=0)

    def test_absorbed_root_rejected(self):
        with pytest.raises(ParameterError, match="absorbed"):
            MergeSchedule("bad", 2, [(1, 0)], root=0)


class TestBuildTopology:
    def test_by_name(self):
        assert build_topology("chain", 4).name == "chain"
        assert build_topology("balanced", 4).name == "balanced"
        assert build_topology("random", 4, rng=1).name == "random"
        assert build_topology("kary", 9, arity=3).name == "3-ary"

    def test_unknown_raises(self):
        with pytest.raises(ParameterError, match="unknown topology"):
            build_topology("pentagram", 4)
