"""Unit tests for dataset partitioners."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ParameterError
from repro.distributed import (
    ContiguousPartitioner,
    SkewedSizePartitioner,
    SortedPartitioner,
    UniformRandomPartitioner,
)


DATA = np.arange(100)


def _covers_everything(shards, data):
    combined = np.sort(np.concatenate(shards))
    return np.array_equal(combined, np.sort(np.array(data)))


class TestContiguous:
    def test_covers_all(self):
        shards = ContiguousPartitioner().split(DATA, 7)
        assert len(shards) == 7
        assert _covers_everything(shards, DATA)

    def test_order_preserved(self):
        shards = ContiguousPartitioner().split(DATA, 4)
        assert np.array_equal(np.concatenate(shards), DATA)

    def test_near_equal_sizes(self):
        shards = ContiguousPartitioner().split(DATA, 7)
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_too_many_parts_raises(self):
        with pytest.raises(ParameterError):
            ContiguousPartitioner().split(np.arange(3), 4)

    def test_zero_parts_raises(self):
        with pytest.raises(ParameterError):
            ContiguousPartitioner().split(DATA, 0)


class TestUniformRandom:
    def test_covers_all(self):
        shards = UniformRandomPartitioner(rng=1).split(DATA, 5)
        assert _covers_everything(shards, DATA)

    def test_deterministic_under_seed(self):
        a = UniformRandomPartitioner(rng=2).split(DATA, 5)
        b = UniformRandomPartitioner(rng=2).split(DATA, 5)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_input_not_mutated(self):
        data = np.arange(50)
        UniformRandomPartitioner(rng=3).split(data, 5)
        assert np.array_equal(data, np.arange(50))


class TestSorted:
    def test_shards_are_value_disjoint(self):
        data = np.random.default_rng(4).random(100)
        shards = SortedPartitioner().split(data, 5)
        for left, right in zip(shards, shards[1:]):
            assert left.max() <= right.min()

    def test_covers_all(self):
        data = np.random.default_rng(5).random(100)
        shards = SortedPartitioner().split(data, 5)
        assert _covers_everything(shards, data)


class TestSkewed:
    def test_covers_all(self):
        shards = SkewedSizePartitioner(alpha=1.0, rng=6).split(DATA, 5)
        assert _covers_everything(shards, DATA)

    def test_sizes_are_skewed(self):
        shards = SkewedSizePartitioner(alpha=1.5, rng=7).split(np.arange(1000), 8)
        sizes = sorted((len(s) for s in shards), reverse=True)
        assert sizes[0] >= 3 * sizes[-1]

    def test_no_empty_shards(self):
        shards = SkewedSizePartitioner(alpha=2.0, rng=8).split(np.arange(200), 10)
        assert all(len(s) >= 1 for s in shards)

    def test_negative_alpha_raises(self):
        with pytest.raises(ParameterError):
            SkewedSizePartitioner(alpha=-1.0)
