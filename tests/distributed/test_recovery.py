"""Unit tests for coordinator checkpointing and recovery."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import SerializationError, dumps
from repro.distributed import (
    Checkpoint,
    ContinuousAggregation,
    FaultModel,
    FileCheckpointStore,
    InMemoryCheckpointStore,
)
from repro.frequency import MisraGries
from repro.quantiles import KLLQuantiles


def _factory():
    return MisraGries(16)


class TestCheckpoint:
    def test_json_round_trip(self):
        summary = MisraGries(16).extend([1, 1, 2, 3])
        checkpoint = Checkpoint(
            epoch=3,
            coordinator_payload=dumps(summary),
            ledger_ids=["a", "b"],
            history=[{"epoch": 1}],
        )
        restored = Checkpoint.from_json(checkpoint.to_json())
        assert restored.epoch == 3
        assert restored.ledger_ids == ["a", "b"]
        assert restored.history == [{"epoch": 1}]
        assert restored.restore_summary().counters() == summary.counters()

    def test_crc_rejects_tampering(self):
        checkpoint = Checkpoint(epoch=1, coordinator_payload=dumps(MisraGries(4)))
        blob = json.loads(checkpoint.to_json())
        blob["coordinator"] = blob["coordinator"][:-2] + "}}"
        if json.dumps(blob) != checkpoint.to_json():
            with pytest.raises(SerializationError, match="CRC"):
                Checkpoint.from_json(json.dumps(blob))

    def test_malformed_and_versioned(self):
        with pytest.raises(SerializationError, match="malformed"):
            Checkpoint.from_json("{}")
        with pytest.raises(SerializationError, match="malformed"):
            Checkpoint.from_json("not json at all")
        checkpoint = Checkpoint(epoch=1, coordinator_payload=dumps(MisraGries(4)))
        blob = json.loads(checkpoint.to_json())
        blob["format"] = 99
        with pytest.raises(SerializationError, match="unsupported checkpoint"):
            Checkpoint.from_json(json.dumps(blob))


class TestStores:
    def test_in_memory_latest_picks_highest_epoch(self):
        store = InMemoryCheckpointStore()
        assert store.latest() is None
        for epoch in (1, 3, 2):
            store.save(Checkpoint(epoch=epoch,
                                  coordinator_payload=dumps(MisraGries(4))))
        assert store.latest().epoch == 3
        assert len(store) == 3

    def test_file_store_round_trips(self, tmp_path):
        store = FileCheckpointStore(tmp_path / "ckpts")
        assert store.latest() is None
        summary = MisraGries(8).extend([5, 5, 6])
        store.save(Checkpoint(epoch=1, coordinator_payload=dumps(summary)))
        store.save(Checkpoint(epoch=2, coordinator_payload=dumps(summary),
                              ledger_ids=["x"]))
        latest = store.latest()
        assert latest.epoch == 2
        assert latest.ledger_ids == ["x"]
        assert latest.restore_summary().counters() == summary.counters()
        assert len(list((tmp_path / "ckpts").glob("checkpoint-*.json"))) == 2

    def test_file_store_leaves_no_tmp_droppings(self, tmp_path):
        store = FileCheckpointStore(tmp_path)
        store.save(Checkpoint(epoch=1, coordinator_payload=dumps(MisraGries(4))))
        assert not list(tmp_path.glob("*.tmp"))

    def test_checkpoint_publish_survives_any_crash(self, tmp_path):
        """Kill the save at every syscall under every disk outcome: the
        store always restores either the old or the new checkpoint —
        never a torn file (the pre-fix bug: rename durable before the
        bytes, resurrecting an empty coordinator)."""
        from tests.store.crashfs import run_crash_sweep

        summary = MisraGries(8).extend([5, 5, 6])
        second = Checkpoint(
            epoch=2, coordinator_payload=dumps(summary), ledger_ids=["x"]
        )
        initial = tmp_path / "initial"
        FileCheckpointStore(initial).save(
            Checkpoint(epoch=1, coordinator_payload=dumps(summary))
        )

        def operation(fs, root):
            FileCheckpointStore(root, fs=fs).save(second)

        states = 0
        for kill, variant, crashed in run_crash_sweep(
            str(initial), operation, str(tmp_path / "sweep")
        ):
            states += 1
            latest = FileCheckpointStore(crashed).latest()
            assert latest.epoch in (1, 2), f"kill={kill} variant={variant}"
            assert latest.restore_summary().counters() == summary.counters()
            if latest.epoch == 2:
                assert latest.ledger_ids == ["x"]
        assert states >= 5 * 6  # 5 syscalls x 6 variants, all swept


class TestContinuousCheckpointing:
    def test_initial_checkpoint_at_epoch_zero(self):
        store = InMemoryCheckpointStore()
        ContinuousAggregation(_factory, nodes=2, checkpoint_store=store)
        assert store.latest().epoch == 0

    def test_checkpoint_after_every_epoch(self):
        store = InMemoryCheckpointStore()
        agg = ContinuousAggregation(_factory, nodes=2, checkpoint_store=store)
        for _ in range(3):
            agg.run_epoch([np.array([1, 2]), np.array([3])])
        assert store.latest().epoch == 3
        assert len(store) == 4  # epoch 0 + 3 epochs

    def test_resume_restores_history_and_ledger(self):
        store = InMemoryCheckpointStore()
        agg = ContinuousAggregation(_factory, nodes=2, checkpoint_store=store)
        agg.run_epoch([np.array([1, 1]), np.array([2])])
        agg.run_epoch([np.array([3]), np.array([4, 4])])
        restored = ContinuousAggregation.resume(store.latest(), _factory, nodes=2)
        assert restored.epochs_completed == 2
        assert restored.coordinator.n == 6
        assert dumps(restored.coordinator) == dumps(agg.coordinator)
        assert restored.totals() == agg.totals()
        # the restored ledger still suppresses already-merged deliveries
        assert restored.ledger is not None
        assert "node0@epoch1" in restored.ledger

    def test_resume_via_file_store(self, tmp_path):
        store = FileCheckpointStore(tmp_path)
        agg = ContinuousAggregation(_factory, nodes=2, checkpoint_store=store)
        agg.run_epoch([np.array([7, 7, 7]), np.array([8])])
        restored = ContinuousAggregation.resume(
            store.latest(), _factory, nodes=2, checkpoint_store=store
        )
        restored.run_epoch([np.array([9]), np.array([10])])
        assert restored.coordinator.n == 6
        assert store.latest().epoch == 2

    def test_kll_coordinator_checkpoints(self):
        """Randomized summaries checkpoint too (state round-trips)."""
        store = InMemoryCheckpointStore()
        agg = ContinuousAggregation(
            lambda: KLLQuantiles(32, rng=1), nodes=2, checkpoint_store=store
        )
        rng = np.random.default_rng(2)
        agg.run_epoch([rng.random(200), rng.random(200)])
        restored = ContinuousAggregation.resume(
            store.latest(), lambda: KLLQuantiles(32, rng=1), nodes=2
        )
        assert restored.coordinator.n == 400
        assert restored.coordinator.quantile(0.5) == agg.coordinator.quantile(0.5)


class TestContinuousFaultPath:
    def test_epoch_coverage_accounting(self):
        agg = ContinuousAggregation(
            _factory, nodes=4,
            fault_model=FaultModel(crash=0.5, rng=4),
        )
        rng = np.random.default_rng(5)
        lost_any = False
        for _ in range(5):
            report = agg.run_epoch([rng.integers(0, 50, 100) for _ in range(4)])
            assert report.records == 400
            assert report.delivered_records + report.lost_records == 400
            assert report.coverage == pytest.approx(report.delivered_records / 400)
            lost_any = lost_any or report.lost_records > 0
        assert lost_any
        assert agg.coordinator.n == sum(
            r.delivered_records for r in agg.history
        )
        assert 0 < agg.coverage() < 1

    def test_duplicates_suppressed_in_continuous_loop(self):
        agg = ContinuousAggregation(
            _factory, nodes=3,
            fault_model=FaultModel(duplicate=1.0, rng=6),
        )
        report = agg.run_epoch([np.array([1, 2]), np.array([3]), np.array([4])])
        assert report.duplicates_suppressed == 3
        assert agg.coordinator.n == 4  # every delta merged exactly once
        assert agg.fault_stats.duplicates_merged == 0

    def test_loss_with_retries_delivers_everything(self):
        agg = ContinuousAggregation(
            _factory, nodes=3,
            fault_model=FaultModel(loss=0.4, rng=7),
        )
        for _ in range(5):
            report = agg.run_epoch(
                [np.array([1, 1]), np.array([2]), np.array([3, 3, 3])]
            )
            assert report.coverage == 1.0
        assert agg.fault_stats.messages_lost > 0
        assert agg.fault_stats.retries >= agg.fault_stats.messages_lost
