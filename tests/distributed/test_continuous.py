"""Tests for the continuous (epoch-delta) aggregation harness."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.core import ParameterError
from repro.distributed import ContinuousAggregation
from repro.frequency import MisraGries
from repro.quantiles import MergeableQuantiles
from repro.workloads import zipf_stream


def _epoch_shards(rng, nodes, size):
    return [rng.integers(0, 500, size=size) for _ in range(nodes)]


class TestContinuousAggregation:
    def test_invalid_nodes(self):
        with pytest.raises(ParameterError):
            ContinuousAggregation(lambda: MisraGries(8), nodes=0)

    def test_epoch_shard_count_checked(self):
        agg = ContinuousAggregation(lambda: MisraGries(8), nodes=3)
        with pytest.raises(ParameterError, match="expected data for 3 nodes"):
            agg.run_epoch([np.array([1])])

    def test_coordinator_accumulates_across_epochs(self):
        rng = np.random.default_rng(1)
        agg = ContinuousAggregation(lambda: MisraGries(64), nodes=4)
        total = 0
        for _ in range(5):
            shards = _epoch_shards(rng, 4, 200)
            report = agg.run_epoch(shards)
            total += sum(len(s) for s in shards)
            assert report.coordinator_n == total
        assert agg.epochs_completed == 5
        assert agg.totals()["records"] == total

    def test_guarantee_holds_after_many_epochs(self):
        """The coordinator is a deep merge tree; the MG bound must hold
        over everything observed across all epochs."""
        k = 32
        agg = ContinuousAggregation(lambda: MisraGries(k), nodes=8)
        everything = []
        for epoch in range(10):
            shards = [
                zipf_stream(300, alpha=1.2, universe=400, rng=epoch * 100 + i)
                for i in range(8)
            ]
            everything.extend(int(v) for s in shards for v in s)
            agg.run_epoch(shards)
        truth = Counter(everything)
        n = len(everything)
        assert agg.coordinator.n == n
        assert agg.coordinator.deduction <= n / (k + 1)
        for item, count in truth.most_common(30):
            estimate = agg.coordinator.estimate(item)
            assert estimate <= count
            assert count - estimate <= agg.coordinator.deduction

    def test_size_trajectory_stays_bounded(self):
        rng = np.random.default_rng(3)
        agg = ContinuousAggregation(lambda: MisraGries(16), nodes=4)
        for _ in range(8):
            agg.run_epoch(_epoch_shards(rng, 4, 500))
        assert max(agg.size_trajectory()) <= 16

    def test_bytes_shipped_per_epoch_flat(self):
        rng = np.random.default_rng(4)
        agg = ContinuousAggregation(lambda: MisraGries(32), nodes=4)
        for _ in range(6):
            agg.run_epoch(_epoch_shards(rng, 4, 1000))
        per_epoch = agg.bytes_per_epoch()
        assert all(b > 0 for b in per_epoch)
        assert max(per_epoch) <= 2 * min(per_epoch)

    def test_queryable_between_epochs(self):
        rng = np.random.default_rng(5)
        agg = ContinuousAggregation(
            lambda: MergeableQuantiles(64, rng=6), nodes=2, serialize=False
        )
        agg.run_epoch([rng.random(500), rng.random(500)])
        mid = agg.coordinator.median()
        assert 0.3 <= mid <= 0.7
        agg.run_epoch([rng.random(500) + 10, rng.random(500) + 10])
        assert agg.coordinator.quantile(0.9) > 1.0

    def test_serialize_false_ships_no_bytes(self):
        rng = np.random.default_rng(7)
        agg = ContinuousAggregation(
            lambda: MisraGries(8), nodes=2, serialize=False
        )
        report = agg.run_epoch(_epoch_shards(rng, 2, 50))
        assert report.bytes_shipped == 0
